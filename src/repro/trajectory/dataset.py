"""Trajectory dataset container.

A :class:`TrajectoryDataset` holds the full collection of tracked
trajectories (~500 in the paper's study) together with a *packed*
columnar view of all segments, which is what the vectorized
coordinated-brushing engine operates on: one flat array of segment
endpoints/timestamps plus an ownership index, instead of a Python loop
over trajectory objects.  The packed view is built lazily and cached.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.trajectory.model import Trajectory, TrajectoryMeta

__all__ = ["PackedSegments", "TrajectoryDataset"]


class PackedSegments:
    """Columnar view of every segment of every trajectory in a dataset.

    Attributes
    ----------
    a, b:
        (S, 2) segment start/end positions (arena meters).
    t0, t1:
        (S,) segment start/end timestamps.
    owner:
        (S,) int32 index of the owning trajectory within the dataset.
    offsets:
        (T+1,) int64 prefix offsets: trajectory ``i`` owns segment rows
        ``offsets[i]:offsets[i+1]``.
    """

    __slots__ = ("a", "b", "t0", "t1", "owner", "offsets")

    def __init__(self, trajectories: Sequence[Trajectory]) -> None:
        counts = np.fromiter(
            (t.n_samples - 1 for t in trajectories), dtype=np.int64, count=len(trajectories)
        )
        total = int(counts.sum())
        self.offsets = np.zeros(len(trajectories) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        self.a = np.empty((total, 2), dtype=np.float64)
        self.b = np.empty((total, 2), dtype=np.float64)
        self.t0 = np.empty(total, dtype=np.float64)
        self.t1 = np.empty(total, dtype=np.float64)
        self.owner = np.empty(total, dtype=np.int32)
        for i, traj in enumerate(trajectories):
            lo, hi = self.offsets[i], self.offsets[i + 1]
            sa, sb = traj.segments()
            st0, st1 = traj.segment_times()
            self.a[lo:hi] = sa
            self.b[lo:hi] = sb
            self.t0[lo:hi] = st0
            self.t1[lo:hi] = st1
            self.owner[lo:hi] = i
        for arr in (self.a, self.b, self.t0, self.t1, self.owner, self.offsets):
            arr.setflags(write=False)

    @classmethod
    def from_arrays(
        cls,
        *,
        a: np.ndarray,
        b: np.ndarray,
        t0: np.ndarray,
        t1: np.ndarray,
        owner: np.ndarray,
        offsets: np.ndarray,
    ) -> "PackedSegments":
        """Adopt pre-materialized columnar arrays without copying.

        This is the zero-copy rebuild path for shared-memory attachment
        (:mod:`repro.store`): the arrays are taken as-is — typically
        views into a shared block — validated for mutual consistency,
        and marked read-only.
        """
        n = len(owner)
        if not (len(a) == len(b) == len(t0) == len(t1) == n):
            raise ValueError("packed arrays disagree on segment count")
        if len(offsets) < 1 or int(offsets[-1]) != n:
            raise ValueError(
                f"offsets end at {offsets[-1] if len(offsets) else '??'}, "
                f"expected {n}"
            )
        packed = cls.__new__(cls)
        packed.a = a
        packed.b = b
        packed.t0 = t0
        packed.t1 = t1
        packed.owner = owner
        packed.offsets = offsets
        for arr in (a, b, t0, t1, owner, offsets):
            arr.setflags(write=False)
        return packed

    @property
    def n_segments(self) -> int:
        return len(self.owner)

    def rows_of(self, traj_index: int) -> slice:
        """Row slice owned by trajectory ``traj_index``."""
        return slice(int(self.offsets[traj_index]), int(self.offsets[traj_index + 1]))


class TrajectoryDataset:
    """An ordered collection of :class:`Trajectory` objects.

    Supports iteration, indexing, metadata-predicate selection, and a
    cached packed-segment view for batch queries.  Datasets are
    append-only; any mutation invalidates the packed cache.
    """

    def __init__(self, trajectories: Iterable[Trajectory] = (), name: str = "dataset") -> None:
        self.name = name
        self._trajs: list[Trajectory] = []
        self._packed: PackedSegments | None = None
        self._epoch = 0
        #: Identity of the shared-memory store this dataset is a view
        #: of (set by :mod:`repro.store` attachment, ``None`` for plain
        #: in-process datasets); embedded in query-plan cache keys and
        #: cleared by any mutation.
        self.store_token: tuple | None = None
        for t in trajectories:
            self.append(t)

    @classmethod
    def from_attached(
        cls,
        trajectories: Sequence[Trajectory],
        packed: PackedSegments,
        *,
        name: str,
        epoch: int,
        store_token: tuple | None,
    ) -> "TrajectoryDataset":
        """Assemble a dataset around pre-built (typically shared-memory
        view) trajectories and packed arrays without re-packing.

        Used by :mod:`repro.store` attachment: ``epoch`` restores the
        publisher's mutation epoch so stage-cache keys line up, and
        ``store_token`` brands the dataset with the store's identity.
        Appending to the result invalidates both, like any mutation.
        """
        if len(trajectories) + 1 != len(packed.offsets):
            raise ValueError(
                f"{len(trajectories)} trajectories vs "
                f"{len(packed.offsets) - 1} packed ownership ranges"
            )
        ds = cls.__new__(cls)
        ds.name = name
        ds._trajs = list(trajectories)
        ds._packed = packed
        ds._epoch = int(epoch)
        ds.store_token = store_token
        return ds

    # Container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._trajs)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TrajectoryDataset(self._trajs[index], name=self.name)
        return self._trajs[index]

    def __repr__(self) -> str:
        return f"TrajectoryDataset({self.name!r}, n={len(self)})"

    # Mutation ----------------------------------------------------------
    def append(self, traj: Trajectory) -> None:
        """Append a trajectory, assigning its dataset-local id if unset."""
        if not isinstance(traj, Trajectory):
            raise TypeError(f"expected Trajectory, got {type(traj).__name__}")
        if traj.traj_id < 0:
            traj.traj_id = len(self._trajs)
        self._trajs.append(traj)
        self._packed = None
        self._epoch += 1
        # a mutated dataset no longer mirrors any published store
        self.store_token = None

    @property
    def epoch(self) -> int:
        """Monotone mutation epoch: bumped by every append (including
        loader quarantine paths), so query-stage caches keyed on it can
        never serve masks computed over an older segment set."""
        return self._epoch

    def extend(self, trajs: Iterable[Trajectory]) -> None:
        """Append many trajectories."""
        for t in trajs:
            self.append(t)

    # Selection ---------------------------------------------------------
    def select(self, predicate: Callable[[Trajectory], bool]) -> "TrajectoryDataset":
        """New dataset with trajectories satisfying ``predicate``.

        Trajectory ids are preserved (they keep pointing at the parent
        dataset's numbering) so group bins remain traceable to the raw
        data — mirroring the paper's per-group filters.
        """
        return TrajectoryDataset(
            (t for t in self._trajs if predicate(t)), name=f"{self.name}|filtered"
        )

    def indices_where(self, predicate: Callable[[Trajectory], bool]) -> np.ndarray:
        """Indices (into this dataset) of trajectories matching ``predicate``."""
        return np.fromiter(
            (i for i, t in enumerate(self._trajs) if predicate(t)), dtype=np.int64
        )

    def by_zone(self, zone: str) -> "TrajectoryDataset":
        """Trajectories captured in the given zone (on/east/west/north/south)."""
        return self.select(lambda t: t.meta.capture_zone == zone)

    def zones(self) -> dict[str, int]:
        """Histogram of capture zones."""
        out: dict[str, int] = {}
        for t in self._trajs:
            out[t.meta.capture_zone] = out.get(t.meta.capture_zone, 0) + 1
        return out

    # Aggregate properties ----------------------------------------------
    @property
    def total_samples(self) -> int:
        return sum(t.n_samples for t in self._trajs)

    @property
    def total_segments(self) -> int:
        return sum(t.n_samples - 1 for t in self._trajs)

    def duration_range(self) -> tuple[float, float]:
        """(min, max) trajectory duration in seconds."""
        if not self._trajs:
            return (0.0, 0.0)
        durs = [t.duration for t in self._trajs]
        return (min(durs), max(durs))

    def time_extent(self) -> tuple[float, float]:
        """Global (earliest, latest) timestamp across trajectories."""
        if not self._trajs:
            return (0.0, 0.0)
        return (
            min(float(t.times[0]) for t in self._trajs),
            max(float(t.times[-1]) for t in self._trajs),
        )

    def packed(self) -> PackedSegments:
        """Cached columnar segment view for vectorized queries."""
        if self._packed is None:
            self._packed = PackedSegments(self._trajs)
        return self._packed

    def metas(self) -> list[TrajectoryMeta]:
        """Metadata records in dataset order."""
        return [t.meta for t in self._trajs]
