"""Movement metrics.

These implement the low-level inferences the ecologist made visually
during the study ("more windy" vs. "more direct" trajectories, §VI-A),
as exact quantities: path length, net displacement, straightness,
sinuosity, turning-angle statistics, speed, and dwell time inside a
disc (the stationary-ant signal of the §V-B seed-drop query).
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.model import Trajectory
from repro.util.geometry import polyline_length

__all__ = [
    "total_path_length",
    "net_displacement",
    "straightness_index",
    "sinuosity",
    "heading_angles",
    "turning_angles",
    "mean_speed",
    "dwell_time_in_disc",
    "time_inside_mask",
]


def total_path_length(traj: Trajectory) -> float:
    """Arc length of the path in meters."""
    return polyline_length(traj.positions)


def net_displacement(traj: Trajectory) -> float:
    """Straight-line distance from first to last sample."""
    return float(np.linalg.norm(traj.end - traj.start))


def straightness_index(traj: Trajectory) -> float:
    """Net displacement / path length, in [0, 1].

    1 means a perfectly direct path ("more direct" ants captured off
    the trail); values near 0 mean heavy meandering ("more windy" ants
    captured on the trail).  Zero-length paths return 0.
    """
    length = total_path_length(traj)
    if length <= 0:
        return 0.0
    return min(1.0, net_displacement(traj) / length)


def heading_angles(traj: Trajectory) -> np.ndarray:
    """(N-1,) headings of each segment in radians, in (-pi, pi]."""
    d = np.diff(traj.positions, axis=0)
    return np.arctan2(d[:, 1], d[:, 0])


def turning_angles(traj: Trajectory) -> np.ndarray:
    """(N-2,) signed turning angles between consecutive segments,
    wrapped into (-pi, pi]."""
    h = heading_angles(traj)
    d = np.diff(h)
    return (d + np.pi) % (2.0 * np.pi) - np.pi


def sinuosity(traj: Trajectory) -> float:
    """Benhamou (2004) corrected sinuosity for a discrete path.

    S = 2 * sqrt(p * (1 - c) / (1 + c)) / sqrt(E[step])  with mean step
    length p and mean cosine of turning angles c.  Larger is windier.
    Falls back to 0 for paths too short to estimate.
    """
    steps = np.linalg.norm(np.diff(traj.positions, axis=0), axis=1)
    steps = steps[steps > 0]
    if len(steps) < 2:
        return 0.0
    turns = turning_angles(traj)
    if len(turns) == 0:
        return 0.0
    c = float(np.cos(turns).mean())
    c = min(c, 1.0 - 1e-12)
    p = float(steps.mean())
    return float(2.0 / np.sqrt(p * (1.0 + c) / (1.0 - c)))


def mean_speed(traj: Trajectory) -> float:
    """Path length divided by duration (m/s)."""
    dur = traj.duration
    if dur <= 0:
        return 0.0
    return total_path_length(traj) / dur


def time_inside_mask(traj: Trajectory, inside: np.ndarray) -> float:
    """Total time spent in samples flagged ``inside`` ((N,) bool).

    Each segment contributes its dt when *both* endpoints are inside,
    and half its dt when exactly one is — a trapezoidal approximation
    of the boundary crossing that is exact in expectation for straight
    crossings.
    """
    inside = np.asarray(inside, dtype=bool)
    if inside.shape != traj.times.shape:
        raise ValueError("inside mask must match the sample count")
    dt = np.diff(traj.times)
    both = inside[:-1] & inside[1:]
    one = inside[:-1] ^ inside[1:]
    return float(dt[both].sum() + 0.5 * dt[one].sum())


def dwell_time_in_disc(traj: Trajectory, center, radius: float) -> float:
    """Seconds the ant spent inside a disc of ``radius`` around ``center``.

    This is the exact-analytics counterpart of the §V-B visual query
    ("do seed-droppers linger in the arena center early on?").
    """
    center = np.asarray(center, dtype=np.float64)
    d = traj.positions - center
    inside = np.einsum("ij,ij->i", d, d) <= radius * radius
    return time_inside_mask(traj, inside)
