"""Trajectory data substrate.

This subpackage provides the data model the paper's application is
built on: individual trajectories (2D positions over time plus the
capture-condition metadata the ecologists recorded), datasets of
trajectories, movement metrics, resampling, simplification (the
"compact visual encodings" of §VI-C), metadata filtering, and I/O.
"""

from repro.trajectory.model import Trajectory, TrajectoryMeta
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.filters import (
    AndFilter,
    CaptureZoneFilter,
    DirectionFilter,
    DurationFilter,
    MetaFilter,
    NotFilter,
    OrFilter,
    SeedFilter,
    TrueFilter,
    parse_filter,
)
from repro.trajectory.metrics import (
    dwell_time_in_disc,
    heading_angles,
    mean_speed,
    net_displacement,
    sinuosity,
    straightness_index,
    total_path_length,
    turning_angles,
)
from repro.trajectory.noise import add_jitter, degrade_dataset, drop_samples, inject_gaps
from repro.trajectory.resample import resample_by_count, resample_uniform_dt
from repro.trajectory.simplify import douglas_peucker, lowpass_smooth, simplify_dataset
from repro.trajectory import io
from repro.trajectory.io import DatasetFormatError, LoadReport

__all__ = [
    "DatasetFormatError",
    "LoadReport",
    "Trajectory",
    "TrajectoryMeta",
    "TrajectoryDataset",
    "AndFilter",
    "CaptureZoneFilter",
    "DirectionFilter",
    "DurationFilter",
    "MetaFilter",
    "NotFilter",
    "OrFilter",
    "SeedFilter",
    "TrueFilter",
    "parse_filter",
    "dwell_time_in_disc",
    "heading_angles",
    "mean_speed",
    "net_displacement",
    "sinuosity",
    "straightness_index",
    "total_path_length",
    "turning_angles",
    "add_jitter",
    "degrade_dataset",
    "drop_samples",
    "inject_gaps",
    "resample_by_count",
    "resample_uniform_dt",
    "douglas_peucker",
    "lowpass_smooth",
    "simplify_dataset",
    "io",
]
