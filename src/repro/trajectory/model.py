"""Trajectory data model.

A :class:`Trajectory` is a time-stamped 2D path across the experimental
arena plus the metadata the field protocol recorded for each captured
ant (§IV-B of the paper): the capture zone relative to the colony's
main foraging trail (``on``/``east``/``west``/``north``/``south``),
the journey direction at capture (``outbound``/``inbound``), and
whether the ant was carrying a seed.

Positions are stored in arena coordinates (meters, arena center at the
origin); timestamps in seconds from release.  Arrays are immutable
(NumPy write flag cleared) so trajectories can be shared freely between
layout cells, query engines and render workers without defensive
copies — a guide-mandated views-not-copies discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Mapping

import numpy as np

from repro.util.validation import check_finite, check_shape

__all__ = ["CaptureZone", "Direction", "TrajectoryMeta", "Trajectory"]

#: Valid capture zones relative to the main foraging trail (Fig. 3).
CaptureZone = ("on", "east", "west", "north", "south")

#: Valid journey directions at capture time.
Direction = ("outbound", "inbound")


@dataclass(frozen=True)
class TrajectoryMeta:
    """Capture-condition metadata for one tracked ant.

    Attributes
    ----------
    capture_zone:
        Where the ant was captured relative to the colony's main
        foraging trail: ``on`` the trail or ``east``/``west``/``north``/
        ``south`` of it.
    direction:
        Whether the ant was heading away from (``outbound``) or back to
        (``inbound``) the colony when captured.
    carrying_seed:
        True if the ant carried a seed at capture.
    seed_dropped:
        True if the ant dropped its seed during handling — the
        §V-B spatio-temporal hypothesis concerns these ants.
    species:
        Tracked species; the study used *Messor cephalotes*.
    extra:
        Free-form additional annotations.
    """

    capture_zone: str = "on"
    direction: str = "outbound"
    carrying_seed: bool = False
    seed_dropped: bool = False
    species: str = "Messor cephalotes"
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capture_zone not in CaptureZone:
            raise ValueError(
                f"capture_zone must be one of {CaptureZone}, got {self.capture_zone!r}"
            )
        if self.direction not in Direction:
            raise ValueError(
                f"direction must be one of {Direction}, got {self.direction!r}"
            )
        if self.seed_dropped and not self.carrying_seed:
            raise ValueError("seed_dropped requires carrying_seed")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for serialization."""
        return {
            "capture_zone": self.capture_zone,
            "direction": self.direction,
            "carrying_seed": self.carrying_seed,
            "seed_dropped": self.seed_dropped,
            "species": self.species,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TrajectoryMeta":
        """Inverse of :meth:`to_dict`."""
        return cls(
            capture_zone=d.get("capture_zone", "on"),
            direction=d.get("direction", "outbound"),
            carrying_seed=bool(d.get("carrying_seed", False)),
            seed_dropped=bool(d.get("seed_dropped", False)),
            species=d.get("species", "Messor cephalotes"),
            extra=dict(d.get("extra", {})),
        )


class Trajectory:
    """One ant's tracked movement: positions over time plus metadata.

    Parameters
    ----------
    positions:
        (N, 2) float array of XY positions in arena meters.
    times:
        (N,) float array of strictly increasing timestamps in seconds.
    meta:
        Capture-condition metadata.
    traj_id:
        Stable identifier within a dataset.
    """

    __slots__ = ("_positions", "_times", "meta", "traj_id")

    def __init__(
        self,
        positions: np.ndarray,
        times: np.ndarray,
        meta: TrajectoryMeta | None = None,
        traj_id: int = -1,
    ) -> None:
        positions = check_shape("positions", check_finite("positions", positions), (None, 2))
        times = check_finite("times", times)
        times = check_shape("times", times, (None,))
        if len(positions) != len(times):
            raise ValueError(
                f"positions ({len(positions)}) and times ({len(times)}) "
                "must have equal length"
            )
        if len(times) < 2:
            raise ValueError("a trajectory needs at least 2 samples")
        if np.any(np.diff(times) <= 0):
            raise ValueError("times must be strictly increasing")
        positions = np.ascontiguousarray(positions, dtype=np.float64)
        times = np.ascontiguousarray(times, dtype=np.float64)
        positions.setflags(write=False)
        times.setflags(write=False)
        self._positions = positions
        self._times = times
        self.meta = meta if meta is not None else TrajectoryMeta()
        self.traj_id = int(traj_id)

    @classmethod
    def from_validated(
        cls,
        positions: np.ndarray,
        times: np.ndarray,
        meta: "TrajectoryMeta",
        traj_id: int,
    ) -> "Trajectory":
        """Wrap already-validated, read-only arrays without re-checking.

        The zero-copy attach path (:mod:`repro.store`) rebuilds every
        trajectory as views into a shared-memory block that was filled
        from validated trajectories at publish time; re-running the
        finiteness/monotonicity scans there would fault in the whole
        mapping per worker, defeating the O(handle) attach cost.  The
        caller guarantees the constructor invariants: float64 C-order
        arrays, matching lengths >= 2, finite values, strictly
        increasing times, write flags cleared.
        """
        traj = cls.__new__(cls)
        traj._positions = positions
        traj._times = times
        traj.meta = meta
        traj.traj_id = int(traj_id)
        return traj

    # Data access ------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """(N, 2) read-only position array (arena meters)."""
        return self._positions

    @property
    def times(self) -> np.ndarray:
        """(N,) read-only timestamp array (seconds from release)."""
        return self._times

    @property
    def n_samples(self) -> int:
        return len(self._times)

    @property
    def duration(self) -> float:
        """Total tracked duration in seconds."""
        return float(self._times[-1] - self._times[0])

    @property
    def start(self) -> np.ndarray:
        return self._positions[0]

    @property
    def end(self) -> np.ndarray:
        return self._positions[-1]

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:
        return (
            f"Trajectory(id={self.traj_id}, n={self.n_samples}, "
            f"duration={self.duration:.1f}s, zone={self.meta.capture_zone!r})"
        )

    # Derived views ----------------------------------------------------
    def segments(self) -> tuple[np.ndarray, np.ndarray]:
        """The (N-1, 2) segment endpoint views (a, b) — zero-copy."""
        return self._positions[:-1], self._positions[1:]

    def segment_times(self) -> tuple[np.ndarray, np.ndarray]:
        """The (N-1,) start/end time views of each segment."""
        return self._times[:-1], self._times[1:]

    def spacetime(self) -> np.ndarray:
        """(N, 3) space-time-cube points: (x, y, t).

        This is the geometry the stereoscopic encoding renders (Fig. 4):
        XY is the display plane, time extends along +Z.
        """
        out = np.empty((self.n_samples, 3), dtype=np.float64)
        out[:, :2] = self._positions
        out[:, 2] = self._times
        return out

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """(min_xy, max_xy) of the path."""
        return self._positions.min(axis=0), self._positions.max(axis=0)

    def time_slice(self, t0: float, t1: float) -> "Trajectory | None":
        """Sub-trajectory restricted to the closed window [t0, t1].

        Returns ``None`` if fewer than two samples fall inside.  This is
        the data-level form of the temporal filter; the query engine
        uses masks instead (no allocation), but the slice form is
        convenient in analytics and tests.
        """
        mask = (self._times >= t0) & (self._times <= t1)
        if mask.sum() < 2:
            return None
        return Trajectory(
            self._positions[mask], self._times[mask], self.meta, self.traj_id
        )

    def with_meta(self, **changes: Any) -> "Trajectory":
        """Copy with updated metadata fields."""
        return Trajectory(
            self._positions, self._times, replace(self.meta, **changes), self.traj_id
        )

    def iter_points(self) -> Iterator[tuple[float, float, float]]:
        """Iterate (x, y, t) tuples — convenience for examples/tests."""
        for (x, y), t in zip(self._positions, self._times):
            yield float(x), float(y), float(t)
