"""Trajectory dataset I/O.

Three formats:

* **NPZ** — the fast native format: packed position/time arrays plus a
  JSON metadata sidecar inside the archive.  Round-trips exactly.
* **CSV** — one row per sample (``traj_id,x,y,t``) plus a companion
  ``*.meta.json``; interoperable with the ecologists' spreadsheet
  tooling.
* **JSON** — fully self-describing, human-inspectable, slowest.

Robustness contract (the resilience layer's I/O rung):

* every save path writes through :func:`repro.util.fileio.atomic_write`
  — a crash mid-save can never tear an existing file;
* every load path raises a single informative
  :class:`DatasetFormatError` (file, row, field, reason) on malformed
  input instead of a bare numpy/``KeyError`` from deep inside parsing;
* loaders accept ``on_error="skip"``, which quarantines bad
  trajectories into a :class:`LoadReport` (attached to the returned
  dataset as ``dataset.load_report``) and loads the rest.
"""

from __future__ import annotations

import json
import math
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory, TrajectoryMeta
from repro.util.fileio import atomic_write, atomic_write_text

__all__ = [
    "DatasetFormatError",
    "LoadReport",
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "save_json",
    "load_json",
]


class DatasetFormatError(ValueError):
    """A dataset file failed to parse or validate.

    Attributes
    ----------
    path:
        The offending file.
    row:
        1-based row/record number (None when not row-specific; for CSV
        the count includes the header line).
    field:
        The field at fault (``"t"``, ``"x"``, ``"traj_id"``, ...).
    reason:
        Human-readable description of what was wrong.
    """

    def __init__(
        self,
        path: str | Path,
        reason: str,
        *,
        row: int | None = None,
        field: str | None = None,
    ) -> None:
        where = str(path)
        if row is not None:
            where += f":{row}"
        if field is not None:
            where += f" (field {field!r})"
        super().__init__(f"{where}: {reason}")
        self.path = Path(path)
        self.row = row
        self.field = field
        self.reason = reason


@dataclass
class LoadReport:
    """What a skip-mode load quarantined.

    Attributes
    ----------
    skipped_rows:
        (row_number, reason) for rows that could not even be attributed
        to a trajectory.
    quarantined:
        trajectory id -> reason, for whole trajectories dropped because
        any of their rows or their structure was bad.
    """

    skipped_rows: list[tuple[int, str]] = field(default_factory=list)
    quarantined: dict[int, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.skipped_rows and not self.quarantined

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    def summary(self) -> str:
        """One-line human-readable account of what was quarantined."""
        if self.clean:
            return "load clean: nothing skipped"
        return (
            f"{len(self.skipped_rows)} row(s) skipped, "
            f"{len(self.quarantined)} trajectory(ies) quarantined: "
            + "; ".join(f"#{tid}: {why}" for tid, why in sorted(self.quarantined.items()))
        )


def _check_on_error(on_error: str) -> None:
    if on_error not in ("raise", "skip"):
        raise ValueError(f'on_error must be "raise" or "skip", got {on_error!r}')


# NPZ -----------------------------------------------------------------------

def save_npz(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Save a dataset to a compressed ``.npz`` archive (atomically)."""
    path = Path(path)
    counts = np.array([t.n_samples for t in dataset], dtype=np.int64)
    offsets = np.zeros(len(dataset) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    positions = np.empty((total, 2), dtype=np.float64)
    times = np.empty(total, dtype=np.float64)
    ids = np.empty(len(dataset), dtype=np.int64)
    metas = []
    for i, traj in enumerate(dataset):
        lo, hi = offsets[i], offsets[i + 1]
        positions[lo:hi] = traj.positions
        times[lo:hi] = traj.times
        ids[i] = traj.traj_id
        metas.append(traj.meta.to_dict())
    meta_json = np.frombuffer(
        json.dumps({"name": dataset.name, "metas": metas}).encode("utf-8"),
        dtype=np.uint8,
    )
    atomic_write(
        path,
        lambda fh: np.savez_compressed(
            fh,
            positions=positions,
            times=times,
            offsets=offsets,
            ids=ids,
            meta_json=meta_json,
        ),
    )


def load_npz(path: str | Path, *, on_error: str = "raise") -> TrajectoryDataset:
    """Load a dataset saved by :func:`save_npz`."""
    _check_on_error(on_error)
    path = Path(path)
    try:
        with np.load(path) as archive:
            try:
                positions = archive["positions"]
                times = archive["times"]
                offsets = archive["offsets"]
                ids = archive["ids"]
                meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
            except KeyError as exc:
                raise DatasetFormatError(
                    path, f"archive missing array {exc.args[0]!r}", field=str(exc.args[0])
                ) from exc
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        if isinstance(exc, DatasetFormatError):
            raise
        raise DatasetFormatError(path, f"unreadable npz archive: {exc}") from exc
    report = LoadReport()
    dataset = TrajectoryDataset(name=meta.get("name", "dataset"))
    for i in range(len(offsets) - 1):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        traj_id = int(ids[i])
        try:
            dataset.append(
                Trajectory(
                    positions[lo:hi],
                    times[lo:hi],
                    TrajectoryMeta.from_dict(meta["metas"][i]),
                    traj_id,
                )
            )
        except (ValueError, KeyError, IndexError, TypeError) as exc:
            if on_error == "raise":
                raise DatasetFormatError(
                    path, f"trajectory #{traj_id} invalid: {exc}", row=i + 1
                ) from exc
            report.quarantined[traj_id] = str(exc)
    dataset.load_report = report
    return dataset


# CSV -----------------------------------------------------------------------

def save_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Save as ``traj_id,x,y,t`` rows plus a ``.meta.json`` sidecar
    (both written atomically)."""
    path = Path(path)

    def write_rows(fh) -> None:
        fh.write(b"traj_id,x,y,t\n")
        for traj in dataset:
            for x, y, t in traj.iter_points():
                fh.write(f"{traj.traj_id},{x:.9g},{y:.9g},{t:.9g}\n".encode("ascii"))

    atomic_write(path, write_rows)
    sidecar = {
        "name": dataset.name,
        "metas": {str(t.traj_id): t.meta.to_dict() for t in dataset},
    }
    atomic_write_text(
        path.with_suffix(path.suffix + ".meta.json"), json.dumps(sidecar, indent=1)
    )


def _parse_csv_rows(
    path: Path, on_error: str, report: LoadReport
) -> dict[int, list[tuple[int, float, float, float]]]:
    """Parse data rows into {traj_id: [(row_no, x, y, t), ...]}.

    Raises :class:`DatasetFormatError` (or records into ``report`` in
    skip mode) on malformed rows; a bad row whose ``traj_id`` parses
    poisons that whole trajectory (quarantined), one whose id is
    unreadable is recorded as a skipped row.
    """
    by_id: dict[int, list[tuple[int, float, float, float]]] = {}
    fields = ("traj_id", "x", "y", "t")
    with path.open("r") as fh:
        for row_no, line in enumerate(fh, start=1):
            line = line.strip()
            if row_no == 1 or not line:
                continue  # header / blank
            parts = line.split(",")
            if len(parts) != 4:
                reason = f"expected 4 comma-separated fields, got {len(parts)}"
                if on_error == "raise":
                    raise DatasetFormatError(path, reason, row=row_no)
                report.skipped_rows.append((row_no, reason))
                continue
            # traj_id first: it decides where any later error attributes
            try:
                traj_id = int(float(parts[0]))
            except ValueError:
                reason = f"unparseable traj_id {parts[0]!r}"
                if on_error == "raise":
                    raise DatasetFormatError(path, reason, row=row_no, field="traj_id")
                report.skipped_rows.append((row_no, reason))
                continue
            values = []
            bad: tuple[str, str] | None = None
            for name, text in zip(fields[1:], parts[1:]):
                try:
                    v = float(text)
                except ValueError:
                    bad = (name, f"unparseable {name} value {text!r}")
                    break
                if not math.isfinite(v):
                    bad = (name, f"non-finite {name} value {text!r}")
                    break
                values.append(v)
            if bad is not None:
                name, reason = bad
                if on_error == "raise":
                    raise DatasetFormatError(path, reason, row=row_no, field=name)
                report.quarantined.setdefault(traj_id, f"row {row_no}: {reason}")
                by_id.setdefault(traj_id, [])  # keep ordering slot; dropped later
                continue
            x, y, t = values
            by_id.setdefault(traj_id, []).append((row_no, x, y, t))
    return by_id


def load_csv(path: str | Path, *, on_error: str = "raise") -> TrajectoryDataset:
    """Load a dataset saved by :func:`save_csv`.

    Parameters
    ----------
    on_error:
        ``"raise"`` (default) fails fast with a
        :class:`DatasetFormatError` naming the row, field and reason;
        ``"skip"`` quarantines bad trajectories into
        ``dataset.load_report`` and loads the rest.
    """
    _check_on_error(on_error)
    path = Path(path)
    report = LoadReport()
    if not path.exists():
        raise DatasetFormatError(path, "file does not exist")
    by_id = _parse_csv_rows(path, on_error, report)

    sidecar_path = path.with_suffix(path.suffix + ".meta.json")
    try:
        sidecar = (
            json.loads(sidecar_path.read_text())
            if sidecar_path.exists()
            else {"metas": {}}
        )
    except json.JSONDecodeError as exc:
        raise DatasetFormatError(sidecar_path, f"malformed metadata sidecar: {exc}") from exc

    dataset = TrajectoryDataset(name=sidecar.get("name", path.stem))
    for traj_id in sorted(by_id):
        if traj_id in report.quarantined:
            continue
        rows = by_id[traj_id]
        if len(rows) < 2:
            reason = f"only {len(rows)} sample(s); a trajectory needs at least 2"
            if on_error == "raise":
                raise DatasetFormatError(
                    path, f"trajectory #{traj_id}: {reason}",
                    row=rows[0][0] if rows else None,
                )
            report.quarantined[traj_id] = reason
            continue
        times = np.array([r[3] for r in rows], dtype=np.float64)
        steps = np.diff(times)
        if np.any(steps <= 0):
            bad_i = int(np.flatnonzero(steps <= 0)[0]) + 1
            reason = (
                f"non-monotonic time: t={times[bad_i]:.9g} at row {rows[bad_i][0]} "
                f"does not increase over t={times[bad_i - 1]:.9g}"
            )
            if on_error == "raise":
                raise DatasetFormatError(path, reason, row=rows[bad_i][0], field="t")
            report.quarantined[traj_id] = reason
            continue
        positions = np.array([(r[1], r[2]) for r in rows], dtype=np.float64)
        meta_dict = sidecar.get("metas", {}).get(str(traj_id))
        try:
            meta = TrajectoryMeta.from_dict(meta_dict) if meta_dict else TrajectoryMeta()
            dataset.append(Trajectory(positions, times, meta, traj_id))
        except (ValueError, TypeError) as exc:
            if on_error == "raise":
                raise DatasetFormatError(
                    path, f"trajectory #{traj_id} invalid: {exc}", row=rows[0][0]
                ) from exc
            report.quarantined[traj_id] = str(exc)
    dataset.load_report = report
    return dataset


# JSON ----------------------------------------------------------------------

def save_json(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Save the dataset as one self-describing JSON document (atomically)."""
    doc = {
        "name": dataset.name,
        "trajectories": [
            {
                "id": t.traj_id,
                "meta": t.meta.to_dict(),
                "positions": t.positions.tolist(),
                "times": t.times.tolist(),
            }
            for t in dataset
        ],
    }
    atomic_write_text(Path(path), json.dumps(doc))


def load_json(path: str | Path, *, on_error: str = "raise") -> TrajectoryDataset:
    """Load a dataset saved by :func:`save_json` (``on_error`` as in
    :func:`load_csv`; record numbers are 1-based positions in the
    ``trajectories`` array)."""
    _check_on_error(on_error)
    path = Path(path)
    try:
        doc = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, OSError) as exc:
        raise DatasetFormatError(path, f"unreadable JSON document: {exc}") from exc
    if not isinstance(doc, dict) or "trajectories" not in doc:
        raise DatasetFormatError(path, 'document must be an object with a "trajectories" array')
    report = LoadReport()
    dataset = TrajectoryDataset(name=doc.get("name", "dataset"))
    for rec_no, rec in enumerate(doc["trajectories"], start=1):
        traj_id = rec.get("id", rec_no - 1) if isinstance(rec, dict) else rec_no - 1
        try:
            if not isinstance(rec, dict):
                raise TypeError(f"record is {type(rec).__name__}, not an object")
            positions = np.asarray(rec["positions"], dtype=np.float64)
            times = np.asarray(rec["times"], dtype=np.float64)
            dataset.append(
                Trajectory(
                    positions,
                    times,
                    TrajectoryMeta.from_dict(rec.get("meta", {})),
                    int(rec["id"]),
                )
            )
        except (KeyError, ValueError, TypeError) as exc:
            field_name = exc.args[0] if isinstance(exc, KeyError) else None
            reason = (
                f"missing field {field_name!r}"
                if isinstance(exc, KeyError)
                else str(exc)
            )
            if on_error == "raise":
                raise DatasetFormatError(
                    path,
                    f"trajectory record #{rec_no}: {reason}",
                    row=rec_no,
                    field=field_name if isinstance(field_name, str) else None,
                ) from exc
            report.quarantined[int(traj_id) if isinstance(traj_id, (int, float)) else rec_no - 1] = reason
    dataset.load_report = report
    return dataset
