"""Trajectory dataset I/O.

Three formats:

* **NPZ** — the fast native format: packed position/time arrays plus a
  JSON metadata sidecar inside the archive.  Round-trips exactly.
* **CSV** — one row per sample (``traj_id,x,y,t``) plus a companion
  ``*.meta.json``; interoperable with the ecologists' spreadsheet
  tooling.
* **JSON** — fully self-describing, human-inspectable, slowest.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory, TrajectoryMeta

__all__ = [
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "save_json",
    "load_json",
]


def save_npz(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Save a dataset to a compressed ``.npz`` archive."""
    path = Path(path)
    counts = np.array([t.n_samples for t in dataset], dtype=np.int64)
    offsets = np.zeros(len(dataset) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    positions = np.empty((total, 2), dtype=np.float64)
    times = np.empty(total, dtype=np.float64)
    ids = np.empty(len(dataset), dtype=np.int64)
    metas = []
    for i, traj in enumerate(dataset):
        lo, hi = offsets[i], offsets[i + 1]
        positions[lo:hi] = traj.positions
        times[lo:hi] = traj.times
        ids[i] = traj.traj_id
        metas.append(traj.meta.to_dict())
    np.savez_compressed(
        path,
        positions=positions,
        times=times,
        offsets=offsets,
        ids=ids,
        meta_json=np.frombuffer(
            json.dumps({"name": dataset.name, "metas": metas}).encode("utf-8"),
            dtype=np.uint8,
        ),
    )


def load_npz(path: str | Path) -> TrajectoryDataset:
    """Load a dataset saved by :func:`save_npz`."""
    with np.load(path) as archive:
        positions = archive["positions"]
        times = archive["times"]
        offsets = archive["offsets"]
        ids = archive["ids"]
        meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
    dataset = TrajectoryDataset(name=meta.get("name", "dataset"))
    for i in range(len(offsets) - 1):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        dataset.append(
            Trajectory(
                positions[lo:hi],
                times[lo:hi],
                TrajectoryMeta.from_dict(meta["metas"][i]),
                int(ids[i]),
            )
        )
    return dataset


def save_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Save as ``traj_id,x,y,t`` rows plus a ``.meta.json`` sidecar."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write("traj_id,x,y,t\n")
        for traj in dataset:
            for x, y, t in traj.iter_points():
                fh.write(f"{traj.traj_id},{x:.9g},{y:.9g},{t:.9g}\n")
    sidecar = {
        "name": dataset.name,
        "metas": {str(t.traj_id): t.meta.to_dict() for t in dataset},
    }
    path.with_suffix(path.suffix + ".meta.json").write_text(json.dumps(sidecar, indent=1))


def load_csv(path: str | Path) -> TrajectoryDataset:
    """Load a dataset saved by :func:`save_csv`."""
    path = Path(path)
    raw = np.genfromtxt(path, delimiter=",", skip_header=1, dtype=np.float64)
    raw = np.atleast_2d(raw)
    sidecar_path = path.with_suffix(path.suffix + ".meta.json")
    sidecar = (
        json.loads(sidecar_path.read_text()) if sidecar_path.exists() else {"metas": {}}
    )
    dataset = TrajectoryDataset(name=sidecar.get("name", path.stem))
    ids = raw[:, 0].astype(np.int64)
    for traj_id in np.unique(ids):
        rows = ids == traj_id
        meta_dict = sidecar["metas"].get(str(int(traj_id)))
        meta = TrajectoryMeta.from_dict(meta_dict) if meta_dict else TrajectoryMeta()
        dataset.append(
            Trajectory(raw[rows, 1:3], raw[rows, 3], meta, int(traj_id))
        )
    return dataset


def save_json(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Save the dataset as one self-describing JSON document."""
    doc = {
        "name": dataset.name,
        "trajectories": [
            {
                "id": t.traj_id,
                "meta": t.meta.to_dict(),
                "positions": t.positions.tolist(),
                "times": t.times.tolist(),
            }
            for t in dataset
        ],
    }
    Path(path).write_text(json.dumps(doc))


def load_json(path: str | Path) -> TrajectoryDataset:
    """Load a dataset saved by :func:`save_json`."""
    doc = json.loads(Path(path).read_text())
    dataset = TrajectoryDataset(name=doc.get("name", "dataset"))
    for rec in doc["trajectories"]:
        dataset.append(
            Trajectory(
                np.asarray(rec["positions"], dtype=np.float64),
                np.asarray(rec["times"], dtype=np.float64),
                TrajectoryMeta.from_dict(rec["meta"]),
                int(rec["id"]),
            )
        )
    return dataset
