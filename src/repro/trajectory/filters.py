"""Metadata filter algebra for trajectory grouping.

The paper's *Trajectory Grouping* feature associates "a set of filters"
with each rectangular group so the bin shows only trajectories
satisfying them (§IV-C.2).  Filters here form a small composable
algebra (AND/OR/NOT over primitive predicates) with a parseable string
form, e.g. ``"zone=east & direction=inbound & !seed"``, which the
interaction layer and the analyst simulator both use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.trajectory.model import CaptureZone, Direction, Trajectory

__all__ = [
    "MetaFilter",
    "TrueFilter",
    "CaptureZoneFilter",
    "DirectionFilter",
    "SeedFilter",
    "DurationFilter",
    "AndFilter",
    "OrFilter",
    "NotFilter",
    "PredicateFilter",
    "parse_filter",
]


class MetaFilter:
    """Base class: a boolean predicate over trajectories.

    Supports ``&``, ``|`` and ``~`` composition.
    """

    def __call__(self, traj: Trajectory) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __and__(self, other: "MetaFilter") -> "AndFilter":
        return AndFilter(self, other)

    def __or__(self, other: "MetaFilter") -> "OrFilter":
        return OrFilter(self, other)

    def __invert__(self) -> "NotFilter":
        return NotFilter(self)

    def describe(self) -> str:  # pragma: no cover - abstract
        """Compact textual form of the filter (parseable syntax)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


@dataclass(frozen=True, repr=False)
class TrueFilter(MetaFilter):
    """Matches everything — the default group filter."""

    def __call__(self, traj: Trajectory) -> bool:
        return True

    def describe(self) -> str:
        return "*"


@dataclass(frozen=True, repr=False)
class CaptureZoneFilter(MetaFilter):
    """Matches trajectories captured in ``zone``."""

    zone: str

    def __post_init__(self) -> None:
        if self.zone not in CaptureZone:
            raise ValueError(f"unknown capture zone {self.zone!r}; valid: {CaptureZone}")

    def __call__(self, traj: Trajectory) -> bool:
        return traj.meta.capture_zone == self.zone

    def describe(self) -> str:
        return f"zone={self.zone}"


@dataclass(frozen=True, repr=False)
class DirectionFilter(MetaFilter):
    """Matches trajectories with journey direction ``direction``."""

    direction: str

    def __post_init__(self) -> None:
        if self.direction not in Direction:
            raise ValueError(
                f"unknown direction {self.direction!r}; valid: {Direction}"
            )

    def __call__(self, traj: Trajectory) -> bool:
        return traj.meta.direction == self.direction

    def describe(self) -> str:
        return f"direction={self.direction}"


@dataclass(frozen=True, repr=False)
class SeedFilter(MetaFilter):
    """Matches ants carrying a seed; with ``dropped=True``, only those
    that dropped it during handling (the §V-B hypothesis population)."""

    dropped: bool = False

    def __call__(self, traj: Trajectory) -> bool:
        if self.dropped:
            return traj.meta.seed_dropped
        return traj.meta.carrying_seed

    def describe(self) -> str:
        return "seed_dropped" if self.dropped else "seed"


@dataclass(frozen=True, repr=False)
class DurationFilter(MetaFilter):
    """Matches trajectories with duration in [min_s, max_s] seconds."""

    min_s: float = 0.0
    max_s: float = float("inf")

    def __call__(self, traj: Trajectory) -> bool:
        return self.min_s <= traj.duration <= self.max_s

    def describe(self) -> str:
        return f"duration[{self.min_s:g},{self.max_s:g}]"


@dataclass(frozen=True, repr=False)
class PredicateFilter(MetaFilter):
    """Wraps an arbitrary callable predicate with a label."""

    predicate: Callable[[Trajectory], bool]
    label: str = "custom"

    def __call__(self, traj: Trajectory) -> bool:
        return bool(self.predicate(traj))

    def describe(self) -> str:
        return self.label


@dataclass(frozen=True, repr=False)
class AndFilter(MetaFilter):
    left: MetaFilter
    right: MetaFilter

    def __call__(self, traj: Trajectory) -> bool:
        return self.left(traj) and self.right(traj)

    def describe(self) -> str:
        return f"({self.left.describe()} & {self.right.describe()})"


@dataclass(frozen=True, repr=False)
class OrFilter(MetaFilter):
    left: MetaFilter
    right: MetaFilter

    def __call__(self, traj: Trajectory) -> bool:
        return self.left(traj) or self.right(traj)

    def describe(self) -> str:
        return f"({self.left.describe()} | {self.right.describe()})"


@dataclass(frozen=True, repr=False)
class NotFilter(MetaFilter):
    inner: MetaFilter

    def __call__(self, traj: Trajectory) -> bool:
        return not self.inner(traj)

    def describe(self) -> str:
        return f"!{self.inner.describe()}"


def _parse_atom(token: str) -> MetaFilter:
    token = token.strip()
    negate = False
    while token.startswith("!"):
        negate = not negate
        token = token[1:].strip()
    if token in ("*", "true", ""):
        f: MetaFilter = TrueFilter()
    elif token == "seed":
        f = SeedFilter()
    elif token == "seed_dropped":
        f = SeedFilter(dropped=True)
    elif token.startswith("zone="):
        f = CaptureZoneFilter(token[len("zone="):])
    elif token.startswith("direction="):
        f = DirectionFilter(token[len("direction="):])
    elif token.startswith("duration"):
        body = token[len("duration"):].strip()
        if not (body.startswith("[") and body.endswith("]")):
            raise ValueError(f"bad duration filter syntax: {token!r}")
        lo_s, hi_s = body[1:-1].split(",")
        f = DurationFilter(float(lo_s), float(hi_s))
    else:
        raise ValueError(f"unrecognized filter atom: {token!r}")
    return NotFilter(f) if negate else f


def parse_filter(expr: str) -> MetaFilter:
    """Parse a filter expression.

    Grammar (no parentheses; ``&`` binds tighter than ``|``)::

        expr  := term ('|' term)*
        term  := atom ('&' atom)*
        atom  := '!'* (  '*' | 'seed' | 'seed_dropped'
                       | 'zone=' ZONE | 'direction=' DIR
                       | 'duration[' LO ',' HI ']' )

    >>> f = parse_filter("zone=east & direction=inbound")
    >>> f.describe()
    '(zone=east & direction=inbound)'
    """
    terms = expr.split("|")
    term_filters: list[MetaFilter] = []
    for term in terms:
        atoms = [_parse_atom(a) for a in term.split("&")]
        f = atoms[0]
        for nxt in atoms[1:]:
            f = AndFilter(f, nxt)
        term_filters.append(f)
    out = term_filters[0]
    for nxt in term_filters[1:]:
        out = OrFilter(out, nxt)
    return out
