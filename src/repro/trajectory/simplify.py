"""Trajectory simplification — the paper's "compact visual encodings".

§VI-C proposes scaling the small-multiple layout by rendering "general
trajectory shape while discarding high-frequency features", shrinking
the screen real-estate each instance needs.  Two mechanisms:

* :func:`douglas_peucker` — classic tolerance-bounded polyline
  simplification (keeps endpoints, max perpendicular error <= eps);
* :func:`lowpass_smooth` — moving-average low-pass filter that
  suppresses high-frequency jitter while keeping the sample count.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory
from repro.util.geometry import point_segment_distance

__all__ = ["douglas_peucker", "lowpass_smooth", "simplify_dataset", "simplification_error"]


def _dp_mask(points: np.ndarray, eps: float) -> np.ndarray:
    """Boolean keep-mask of Douglas-Peucker on (N, 2) points.

    Iterative stack formulation (no recursion-depth hazard on long
    tracks); each split finds the farthest point from the chord with a
    vectorized distance computation.
    """
    n = len(points)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack: list[tuple[int, int]] = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        a = points[lo]
        b = points[hi]
        # true distance to the chord *segment* (not the infinite line):
        # points projecting beyond the chord ends would otherwise be
        # under-measured and wrongly dropped on hook-shaped paths
        dist = point_segment_distance(points[lo + 1 : hi], a, b)
        k = int(np.argmax(dist))
        if dist[k] > eps:
            mid = lo + 1 + k
            keep[mid] = True
            stack.append((lo, mid))
            stack.append((mid, hi))
    return keep


def douglas_peucker(traj: Trajectory, eps: float) -> Trajectory:
    """Simplify with the Douglas-Peucker algorithm, tolerance ``eps`` meters.

    Invariants (property-tested): endpoints are preserved; every removed
    point lies within ``eps`` of the simplified polyline; the keep set
    is monotone in ``eps`` in the sense that larger tolerances never
    keep more points.
    """
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    if eps == 0 or traj.n_samples <= 2:
        return traj
    keep = _dp_mask(traj.positions, eps)
    return Trajectory(traj.positions[keep], traj.times[keep], traj.meta, traj.traj_id)


def lowpass_smooth(traj: Trajectory, window: int) -> Trajectory:
    """Moving-average smoothing with an odd ``window`` (samples).

    Endpoints are pinned; interior samples are replaced by a centered
    mean computed with a prefix-sum (O(N), no Python loop).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window % 2 == 0:
        raise ValueError(f"window must be odd, got {window}")
    if window == 1 or traj.n_samples <= 2:
        return traj
    half = window // 2
    pos = traj.positions
    n = len(pos)
    # prefix sums with edge padding via index clamping
    idx_lo = np.clip(np.arange(n) - half, 0, n - 1)
    idx_hi = np.clip(np.arange(n) + half, 0, n - 1)
    csum = np.vstack([np.zeros((1, 2)), np.cumsum(pos, axis=0)])
    counts = (idx_hi - idx_lo + 1).astype(np.float64)
    smoothed = (csum[idx_hi + 1] - csum[idx_lo]) / counts[:, None]
    smoothed[0] = pos[0]
    smoothed[-1] = pos[-1]
    return Trajectory(smoothed, traj.times, traj.meta, traj.traj_id)


def simplification_error(original: Trajectory, simplified: Trajectory) -> float:
    """Max distance from any original sample to the simplified polyline.

    Measures shape fidelity for the E10 compact-encoding sweep.
    """
    from repro.util.geometry import point_segment_distance

    a = simplified.positions[:-1]
    b = simplified.positions[1:]
    pts = original.positions
    # (P, S) distances; P*S stays small for study-scale tracks.
    d = point_segment_distance(pts[:, None, :], a[None, :, :], b[None, :, :])
    return float(d.min(axis=1).max())


def simplify_dataset(
    dataset: TrajectoryDataset, eps: float, *, smooth_window: int = 1
) -> TrajectoryDataset:
    """Apply optional smoothing then Douglas-Peucker to every trajectory."""
    out = TrajectoryDataset(name=f"{dataset.name}|dp{eps:g}")
    for traj in dataset:
        t = lowpass_smooth(traj, smooth_window) if smooth_window > 1 else traj
        out.append(douglas_peucker(t, eps))
    return out
