"""Tracking-noise and failure injection.

Field tracking is imperfect: positional jitter at the tracker's
resolution, dropped frames, and whole gaps when the subject is
occluded.  These utilities inject such defects into clean trajectories
so robustness can be tested — the query engine should give (nearly)
the same answers on realistically degraded data, and the tests in
``tests/trajectory/test_noise.py`` / the robustness suite assert that.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory

__all__ = ["add_jitter", "drop_samples", "inject_gaps", "degrade_dataset"]


def add_jitter(
    traj: Trajectory, sigma_m: float, rng: np.random.Generator
) -> Trajectory:
    """Add i.i.d. Gaussian positional noise of ``sigma_m`` meters.

    Models the tracker's spatial resolution (~3 mm in the study).
    Timestamps are untouched.
    """
    if sigma_m < 0:
        raise ValueError("sigma_m must be >= 0")
    if sigma_m == 0:
        return traj
    noisy = traj.positions + rng.normal(0.0, sigma_m, size=traj.positions.shape)
    return Trajectory(noisy, traj.times, traj.meta, traj.traj_id)


def drop_samples(
    traj: Trajectory, drop_fraction: float, rng: np.random.Generator
) -> Trajectory:
    """Randomly drop a fraction of interior samples (lost frames).

    Endpoints are always kept; at least two samples always survive.
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    if drop_fraction == 0.0 or traj.n_samples <= 2:
        return traj
    keep = rng.uniform(size=traj.n_samples) >= drop_fraction
    keep[0] = keep[-1] = True
    return Trajectory(traj.positions[keep], traj.times[keep], traj.meta, traj.traj_id)


def inject_gaps(
    traj: Trajectory,
    n_gaps: int,
    gap_fraction: float,
    rng: np.random.Generator,
) -> Trajectory:
    """Remove ``n_gaps`` contiguous occlusion windows.

    Each gap removes a contiguous run of ``gap_fraction`` of the
    samples (interior only).  Gaps may merge if drawn overlapping.
    """
    if n_gaps < 0:
        raise ValueError("n_gaps must be >= 0")
    if not 0.0 <= gap_fraction < 0.5:
        raise ValueError("gap_fraction must be in [0, 0.5)")
    if n_gaps == 0 or gap_fraction == 0.0 or traj.n_samples <= 4:
        return traj
    n = traj.n_samples
    keep = np.ones(n, dtype=bool)
    width = max(1, int(gap_fraction * n))
    for _ in range(n_gaps):
        start = int(rng.integers(1, max(2, n - width - 1)))
        keep[start : start + width] = False
    keep[0] = keep[-1] = True
    if keep.sum() < 2:
        keep[:] = False
        keep[0] = keep[-1] = True
    return Trajectory(traj.positions[keep], traj.times[keep], traj.meta, traj.traj_id)


def degrade_dataset(
    dataset: TrajectoryDataset,
    rng: np.random.Generator,
    *,
    jitter_m: float = 0.003,
    drop_fraction: float = 0.05,
    n_gaps: int = 1,
    gap_fraction: float = 0.05,
) -> TrajectoryDataset:
    """Apply the full degradation stack to every trajectory.

    Defaults model the study's conditions: 3 mm jitter, 5 % frame
    loss, and one short occlusion per track.
    """
    out = TrajectoryDataset(name=f"{dataset.name}|degraded")
    for traj in dataset:
        t = add_jitter(traj, jitter_m, rng)
        t = drop_samples(t, drop_fraction, rng)
        t = inject_gaps(t, n_gaps, gap_fraction, rng)
        out.append(t)
    return out
