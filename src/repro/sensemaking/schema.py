"""Schemas (Box D): marshaled evidence supporting a theory.

§VI-B links coordinated brushing to schematization: "Brushing and
highlighting amounts to a refinement process that elevates the evidence
file to a schema — a higher-order representation that provides concrete
support for a particular theory."  A :class:`Schema` therefore binds a
theory statement to the evidence items and query verdicts marshaled
behind it, and can report how well-supported the theory currently is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hypothesis import Verdict
from repro.sensemaking.evidence import Evidence

__all__ = ["Schema"]


@dataclass
class Schema:
    """A theory with its marshaled support.

    Attributes
    ----------
    theory:
        The theory being built (e.g. "off-trail ants home toward the
        foraging trail").
    evidence:
        Low-level inferences marshaled behind the theory.
    verdicts:
        Visual-query verdicts accumulated while testing it.
    """

    theory: str
    evidence: list[Evidence] = field(default_factory=list)
    verdicts: list[Verdict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.theory:
            raise ValueError("a schema needs a theory statement")

    def marshal(self, evidence: Evidence) -> None:
        """Attach an evidence item."""
        self.evidence.append(evidence)

    def attach_verdict(self, verdict: Verdict) -> None:
        """Attach a visual-query verdict."""
        self.verdicts.append(verdict)

    @property
    def n_supporting(self) -> int:
        return sum(1 for v in self.verdicts if v.supported)

    @property
    def n_refuting(self) -> int:
        from repro.core.hypothesis import VerdictKind

        return sum(1 for v in self.verdicts if v.kind is VerdictKind.REFUTED)

    def case_strength(self) -> float:
        """Net verdict balance in [-1, 1]: +1 all queries supported the
        theory, -1 all refuted, 0 balanced or untested."""
        n = self.n_supporting + self.n_refuting
        if n == 0:
            return 0.0
        return (self.n_supporting - self.n_refuting) / n

    def summary(self) -> str:
        """One-line state of the case."""
        return (
            f"{self.theory!r}: {len(self.evidence)} evidence items, "
            f"{self.n_supporting} supporting / {self.n_refuting} refuting queries, "
            f"strength {self.case_strength():+.2f}"
        )
