"""Insight provenance (the paper's stated future work).

§VII: "We will also look at ways of integrating our application into
larger scientific workflows to support evidence and insight
provenance."  An :class:`InsightRecord` captures one insight with the
full chain that produced it — the hypothesis, the query parameters, the
verdict, and the evidence it rests on — and a :class:`ProvenanceLog`
stores the session's chain in replayable, serializable form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.util.fileio import atomic_write_text

__all__ = ["InsightRecord", "ProvenanceLog"]


@dataclass(frozen=True)
class InsightRecord:
    """One insight with its derivation chain.

    Attributes
    ----------
    insight:
        The conclusion drawn.
    hypothesis:
        The hypothesis statement it came from.
    query_spec:
        Serializable description of the visual query (brush color,
        stamp count, radius, time window).
    verdict:
        The verdict kind and support fraction.
    evidence_ids:
        Evidence-file item ids marshaled behind it.
    parents:
        Indices of earlier insights this one builds on.
    """

    insight: str
    hypothesis: str = ""
    query_spec: dict[str, Any] = field(default_factory=dict)
    verdict: dict[str, Any] = field(default_factory=dict)
    evidence_ids: tuple[int, ...] = ()
    parents: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.insight:
            raise ValueError("insight text required")

    def to_dict(self) -> dict[str, Any]:
        """Serializable form."""
        return {
            "insight": self.insight,
            "hypothesis": self.hypothesis,
            "query_spec": dict(self.query_spec),
            "verdict": dict(self.verdict),
            "evidence_ids": list(self.evidence_ids),
            "parents": list(self.parents),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "InsightRecord":
        return cls(
            insight=d["insight"],
            hypothesis=d.get("hypothesis", ""),
            query_spec=d.get("query_spec", {}),
            verdict=d.get("verdict", {}),
            evidence_ids=tuple(d.get("evidence_ids", ())),
            parents=tuple(d.get("parents", ())),
        )


class ProvenanceLog:
    """Append-only insight chain with JSON round-trip."""

    def __init__(self) -> None:
        self._records: list[InsightRecord] = []

    def add(self, record: InsightRecord) -> int:
        """Append; parent references must point at earlier records."""
        for p in record.parents:
            if not 0 <= p < len(self._records):
                raise ValueError(f"parent {p} does not exist yet")
        self._records.append(record)
        return len(self._records) - 1

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, i: int) -> InsightRecord:
        return self._records[i]

    def __iter__(self):
        return iter(self._records)

    def lineage(self, index: int) -> list[int]:
        """All ancestor indices of an insight (depth-first, oldest last)."""
        if not 0 <= index < len(self._records):
            raise IndexError(index)
        seen: list[int] = []
        stack = list(self._records[index].parents)
        while stack:
            p = stack.pop()
            if p not in seen:
                seen.append(p)
                stack.extend(self._records[p].parents)
        return seen

    def roots(self) -> list[int]:
        """Insights with no parents."""
        return [i for i, r in enumerate(self._records) if not r.parents]

    def save(self, path: str | Path) -> None:
        """Write the chain to a JSON file (atomically)."""
        atomic_write_text(
            Path(path), json.dumps([r.to_dict() for r in self._records], indent=1)
        )

    @classmethod
    def load(cls, path: str | Path) -> "ProvenanceLog":
        log = cls()
        for d in json.loads(Path(path).read_text()):
            log.add(InsightRecord.from_dict(d))
        return log
