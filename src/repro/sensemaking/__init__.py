"""Sensemaking machinery (§III, §V, §VI).

The paper grounds its design in Pirolli & Card's sensemaking model and
evaluates it by video-coding a pilot study session.  This subpackage
reifies both:

* :mod:`model` — the stage graph of Fig. 2 (information foraging loop
  and sensemaking loop, with the back arrows);
* :mod:`evidence` / :mod:`schema` — the evidence file and schema
  artifacts (the paper argues the persistent small-multiple wall *is*
  the evidence file, and a brushed/highlighted wall a schema);
* :mod:`coding` — the study's video coding scheme (observation /
  hypothesis / tool-use events) as a typed, analyzable event log;
* :mod:`analyst` — a scripted analyst that replays the pilot study's
  documented analysis sequence through the real query engine (E8);
* :mod:`provenance` — insight-provenance records (the paper's stated
  future work: "integrating our application into larger scientific
  workflows to support evidence and insight provenance").
"""

from repro.sensemaking.model import SensemakingModel, Stage
from repro.sensemaking.evidence import Evidence, EvidenceFile
from repro.sensemaking.schema import Schema
from repro.sensemaking.coding import CodedEvent, CodingScheme, EventKind, SessionCoding
from repro.sensemaking.analyst import AnalystSimulator, StudyScript, default_study_script
from repro.sensemaking.provenance import InsightRecord, ProvenanceLog

__all__ = [
    "SensemakingModel",
    "Stage",
    "Evidence",
    "EvidenceFile",
    "Schema",
    "CodedEvent",
    "CodingScheme",
    "EventKind",
    "SessionCoding",
    "AnalystSimulator",
    "StudyScript",
    "default_study_script",
    "InsightRecord",
    "ProvenanceLog",
]
