"""The pilot study's video coding scheme (§V).

"To analyze the recording, we developed a coding scheme to tag the
video, indicating instances when: the researcher made an observation
about the data; the researcher created a hypothesis; the researcher
utilized one of the interactive tools ... along with the question or
hypothesis she was trying to answer."

:class:`CodedEvent` is one tag; :class:`SessionCoding` is the tagged
recording plus the analyses the paper ran over it (event counts, tool
usage per hypothesis, hypotheses-per-minute, stage mapping).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sensemaking.model import SensemakingModel, Stage

__all__ = ["EventKind", "CodedEvent", "CodingScheme", "SessionCoding"]


class EventKind(enum.Enum):
    """The coding scheme's tag taxonomy."""

    OBSERVATION = "observation"
    HYPOTHESIS = "hypothesis"
    TOOL_USE = "tool_use"


#: Tools the scheme distinguishes (the paper's interactive features).
TOOLS = (
    "layout_switch",
    "grouping",
    "coordinated_brush",
    "temporal_filter",
    "depth_slider",
    "exaggeration_slider",
)

#: Default mapping of coded events onto sensemaking stages used by
#: :meth:`SessionCoding.stage_trace` — the §VI analysis: comparisons
#: and observations live in steps 3-4 (evidence file), brushing in
#: step 5 (schematize), hypothesis creation in step 6 (build case).
_STAGE_OF = {
    EventKind.OBSERVATION: Stage.EVIDENCE_FILE,
    EventKind.HYPOTHESIS: Stage.HYPOTHESES,
}
_TOOL_STAGE = {
    "layout_switch": Stage.VISUAL_REPRESENTATION,
    "grouping": Stage.FILTERED_DATA,
    "coordinated_brush": Stage.SCHEMA,
    "temporal_filter": Stage.FILTERED_DATA,
    "depth_slider": Stage.VISUAL_REPRESENTATION,
    "exaggeration_slider": Stage.VISUAL_REPRESENTATION,
}


@dataclass(frozen=True)
class CodedEvent:
    """One tag on the session recording.

    Attributes
    ----------
    t:
        Session time in seconds.
    kind:
        Observation / hypothesis / tool use.
    text:
        What was said or done.
    tool:
        For TOOL_USE events, which tool.
    hypothesis_id:
        The hypothesis the action served, when attributable (the coding
        scheme records "the question or hypothesis she was trying to
        answer").
    """

    t: float
    kind: EventKind
    text: str
    tool: str | None = None
    hypothesis_id: int | None = None

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("event time must be >= 0")
        if self.kind is EventKind.TOOL_USE:
            if self.tool not in TOOLS:
                raise ValueError(f"unknown tool {self.tool!r}; valid: {TOOLS}")
        elif self.tool is not None:
            raise ValueError("only TOOL_USE events carry a tool")


class CodingScheme:
    """Factory/validator for coded events."""

    def observation(self, t: float, text: str, hypothesis_id: int | None = None) -> CodedEvent:
        """Tag an observation about the data."""
        return CodedEvent(t, EventKind.OBSERVATION, text, hypothesis_id=hypothesis_id)

    def hypothesis(self, t: float, text: str, hypothesis_id: int) -> CodedEvent:
        """Tag the creation of a hypothesis."""
        return CodedEvent(t, EventKind.HYPOTHESIS, text, hypothesis_id=hypothesis_id)

    def tool_use(
        self, t: float, tool: str, text: str = "", hypothesis_id: int | None = None
    ) -> CodedEvent:
        """Tag a use of an interactive tool."""
        return CodedEvent(t, EventKind.TOOL_USE, text, tool=tool, hypothesis_id=hypothesis_id)


class SessionCoding:
    """A tagged session recording plus the paper's analyses."""

    def __init__(self, events: list[CodedEvent] | None = None) -> None:
        self._events: list[CodedEvent] = []
        for e in events or []:
            self.add(e)

    def add(self, event: CodedEvent) -> None:
        """Append in (non-strictly) increasing time order."""
        if self._events and event.t < self._events[-1].t:
            raise ValueError(
                f"events must be time-ordered; got t={event.t} after t={self._events[-1].t}"
            )
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def duration_s(self) -> float:
        return self._events[-1].t if self._events else 0.0

    # Analyses ----------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Events per kind."""
        out = {k.value: 0 for k in EventKind}
        for e in self._events:
            out[e.kind.value] += 1
        return out

    def tool_usage(self) -> dict[str, int]:
        """Tool-use events per tool."""
        out: dict[str, int] = {}
        for e in self._events:
            if e.kind is EventKind.TOOL_USE and e.tool:
                out[e.tool] = out.get(e.tool, 0) + 1
        return out

    def hypotheses_per_minute(self) -> float:
        """Rate of hypothesis creation — the paper's 'several hypotheses
        ... within a span of few minutes'."""
        n = self.counts()[EventKind.HYPOTHESIS.value]
        minutes = self.duration_s / 60.0
        return n / minutes if minutes > 0 else 0.0

    def queries_per_hypothesis(self) -> dict[int, int]:
        """Coordinated-brush uses attributed to each hypothesis."""
        out: dict[int, int] = {}
        for e in self._events:
            if (
                e.kind is EventKind.TOOL_USE
                and e.tool == "coordinated_brush"
                and e.hypothesis_id is not None
            ):
                out[e.hypothesis_id] = out.get(e.hypothesis_id, 0) + 1
        return out

    def hypothesis_latencies(self) -> np.ndarray:
        """Seconds from each hypothesis tag to its first attributed
        brush use — how quickly a theory became a visual query."""
        created: dict[int, float] = {}
        first_query: dict[int, float] = {}
        for e in self._events:
            if e.kind is EventKind.HYPOTHESIS and e.hypothesis_id is not None:
                created.setdefault(e.hypothesis_id, e.t)
            if (
                e.kind is EventKind.TOOL_USE
                and e.tool == "coordinated_brush"
                and e.hypothesis_id is not None
            ):
                first_query.setdefault(e.hypothesis_id, e.t)
        lat = [
            first_query[h] - created[h]
            for h in created
            if h in first_query and first_query[h] >= created[h]
        ]
        return np.asarray(lat, dtype=np.float64)

    def stage_trace(self) -> list[Stage]:
        """Events mapped onto sensemaking stages, in time order."""
        trace: list[Stage] = []
        for e in self._events:
            if e.kind is EventKind.TOOL_USE and e.tool:
                trace.append(_TOOL_STAGE[e.tool])
            else:
                trace.append(_STAGE_OF[e.kind])
        return trace

    def stage_coverage(self, model: SensemakingModel | None = None) -> float:
        """Fraction of the model's stages the session touched."""
        model = model or SensemakingModel()
        return model.path_coverage(self.stage_trace())
