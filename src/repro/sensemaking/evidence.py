"""The evidence file (Box C of the sensemaking model).

§VI-A: "the small-multiple layout in itself could be considered an
evidence file in our case" — low-level inferences (this group is
windier; those ants head west) stayed externalized on the wall instead
of in a separate artifact.  §VI-A also notes the missing feature:
"there was no explicit way of recording or tagging those inferences.
A future iteration of the design could add this feature."  This module
*is* that future iteration: typed evidence items, taggable and linkable
to the trajectories that support them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Evidence", "EvidenceFile"]


@dataclass(frozen=True)
class Evidence:
    """One low-level inference extracted from the visualization.

    Attributes
    ----------
    text:
        The inference as the researcher voiced it.
    traj_indices:
        Dataset indices of the trajectories supporting it.
    tags:
        Free-form labels ("windiness", "exit-side", ...).
    source_stage:
        Which numbered model step produced it (3 = extract features,
        4 = search for patterns).
    """

    text: str
    traj_indices: tuple[int, ...] = ()
    tags: frozenset[str] = frozenset()
    source_stage: int = 4

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("evidence needs text")
        if self.source_stage not in (1, 2, 3, 4, 5, 6, 7):
            raise ValueError("source_stage must be a model step 1-7")


class EvidenceFile:
    """A taggable collection of evidence items."""

    def __init__(self) -> None:
        self._items: list[Evidence] = []

    def add(self, evidence: Evidence) -> int:
        """Record an item; returns its id within the file."""
        self._items.append(evidence)
        return len(self._items) - 1

    def record(
        self,
        text: str,
        traj_indices=(),
        tags=(),
        source_stage: int = 4,
    ) -> int:
        """Convenience constructor + add."""
        return self.add(
            Evidence(
                text=text,
                traj_indices=tuple(int(i) for i in traj_indices),
                tags=frozenset(tags),
                source_stage=source_stage,
            )
        )

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, i: int) -> Evidence:
        return self._items[i]

    def with_tag(self, tag: str) -> list[Evidence]:
        """All items carrying a tag."""
        return [e for e in self._items if tag in e.tags]

    def supporting(self, traj_index: int) -> list[Evidence]:
        """Items citing a particular trajectory."""
        return [e for e in self._items if traj_index in e.traj_indices]

    def tag_histogram(self) -> dict[str, int]:
        """Counts of evidence items per tag."""
        out: dict[str, int] = {}
        for e in self._items:
            for t in e.tags:
                out[t] = out.get(t, 0) + 1
        return out

    def cited_trajectories(self) -> np.ndarray:
        """Sorted unique dataset indices cited by any evidence."""
        cited = sorted({i for e in self._items for i in e.traj_indices})
        return np.asarray(cited, dtype=np.int64)
