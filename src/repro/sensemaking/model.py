"""Pirolli & Card's sensemaking model (Fig. 2), as adapted by the paper.

The model is a directed stage graph: raw data flows up through the
*information foraging loop* (filter -> visualize -> extract features ->
search for patterns) into the *sensemaking loop* (schematize -> build
case -> tell story), with back edges everywhere ("the process is highly
fluid and iterative").  The coding analysis of §V maps user actions
onto these stages; :class:`SensemakingModel` provides the graph, stage
metadata, and transition validation used by the coding layer.
"""

from __future__ import annotations

import enum

import networkx as nx

__all__ = ["Stage", "SensemakingModel"]


class Stage(enum.Enum):
    """Stages of the adapted Pirolli-Card model (Fig. 2).

    Box letters follow the paper's discussion: the visual
    representations are Box B, the evidence file Box C.
    """

    RAW_DATA = "raw data"
    FILTERED_DATA = "filtered data"          # Box A: relevant subsets
    VISUAL_REPRESENTATION = "visualization"  # Box B
    EVIDENCE_FILE = "evidence file"          # Box C
    SCHEMA = "schema"                        # Box D
    HYPOTHESES = "hypotheses"                # Box E
    PRESENTATION = "presentation"            # Box F

    @property
    def loop(self) -> str:
        """Which loop the stage belongs to."""
        if self in (
            Stage.RAW_DATA,
            Stage.FILTERED_DATA,
            Stage.VISUAL_REPRESENTATION,
            Stage.EVIDENCE_FILE,
        ):
            return "foraging"
        return "sensemaking"


#: Forward transitions (stage -> next stage) of Fig. 2's main flow.
_FORWARD = [
    (Stage.RAW_DATA, Stage.FILTERED_DATA),          # 1. filter & select
    (Stage.FILTERED_DATA, Stage.VISUAL_REPRESENTATION),  # 2. visualize
    (Stage.VISUAL_REPRESENTATION, Stage.EVIDENCE_FILE),  # 3/4. extract features, search for patterns
    (Stage.EVIDENCE_FILE, Stage.SCHEMA),            # 5. schematize
    (Stage.SCHEMA, Stage.HYPOTHESES),               # 6. build case
    (Stage.HYPOTHESES, Stage.PRESENTATION),         # 7. tell story
]

#: Human-readable labels of the numbered process steps.
STEP_LABELS = {
    1: "filter and select",
    2: "visualize",
    3: "extract features",
    4: "search for patterns",
    5: "schematize",
    6: "build case",
    7: "tell story",
}


class SensemakingModel:
    """The stage graph with forward and feedback edges.

    Forward edges are the numbered process steps; every forward edge
    has a matching back edge (the model's top-down arrows), so any
    adjacent move in either direction is a valid transition.
    """

    def __init__(self) -> None:
        g = nx.DiGraph()
        g.add_nodes_from(Stage)
        for a, b in _FORWARD:
            g.add_edge(a, b, direction="forward")
            g.add_edge(b, a, direction="back")
        self.graph = g

    def stages(self) -> list[Stage]:
        """Stages in forward process order."""
        return list(Stage)

    def is_valid_transition(self, src: Stage, dst: Stage) -> bool:
        """Whether moving from ``src`` to ``dst`` is one model step."""
        return self.graph.has_edge(src, dst)

    def is_forward(self, src: Stage, dst: Stage) -> bool:
        """Whether the edge is a bottom-up (data -> theory) step."""
        return (
            self.graph.has_edge(src, dst)
            and self.graph.edges[src, dst]["direction"] == "forward"
        )

    def loop_of(self, stage: Stage) -> str:
        """Which loop (foraging/sensemaking) a stage belongs to."""
        return stage.loop

    def path_coverage(self, visited: list[Stage]) -> float:
        """Fraction of stages a session touched — E8's stage-coverage
        statistic (the paper argues the tool exercised the full
        foraging loop plus schematization)."""
        return len(set(visited)) / len(Stage)

    def transition_mix(self, visited: list[Stage]) -> dict[str, int]:
        """Counts of bottom-up / top-down / stay moves in a session
        trace — quantifying the 'opportunistic mix' Pirolli describes.

        Moves are classified by process-order direction (any number of
        stages at once — the model's arrows chain, and real analysts
        jump): ``forward`` = toward theory, ``back`` = toward data,
        ``stay`` = same stage.  ``adjacent`` counts the moves that were
        single model edges.
        """
        order = {stage: i for i, stage in enumerate(Stage)}
        out = {"forward": 0, "back": 0, "stay": 0, "adjacent": 0}
        for a, b in zip(visited[:-1], visited[1:]):
            if a == b:
                out["stay"] += 1
            elif order[b] > order[a]:
                out["forward"] += 1
            else:
                out["back"] += 1
            if self.is_valid_transition(a, b):
                out["adjacent"] += 1
        return out
