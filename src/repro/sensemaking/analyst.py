"""The scripted analyst — replaying the pilot study (E8).

We cannot re-run the human study, but its analysis sequence is
documented in §V-§VI: the researcher grouped the data by capture zone,
compared groups and voiced low-level observations (windy vs. direct),
then cycled through hypotheses — the east/west exit query of Fig. 5,
its compass-symmetric variants, and the seed-drop dwell query —
testing each with a coordinated brush plus temporal filter in rapid
succession.

:class:`AnalystSimulator` drives a real
:class:`~repro.core.session.ExplorationSession` through that script,
producing the artifacts the paper's evaluation analyzed: a
:class:`~repro.sensemaking.coding.SessionCoding` (the tagged video),
an :class:`~repro.sensemaking.evidence.EvidenceFile`, per-theory
:class:`~repro.sensemaking.schema.Schema` objects, and the verdicts.

Action timing uses a simple cost model (seconds per action kind) so
rates like hypotheses-per-minute are meaningful and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytics.exits import opposite_side
from repro.analytics.stats import zone_straightness_table
from repro.core.brush import BrushStroke, stroke_from_rect
from repro.core.hypothesis import Hypothesis, Verdict
from repro.core.session import ExplorationSession
from repro.core.temporal import TimeWindow
from repro.sensemaking.coding import CodingScheme, SessionCoding
from repro.sensemaking.evidence import EvidenceFile
from repro.sensemaking.provenance import InsightRecord, ProvenanceLog
from repro.sensemaking.schema import Schema
from repro.synth.arena import Arena
from repro.trajectory.filters import SeedFilter

__all__ = ["ScriptAction", "StudyScript", "AnalystSimulator", "default_study_script"]

#: Seconds each action kind takes in the session-time model.
ACTION_COST_S = {
    "layout": 5.0,
    "group": 20.0,
    "observe": 15.0,
    "hypothesize": 20.0,
    "brush": 6.0,
    "temporal": 4.0,
    "read": 4.0,
}


@dataclass(frozen=True)
class ScriptAction:
    """One scripted step.

    ``kind`` selects the behaviour:

    * ``layout`` — switch layout preset (``arg`` = keypad key);
    * ``group`` — apply the Fig. 3 five-zone grouping;
    * ``observe`` — voice an observation (``arg`` = text, ``tags``);
    * ``test`` — formulate and test a hypothesis (``hypothesis``).
    """

    kind: str
    arg: str = ""
    tags: tuple[str, ...] = ()
    hypothesis: Hypothesis | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("layout", "group", "observe", "test"):
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.kind == "test" and self.hypothesis is None:
            raise ValueError("test actions need a hypothesis")


@dataclass(frozen=True)
class StudyScript:
    """An ordered analyst script."""

    actions: tuple[ScriptAction, ...]
    name: str = "pilot-study"

    def __len__(self) -> int:
        return len(self.actions)


def _exit_brush(arena: Arena, side: str, color: str) -> BrushStroke:
    """Brush covering the ``side`` edge strip of the arena — the Fig. 5
    gesture ('the researcher brushed the left (west) part of the
    arena')."""
    r = arena.radius
    depth = 0.3 * r       # strip thickness toward the center
    half_span = 0.6 * r   # strip extent along the rim
    rects = {
        "west": ((-r, -half_span), (-r + depth, half_span)),
        "east": ((r - depth, -half_span), (r, half_span)),
        "north": ((-half_span, r - depth), (half_span, r)),
        "south": ((-half_span, -r), (half_span, -r + depth)),
    }
    lo, hi = rects[side]
    return stroke_from_rect(lo, hi, radius=0.12 * r, color=color)


def _center_brush(arena: Arena, color: str) -> BrushStroke:
    """Brush on the arena center (the seed-drop query gesture)."""
    r = 0.15 * arena.radius
    return stroke_from_rect((-r / 2, -r / 2), (r / 2, r / 2), radius=r, color=color)


def default_study_script(arena: Arena | None = None) -> StudyScript:
    """The pilot study's documented sequence as a script.

    Layout -> grouping -> comparison observations -> the Fig. 5
    east->west hypothesis -> its three compass-symmetric variants ->
    the seed-drop dwell hypothesis.
    """
    arena = arena or Arena()
    actions: list[ScriptAction] = [
        ScriptAction("layout", arg="3"),
        ScriptAction("group"),
        ScriptAction(
            "observe",
            arg="trajectories of ants captured on the trail look more windy",
            tags=("windiness", "on-trail"),
        ),
        ScriptAction(
            "observe",
            arg="trajectories of ants captured off the trail look more direct",
            tags=("windiness", "off-trail"),
        ),
    ]
    for zone in ("east", "west", "north", "south"):
        side = opposite_side(zone)
        actions.append(
            ScriptAction(
                "test",
                hypothesis=Hypothesis(
                    statement=(
                        f"ants captured {zone} of the foraging trail exit the "
                        f"arena from the {side} side"
                    ),
                    strokes=(_exit_brush(arena, side, "red"),),
                    window=TimeWindow.end(0.15),
                    target_group=zone,
                ),
            )
        )
    actions.append(
        ScriptAction(
            "test",
            hypothesis=Hypothesis(
                statement=(
                    "ants that dropped their seed spend the beginning of the "
                    "experiment searching near the arena center"
                ),
                strokes=(_center_brush(arena, "green"),),
                window=TimeWindow.beginning(0.2),
                # comparative reading: seed-droppers show long green
                # (near-perpendicular) early runs more often than the rest
                target_filter=SeedFilter(dropped=True),
                min_highlight_s=8.0,
                contrast=True,
            ),
        )
    )
    return StudyScript(tuple(actions))


@dataclass
class StudyReplay:
    """Everything the simulated session produced."""

    coding: SessionCoding
    evidence: EvidenceFile
    schemas: list[Schema]
    verdicts: list[Verdict]
    session: ExplorationSession
    provenance: ProvenanceLog = field(default_factory=ProvenanceLog)

    def hypotheses_tested(self) -> int:
        """Number of hypotheses evaluated in the session."""
        return len(self.verdicts)

    def supported_count(self) -> int:
        """Number of supported verdicts."""
        return sum(1 for v in self.verdicts if v.supported)


class AnalystSimulator:
    """Drives an exploration session through a study script."""

    def __init__(self, session: ExplorationSession, arena: Arena | None = None) -> None:
        self.session = session
        self.arena = arena or Arena()
        self._coder = CodingScheme()

    def run(self, script: StudyScript | None = None) -> StudyReplay:
        """Execute the script; returns the full replay record."""
        script = script or default_study_script(self.arena)
        coding = SessionCoding()
        evidence = EvidenceFile()
        provenance = ProvenanceLog()
        schemas: list[Schema] = []
        verdicts: list[Verdict] = []
        t = 0.0
        hyp_counter = 0
        for action in script.actions:
            if action.kind == "layout":
                t += ACTION_COST_S["layout"]
                self.session.switch_layout(action.arg)
                coding.add(self._coder.tool_use(t, "layout_switch", f"layout {action.arg}"))
            elif action.kind == "group":
                t += ACTION_COST_S["group"]
                self.session.enable_fig3_groups()
                coding.add(self._coder.tool_use(t, "grouping", "five-zone grouping"))
            elif action.kind == "observe":
                t += ACTION_COST_S["observe"]
                coding.add(self._coder.observation(t, action.arg))
                evidence.record(action.arg, tags=action.tags, source_stage=4)
            elif action.kind == "test":
                hyp = action.hypothesis
                assert hyp is not None
                hyp_id = hyp_counter
                hyp_counter += 1
                t += ACTION_COST_S["hypothesize"]
                coding.add(self._coder.hypothesis(t, hyp.statement, hyp_id))
                # brush gesture(s)
                for stroke in hyp.strokes:
                    t += ACTION_COST_S["brush"]
                    self.session.brush(stroke)
                    coding.add(
                        self._coder.tool_use(
                            t, "coordinated_brush", f"brush {stroke.color}", hyp_id
                        )
                    )
                if not hyp.window.is_everything:
                    t += ACTION_COST_S["temporal"]
                    self.session.set_time_window(hyp.window)
                    coding.add(
                        self._coder.tool_use(
                            t, "temporal_filter", hyp.window.describe(), hyp_id
                        )
                    )
                verdict = self.session.test_hypothesis(hyp)
                verdicts.append(verdict)
                t += ACTION_COST_S["read"]
                support_pct = f"{verdict.support:.0%}"
                coding.add(
                    self._coder.observation(
                        t,
                        f"query result: {support_pct} highlighted -> {verdict.kind.value}",
                        hypothesis_id=hyp_id,
                    )
                )
                schema = Schema(theory=hyp.statement)
                schema.attach_verdict(verdict)
                ev_id = evidence.record(
                    f"visual query for {hyp.statement!r}: {support_pct} support",
                    traj_indices=verdict.result.highlighted_indices()[:20],
                    tags=("visual-query",),
                    source_stage=5,
                )
                schema.marshal(evidence[ev_id])
                schemas.append(schema)
                provenance.add(
                    InsightRecord(
                        insight=f"{hyp.statement}: {verdict.kind.value}",
                        hypothesis=hyp.statement,
                        query_spec={
                            "color": hyp.color,
                            "window": hyp.window.describe(),
                            "target_group": hyp.target_group,
                        },
                        verdict={
                            "kind": verdict.kind.value,
                            "support": verdict.support,
                        },
                        evidence_ids=(ev_id,),
                    )
                )
                # reset brush state between hypotheses, as the study did
                self.session.erase()
                self.session.set_time_window(TimeWindow.all())
        return StudyReplay(
            coding=coding,
            evidence=evidence,
            schemas=schemas,
            verdicts=verdicts,
            session=self.session,
            provenance=provenance,
        )

    def data_grounded_observations(self) -> list[str]:
        """Observations re-derived from the data itself (not scripted):
        confirms the windy/direct comparison the researcher voiced also
        holds in the synthetic dataset."""
        table = zone_straightness_table(self.session.dataset)
        on = table.get("on", 0.0)
        off = np.mean([v for z, v in table.items() if z != "on"]) if len(table) > 1 else 0.0
        out = []
        if off > on:
            out.append(
                f"on-trail straightness {on:.2f} < off-trail {off:.2f}: "
                "on-trail ants are windier"
            )
        return out
