"""Degradation accounting.

Every resilience mechanism in this package — worker supervision, query
fallback, loader quarantine — degrades *visibly*: whatever failed, was
retried, or ran on a slower path is recorded in a
:class:`DegradationReport` attached to the operation's result
(``ParallelRenderReport.degradation``, ``QueryResult.degradation``).
The contract is "no silent drops": a frame rendered under injected
worker crashes is bit-identical to the healthy frame, and the report
accounts for every fault that stood between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs

__all__ = ["FaultEvent", "DegradationReport"]


@dataclass(frozen=True)
class FaultEvent:
    """One observed failure and the action the system took.

    Attributes
    ----------
    kind:
        What went wrong: ``"crash"`` (worker/pool death), ``"error"``
        (job raised), ``"timeout"``, ``"corrupt"`` (result failed
        validation), ``"injected-*"`` (a fault-plan fault observed as
        such), ``"index-failure"`` / ``"index-build-failure"`` (spatial
        index misbehaved), ``"io-row"`` / ``"io-trajectory"`` (loader
        quarantine), ``"shm-attach-failure"`` (a shared-memory store
        handle could not be attached — stale epoch or evicted block).
    scope:
        Which layer observed it: ``"job"``, ``"pool"``, ``"index"``,
        ``"io"``, or ``"session"``.
    action:
        What the supervisor did about it: ``"retried"``,
        ``"serial-fallback"``, ``"degraded-brute-force"``,
        ``"respawned"``, ``"quarantined"``, ``"skipped"``, or
        ``"pickle-fallback"`` (the pool shipped the pickled dataset
        instead of a zero-copy store handle).
    job:
        Job index the event concerns, when job-scoped.
    attempt:
        Zero-based attempt number that failed.
    detail:
        Free-form context (exception repr, fault spec, row number).
    """

    kind: str
    scope: str
    action: str
    job: int | None = None
    attempt: int = 0
    detail: str = ""


@dataclass
class DegradationReport:
    """Accumulated record of what failed and how it was absorbed."""

    events: list[FaultEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        *,
        scope: str,
        action: str,
        job: int | None = None,
        attempt: int = 0,
        detail: str = "",
    ) -> FaultEvent:
        """Append one event and return it.

        Every degradation in the system funnels through here (query
        fallback, worker supervision, loader quarantine, store
        transport), so this is also the telemetry chokepoint: each
        event increments the ``resilience.faults`` counter family
        (labelled by kind/scope/action) and respawn actions
        additionally feed ``pool.worker.respawns``.
        """
        event = FaultEvent(kind, scope, action, job, attempt, detail)
        self.events.append(event)
        obs.counter_add(
            "resilience.faults", 1, kind=kind, scope=scope, action=action
        )
        if action == "respawned":
            obs.counter_add("pool.worker.respawns", 1, kind=kind)
        return event

    # Introspection --------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True when anything at all went wrong."""
        return bool(self.events)

    @property
    def n_events(self) -> int:
        return len(self.events)

    @property
    def n_retried(self) -> int:
        return sum(1 for e in self.events if e.action == "retried")

    @property
    def n_fallbacks(self) -> int:
        return sum(1 for e in self.events if e.action == "serial-fallback")

    def jobs_touched(self) -> set[int]:
        """Job indices with at least one recorded event."""
        return {e.job for e in self.events if e.job is not None}

    def by_action(self) -> dict[str, int]:
        """Histogram of actions taken."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.action] = out.get(e.action, 0) + 1
        return out

    def by_kind(self) -> dict[str, int]:
        """Histogram of failure kinds observed."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def merge(self, other: "DegradationReport") -> "DegradationReport":
        """Fold another report's events into this one (returns self)."""
        self.events.extend(other.events)
        return self

    def summary(self) -> str:
        """One-line human-readable account."""
        if not self.events:
            return "healthy: no faults observed"
        kinds = ", ".join(f"{k}x{n}" for k, n in sorted(self.by_kind().items()))
        actions = ", ".join(f"{a}x{n}" for a, n in sorted(self.by_action().items()))
        return f"{self.n_events} fault(s) [{kinds}] absorbed by [{actions}]"
