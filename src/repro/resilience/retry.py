"""Generic retry with exponential backoff and deterministic jitter.

:func:`retry_call` (and the :func:`retryable` decorator) wrap any
callable in a :class:`RetryPolicy`: up to ``max_attempts`` tries,
delays growing geometrically from ``base_delay_s`` and capped at
``max_delay_s``, each delay perturbed by a *deterministic* jitter
(seeded hash of the attempt number — reproducible runs, yet staggered
enough that a wall's render nodes don't thunder in lockstep).  Clock
and sleep are injectable so tests assert exact backoff schedules
without waiting real time.

Per-attempt timeouts — the orphaned-attempt contract
----------------------------------------------------
When ``attempt_timeout_s`` is set, each attempt runs on a fresh
**daemon** thread.  A timed-out attempt is *abandoned, not killed*:
Python offers no safe thread cancellation, so the orphan runs to
completion in the background and its result (or exception) is
discarded.  Consequences callers must design for:

* ``fn``'s side effects should be idempotent or harmless when
  duplicated — a retry may overlap an orphan still executing;
* orphans hold whatever resources ``fn`` acquired until they finish;
  every abandonment is counted on the ``resilience.retry.orphaned``
  telemetry counter so a leak shows up as a climbing number, not a
  mystery;
* the threads are daemons: a process exit never blocks waiting for an
  orphaned attempt (the historical failure mode of the pool-based
  implementation, whose non-daemon workers kept finished processes
  alive).

Process-level jobs that need true kill-and-respawn timeouts belong in
:class:`repro.resilience.supervisor.SupervisedPool` instead.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, TypeVar

__all__ = [
    "RetryPolicy",
    "RetryError",
    "AttemptTimeout",
    "retry_call",
    "retryable",
    "DEFAULT_POLICY",
]

R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (>= 1).
    base_delay_s:
        Delay before the first retry.
    multiplier:
        Geometric backoff factor per further retry.
    max_delay_s:
        Delay ceiling.
    jitter:
        Fractional jitter amplitude: each delay is scaled by a
        deterministic factor in ``[1 - jitter, 1 + jitter]``.
    attempt_timeout_s:
        Per-attempt wall-clock budget (None = unbounded).  See the
        module docstring for the orphaned-attempt contract.
    seed:
        Seeds the jitter sequence.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    attempt_timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must lie in [0, 1)")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")

    def delay_for(self, retry_index: int) -> float:
        """Backoff delay before retry ``retry_index`` (0 = first retry).

        Deterministic: ``min(base * multiplier**i, max) * jitter_factor``
        where the jitter factor depends only on (seed, retry_index).
        """
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        raw = min(self.base_delay_s * self.multiplier**retry_index, self.max_delay_s)
        if self.jitter == 0.0:
            return raw
        digest = hashlib.blake2b(
            f"{self.seed}:{retry_index}".encode("ascii"), digest_size=8
        ).digest()
        h = int.from_bytes(digest, "big") / 2**64
        return raw * (1.0 + self.jitter * (2.0 * h - 1.0))

    def with_seed(self, seed: int) -> "RetryPolicy":
        """Copy with a different jitter seed."""
        return replace(self, seed=seed)


#: Library-wide defaults: 3 attempts, 50 ms base delay doubling to a
#: 2 s cap, 10% deterministic jitter, no per-attempt timeout.
DEFAULT_POLICY = RetryPolicy()


class RetryError(RuntimeError):
    """All attempts exhausted; carries the final failure."""

    def __init__(self, attempts: int, last_exception: BaseException) -> None:
        super().__init__(
            f"gave up after {attempts} attempt(s): {last_exception!r}"
        )
        self.attempts = attempts
        self.last_exception = last_exception


class AttemptTimeout(RuntimeError):
    """One attempt exceeded ``attempt_timeout_s``."""

    def __init__(self, timeout_s: float, attempt: int) -> None:
        super().__init__(f"attempt {attempt} exceeded {timeout_s:.3f}s budget")
        self.timeout_s = timeout_s
        self.attempt = attempt


def _count_orphan() -> None:
    """Bump ``resilience.retry.orphaned``, tolerating a missing or
    broken telemetry layer — abandoning an attempt must never itself
    fail because the counter could not be written."""
    try:
        from repro import obs

        obs.counter_add("resilience.retry.orphaned", 1)
    except Exception:
        pass


def _attempt_with_timeout(
    fn: Callable[..., R],
    args: tuple,
    kwargs: dict,
    timeout_s: float,
    attempt: int,
) -> R:
    """Run one attempt on a fresh daemon thread with a wall-clock budget.

    On timeout the thread is *orphaned* (see module docstring): it keeps
    running detached, its eventual result is dropped, and this call
    raises :class:`AttemptTimeout`.  Exceptions from ``fn`` re-raise
    here with their original traceback.
    """
    box: list[tuple[str, Any]] = []
    done = threading.Event()

    def _target() -> None:
        try:
            box.append(("ok", fn(*args, **kwargs)))
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            box.append(("err", exc))
        finally:
            done.set()

    thread = threading.Thread(
        target=_target, name=f"retry-attempt-{attempt}", daemon=True
    )
    thread.start()
    if not done.wait(timeout_s):
        _count_orphan()
        raise AttemptTimeout(timeout_s, attempt)
    status, value = box[0]
    if status == "err":
        raise value
    return value  # type: ignore[no-any-return]


def retry_call(
    fn: Callable[..., R],
    *args: Any,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    **kwargs: Any,
) -> R:
    """Call ``fn(*args, **kwargs)``, retrying under ``policy``.

    Parameters
    ----------
    policy:
        Retry policy (defaults to :data:`DEFAULT_POLICY`).
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.
    sleep:
        Injectable sleep (tests pass a recorder).
    on_retry:
        Optional callback ``(attempt, exception, upcoming_delay_s)``
        invoked before each backoff sleep.

    Raises
    ------
    RetryError
        When every attempt failed; ``last_exception`` holds the final
        cause (also chained via ``raise ... from``).
    """
    policy = policy or DEFAULT_POLICY
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            if policy.attempt_timeout_s is None:
                return fn(*args, **kwargs)
            return _attempt_with_timeout(
                fn, args, kwargs, policy.attempt_timeout_s, attempt
            )
        except retry_on as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.delay_for(attempt)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
    assert last is not None
    raise RetryError(policy.max_attempts, last) from last


def retryable(
    policy: RetryPolicy | None = None,
    *,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
) -> Callable[[Callable[..., R]], Callable[..., R]]:
    """Decorator form of :func:`retry_call`.

    >>> @retryable(RetryPolicy(max_attempts=2, base_delay_s=0.0))
    ... def flaky():
    ...     return 42
    >>> flaky()
    42
    """

    def decorate(fn: Callable[..., R]) -> Callable[..., R]:
        def wrapper(*args: Any, **kwargs: Any) -> R:
            return retry_call(
                fn, *args, policy=policy, retry_on=retry_on, sleep=sleep, **kwargs
            )

        wrapper.__name__ = getattr(fn, "__name__", "retryable")
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
