"""Generic retry with exponential backoff and deterministic jitter.

:func:`retry_call` (and the :func:`retryable` decorator) wrap any
callable in a :class:`RetryPolicy`: up to ``max_attempts`` tries,
delays growing geometrically from ``base_delay_s`` and capped at
``max_delay_s``, each delay perturbed by a *deterministic* jitter
(seeded hash of the attempt number — reproducible runs, yet staggered
enough that a wall's render nodes don't thunder in lockstep).  Clock
and sleep are injectable so tests assert exact backoff schedules
without waiting real time.

Per-attempt timeouts: when ``attempt_timeout_s`` is set,
:func:`retry_call` runs each attempt on a helper thread and abandons it
on timeout (the thread is left to finish in the background — fine for
pure computations; process-level jobs get true kill-and-respawn
timeouts from :class:`repro.resilience.supervisor.SupervisedPool`).
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from typing import Any, Callable, TypeVar

__all__ = [
    "RetryPolicy",
    "RetryError",
    "AttemptTimeout",
    "retry_call",
    "retryable",
    "DEFAULT_POLICY",
]

R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (>= 1).
    base_delay_s:
        Delay before the first retry.
    multiplier:
        Geometric backoff factor per further retry.
    max_delay_s:
        Delay ceiling.
    jitter:
        Fractional jitter amplitude: each delay is scaled by a
        deterministic factor in ``[1 - jitter, 1 + jitter]``.
    attempt_timeout_s:
        Per-attempt wall-clock budget (None = unbounded).
    seed:
        Seeds the jitter sequence.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    attempt_timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must lie in [0, 1)")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")

    def delay_for(self, retry_index: int) -> float:
        """Backoff delay before retry ``retry_index`` (0 = first retry).

        Deterministic: ``min(base * multiplier**i, max) * jitter_factor``
        where the jitter factor depends only on (seed, retry_index).
        """
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        raw = min(self.base_delay_s * self.multiplier**retry_index, self.max_delay_s)
        if self.jitter == 0.0:
            return raw
        digest = hashlib.blake2b(
            f"{self.seed}:{retry_index}".encode("ascii"), digest_size=8
        ).digest()
        h = int.from_bytes(digest, "big") / 2**64
        return raw * (1.0 + self.jitter * (2.0 * h - 1.0))

    def with_seed(self, seed: int) -> "RetryPolicy":
        """Copy with a different jitter seed."""
        return replace(self, seed=seed)


#: Library-wide defaults: 3 attempts, 50 ms base delay doubling to a
#: 2 s cap, 10% deterministic jitter, no per-attempt timeout.
DEFAULT_POLICY = RetryPolicy()


class RetryError(RuntimeError):
    """All attempts exhausted; carries the final failure."""

    def __init__(self, attempts: int, last_exception: BaseException) -> None:
        super().__init__(
            f"gave up after {attempts} attempt(s): {last_exception!r}"
        )
        self.attempts = attempts
        self.last_exception = last_exception


class AttemptTimeout(RuntimeError):
    """One attempt exceeded ``attempt_timeout_s``."""

    def __init__(self, timeout_s: float, attempt: int) -> None:
        super().__init__(f"attempt {attempt} exceeded {timeout_s:.3f}s budget")
        self.timeout_s = timeout_s
        self.attempt = attempt


def retry_call(
    fn: Callable[..., R],
    *args: Any,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    **kwargs: Any,
) -> R:
    """Call ``fn(*args, **kwargs)``, retrying under ``policy``.

    Parameters
    ----------
    policy:
        Retry policy (defaults to :data:`DEFAULT_POLICY`).
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.
    sleep:
        Injectable sleep (tests pass a recorder).
    on_retry:
        Optional callback ``(attempt, exception, upcoming_delay_s)``
        invoked before each backoff sleep.

    Raises
    ------
    RetryError
        When every attempt failed; ``last_exception`` holds the final
        cause (also chained via ``raise ... from``).
    """
    policy = policy or DEFAULT_POLICY
    executor: ThreadPoolExecutor | None = None
    try:
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            try:
                if policy.attempt_timeout_s is None:
                    return fn(*args, **kwargs)
                if executor is None:
                    executor = ThreadPoolExecutor(max_workers=1)
                future = executor.submit(fn, *args, **kwargs)
                try:
                    return future.result(timeout=policy.attempt_timeout_s)
                except FutureTimeoutError:
                    # abandon the attempt; the helper thread may linger,
                    # so refresh the executor for the next try
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = None
                    raise AttemptTimeout(policy.attempt_timeout_s, attempt) from None
            except retry_on as exc:
                last = exc
                if attempt + 1 >= policy.max_attempts:
                    break
                delay = policy.delay_for(attempt)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                sleep(delay)
        assert last is not None
        raise RetryError(policy.max_attempts, last) from last
    finally:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


def retryable(
    policy: RetryPolicy | None = None,
    *,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
) -> Callable[[Callable[..., R]], Callable[..., R]]:
    """Decorator form of :func:`retry_call`.

    >>> @retryable(RetryPolicy(max_attempts=2, base_delay_s=0.0))
    ... def flaky():
    ...     return 42
    >>> flaky()
    42
    """

    def decorate(fn: Callable[..., R]) -> Callable[..., R]:
        def wrapper(*args: Any, **kwargs: Any) -> R:
            return retry_call(
                fn, *args, policy=policy, retry_on=retry_on, sleep=sleep, **kwargs
            )

        wrapper.__name__ = getattr(fn, "__name__", "retryable")
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
