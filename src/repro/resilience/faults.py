"""Deterministic fault injection.

A :class:`FaultPlan` is a seeded, fully deterministic description of
which faults fire where: at a specific job index, at a specific worker
ordinal, or with probability ``p`` per (job, attempt) draw.  Both the
parent (the supervisor, for attribution) and the workers (for actually
misbehaving) evaluate the same plan and agree exactly on what fires,
which is what lets tests assert "the report accounts for every injected
fault" without any cross-process bookkeeping.

Fault kinds:

* ``"crash"``   — the worker process hard-exits (``os._exit``), taking
  the whole :class:`~concurrent.futures.ProcessPoolExecutor` with it
  (the ugliest real-world failure: ``BrokenProcessPool``);
* ``"error"``   — the job raises :class:`InjectedFault`;
* ``"hang"``    — the job sleeps ``delay_s`` (pair with a per-attempt
  timeout to exercise the kill-and-respawn path), then raises;
* ``"slow"``    — the job sleeps ``delay_s`` and then completes
  normally (latency injection, results stay correct);
* ``"corrupt"`` — the job completes but returns a
  :class:`CorruptResult` marker instead of its value (torn payload).

Plans also load from the environment (``REPRO_FAULTS`` holding the JSON
form) so any benchmark or example can run under faults without code
changes::

    REPRO_FAULTS='{"seed": 7, "specs": [{"kind": "crash", "p": 0.3}]}'
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV_VAR",
    "InjectedFault",
    "CorruptResult",
    "FaultSpec",
    "FaultPlan",
    "run_with_faults",
]

#: Recognized fault kinds.
FAULT_KINDS = ("crash", "error", "hang", "slow", "corrupt")

#: Environment variable holding a JSON fault plan.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Worker ordinal installed by the supervisor's pool initializer
#: (None in the parent / serial execution).
_WORKER_ORDINAL: int | None = None


class InjectedFault(RuntimeError):
    """Raised by a job when an injected ``error``/``hang`` fault fires."""

    def __init__(self, kind: str, job: int, attempt: int) -> None:
        super().__init__(f"injected {kind} fault (job {job}, attempt {attempt})")
        self.kind = kind
        self.job = job
        self.attempt = attempt

    def __reduce__(self):
        # exceptions pickle via ``args``; rebuild from our real fields so
        # the instance crosses the process boundary intact (a failed
        # unpickle would kill the executor's result thread — a fake
        # pool crash)
        return (type(self), (self.kind, self.job, self.attempt))


@dataclass(frozen=True)
class CorruptResult:
    """Marker a ``corrupt`` fault returns in place of the real value."""

    job: int
    attempt: int


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule.

    Exactly one targeting mode is active: an explicit ``job`` and/or
    ``worker`` target (fires on attempts ``< times``), or a probability
    ``p`` drawn deterministically per (job, attempt).
    """

    kind: str
    job: int | None = None
    worker: int | None = None
    p: float = 0.0
    times: int = 1
    delay_s: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p must lie in [0, 1], got {self.p}")
        if self.job is None and self.worker is None and self.p == 0.0:
            raise ValueError("spec targets nothing: set job, worker, or p")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    @property
    def targeted(self) -> bool:
        """True for explicit job/worker targeting (vs. probabilistic)."""
        return self.job is not None or self.worker is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "job": self.job,
            "worker": self.worker,
            "p": self.p,
            "times": self.times,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=d["kind"],
            job=d.get("job"),
            worker=d.get("worker"),
            p=float(d.get("p", 0.0)),
            times=int(d.get("times", 1)),
            delay_s=float(d.get("delay_s", 0.25)),
        )


def _draw(seed: int, job: int, attempt: int, salt: int) -> float:
    """Deterministic uniform [0, 1) draw for one (job, attempt, spec).

    blake2b rather than crc32: crc is linear, so bumping the attempt
    digit XORs a constant into the hash and barely moves it across the
    ``< p`` threshold — retries would re-fire the same faults forever.
    """
    digest = hashlib.blake2b(
        f"{seed}:{job}:{attempt}:{salt}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules, identical wherever it is evaluated."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # tolerate list input
        object.__setattr__(self, "specs", tuple(self.specs))

    # Construction helpers -------------------------------------------------
    @classmethod
    def crash_fraction(cls, p: float, *, seed: int = 0, kind: str = "crash") -> "FaultPlan":
        """Plan crashing (or ``kind``-ing) a fraction ``p`` of first
        attempts — the benchmark R1 / acceptance-test shape."""
        return cls(specs=(FaultSpec(kind, p=p),), seed=seed)

    # Evaluation -----------------------------------------------------------
    def fires(self, job: int, attempt: int, worker: int | None = None) -> FaultSpec | None:
        """The first spec firing for this (job, attempt, worker), or None.

        Deterministic: the parent calls this for attribution, workers
        call it to misbehave, and both see the same answer.  Worker-
        targeted specs only fire where the worker ordinal is known.
        """
        for salt, spec in enumerate(self.specs):
            if spec.targeted:
                if spec.job is not None and spec.job != job:
                    continue
                if spec.worker is not None and (worker is None or spec.worker != worker):
                    continue
                if attempt < spec.times:
                    return spec
            elif spec.p > 0.0 and _draw(self.seed, job, attempt, salt) < spec.p:
                return spec
        return None

    def planned_jobs(self, n_jobs: int, attempt: int = 0) -> list[int]:
        """Job indices whose attempt-``attempt`` run a fault hits
        (worker-targeted specs excluded — those depend on scheduling)."""
        return [j for j in range(n_jobs) if self.fires(j, attempt) is not None]

    # Serialization --------------------------------------------------------
    def to_json(self) -> str:
        """Serialize for the ``REPRO_FAULTS`` environment hook."""
        return json.dumps(
            {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed fault plan JSON: {exc}") from exc
        return cls(
            specs=tuple(FaultSpec.from_dict(d) for d in doc.get("specs", ())),
            seed=int(doc.get("seed", 0)),
        )

    @classmethod
    def from_env(cls, env_var: str = FAULTS_ENV_VAR) -> "FaultPlan | None":
        """Plan from the ``REPRO_FAULTS`` environment hook, or None."""
        text = os.environ.get(env_var)
        if not text:
            return None
        return cls.from_json(text)


def run_with_faults(
    fn: Callable[[Any], Any],
    item: Any,
    job: int,
    attempt: int,
    plan: FaultPlan | None,
) -> Any:
    """Run one job under a fault plan — the supervisor's worker wrapper.

    Module-level (hence picklable) so :class:`SupervisedPool` can ship
    it to pool workers; with ``plan=None`` it is a plain call.
    """
    spec = plan.fires(job, attempt, _WORKER_ORDINAL) if plan is not None else None
    if spec is None:
        return fn(item)
    if spec.kind == "slow":
        time.sleep(spec.delay_s)
        return fn(item)
    if spec.kind == "crash":
        os._exit(13)
    if spec.kind == "hang":
        time.sleep(spec.delay_s)
        raise InjectedFault("hang", job, attempt)
    if spec.kind == "error":
        raise InjectedFault("error", job, attempt)
    # corrupt: do the work, return garbage — the torn-payload case
    fn(item)
    return CorruptResult(job, attempt)
