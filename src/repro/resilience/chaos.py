"""Seeded chaos harness for the ingest/rollover/query machinery.

:mod:`repro.resilience.faults` injects faults into *pool jobs*; this
module aims the same deterministic machinery at the **lifecycle
boundaries** of the streaming-ingest path (:mod:`repro.store.ingest`):

* :class:`ChaosMonkey` — a callable the
  :class:`~repro.store.ingest.RolloverCoordinator` invokes at each
  named rollover point (:data:`ROLLOVER_POINTS`); a :class:`FaultPlan`
  per point decides, deterministically per rollover ordinal, whether
  to crash (raise :class:`ChaosInterrupt`), error, or stall there.

* :class:`ChaosHarness` — a deterministic, seeded workload generator
  that interleaves producer appends, rollovers (with the monkey
  wired in), multi-session queries, session churn, store eviction and
  foreign attaches over one service, and checks the system's
  invariants after every step:

  - **no lost or duplicated segments** — the active dataset always
    holds exactly the initial trajectories plus those the buffer has
    committed, crashes notwithstanding;
  - **no stale reads** — every session's query equals a fresh
    brute-force engine evaluated over that session's pinned dataset
    (a stale-epoch cache hit or a torn swap would diverge);
  - **no leaked shared memory** — at teardown every block the run
    created is closed and unlinked.

Everything is seeded: a failing (seed, steps) pair is a reproducible
regression case, not an anecdote.  The module keeps its imports of
:mod:`repro.store` inside functions — :mod:`repro.resilience` is
imported by the core result type, and a module-level import would be
circular.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro import obs
from repro.resilience.faults import FaultPlan, FaultSpec, InjectedFault

if TYPE_CHECKING:
    from repro.store.ingest import IngestBuffer, RolloverCoordinator
    from repro.store.service import DatasetService, SessionView

__all__ = [
    "ROLLOVER_POINTS",
    "ChaosInterrupt",
    "ChaosMonkey",
    "ChaosHarness",
    "ChaosReport",
]

ROLLOVER_POINTS = ("pre_stage", "post_stage", "pre_swap", "post_swap")


class ChaosInterrupt(RuntimeError):
    """A simulated coordinator crash at a rollover boundary.

    Raised by :class:`ChaosMonkey` where a real deployment would lose
    the coordinator process.  Catching it and calling ``rollover()``
    again *is* the recovery procedure under test.
    """

    def __init__(self, point: str, ordinal: int) -> None:
        super().__init__(f"chaos: simulated crash at {point!r} (rollover {ordinal})")
        self.point = point
        self.ordinal = ordinal


class ChaosMonkey:
    """Deterministic fault injection at named rollover points.

    Parameters
    ----------
    plans:
        Mapping of rollover point → :class:`FaultPlan`.  Each call to a
        point evaluates its plan at ``job = ordinal`` (how many times
        that point has been reached), so "crash the second rollover's
        swap" is ``{"pre_swap": FaultPlan((FaultSpec("crash", job=1),))}``
        and "crash 30% of stages" is
        ``{"post_stage": FaultPlan.crash_fraction(0.3, seed=7)}``.

    Fault kinds: ``crash`` raises :class:`ChaosInterrupt`, ``error``
    raises :class:`~repro.resilience.faults.InjectedFault`, ``slow`` /
    ``hang`` sleep ``delay_s`` (bounded — tests must stay fast),
    ``corrupt`` is treated as ``error`` (a boundary cannot corrupt
    a payload, only fail).  Every firing is recorded on :attr:`fired`.
    """

    def __init__(self, plans: Mapping[str, FaultPlan]) -> None:
        unknown = set(plans) - set(ROLLOVER_POINTS)
        if unknown:
            raise ValueError(
                f"unknown rollover points {sorted(unknown)}; "
                f"valid: {ROLLOVER_POINTS}"
            )
        self.plans = dict(plans)
        self.calls: dict[str, int] = {p: 0 for p in ROLLOVER_POINTS}
        self.fired: list[tuple[str, int, str]] = []

    def __call__(self, point: str) -> None:
        ordinal = self.calls.get(point, 0)
        self.calls[point] = ordinal + 1
        plan = self.plans.get(point)
        if plan is None:
            return
        spec = plan.fires(job=ordinal, attempt=0)
        if spec is None:
            return
        self.fired.append((point, ordinal, spec.kind))
        obs.counter_add("chaos.fired", 1, point=point, kind=spec.kind)
        if spec.kind == "crash":
            raise ChaosInterrupt(point, ordinal)
        if spec.kind in ("error", "corrupt"):
            raise InjectedFault(spec.kind, job=ordinal, attempt=0)
        if spec.kind in ("slow", "hang"):
            import time

            time.sleep(spec.delay_s)


def _draw(seed: int, step: int, salt: str) -> float:
    """Deterministic uniform [0, 1) draw for one harness decision."""
    digest = hashlib.blake2b(
        f"{seed}:{step}:{salt}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass
class ChaosReport:
    """What one harness run did and survived."""

    steps: int = 0
    appended: int = 0
    rollovers: int = 0
    crashes: int = 0
    recovered: int = 0
    queries: int = 0
    stale_queries: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    rebinds: int = 0
    evict_refused: int = 0
    attaches: int = 0
    fired: list[tuple[str, int, str]] = field(default_factory=list)


class ChaosHarness:
    """Drive a service + buffer + coordinator through a seeded storm.

    Parameters
    ----------
    dataset:
        Initial resident dataset (owned by the harness's service).
    stream:
        Trajectories to feed through the ingest buffer over the run.
    seed:
        Seeds every scheduling decision; (seed, n_steps) reproduces a
        run exactly.
    monkey:
        Optional :class:`ChaosMonkey` wired into the coordinator's
        chaos hook.  :class:`ChaosInterrupt` / ``InjectedFault`` raised
        mid-rollover are caught and counted — recovery on the next
        rollover is part of what the invariants then check.
    publish_store:
        Publish a shared block per epoch (exercises pinning/eviction);
        off, rollovers are in-process only.
    max_sessions:
        Concurrent session ceiling for the churn schedule.

    Use :meth:`run`, or :meth:`step`/:meth:`verify`/:meth:`close` for
    custom schedules.  The harness is a context manager; leaving it
    closes every session and the service, then asserts no shared
    memory leaked.
    """

    def __init__(
        self,
        dataset: Any,
        stream: Any,
        *,
        seed: int = 0,
        monkey: ChaosMonkey | None = None,
        publish_store: bool = True,
        max_sessions: int = 4,
    ) -> None:
        from repro.display.presets import CYBER_COMMONS, paper_viewport
        from repro.store.ingest import IngestBuffer, RolloverCoordinator
        from repro.store.service import DatasetService
        from repro.store.shm import live_blocks

        self.seed = seed
        self.monkey = monkey
        self.max_sessions = max_sessions
        self._blocks_before = set(live_blocks())
        self._n_initial = len(dataset)
        self._stream = list(stream)
        self._fed = 0
        self._viewport = paper_viewport(CYBER_COMMONS)
        self.service: "DatasetService" = DatasetService(dataset)
        self.buffer: "IngestBuffer" = IngestBuffer()
        self.coordinator: "RolloverCoordinator" = RolloverCoordinator(
            self.service,
            self.buffer,
            publish_store=publish_store,
            chaos=monkey,
        )
        self.sessions: list["SessionView"] = [self.service.session(self._viewport)]
        self.report = ChaosReport(sessions_opened=1)
        self._brush_all_sessions()

    # -- workload pieces ---------------------------------------------------
    def _brush(self, session: "SessionView", step: int) -> None:
        from repro.core.brush import stroke_from_rect
        from repro.core.temporal import TimeWindow

        u = _draw(self.seed, step, f"brush:{session.session_id}")
        x0 = -0.5 + 0.6 * u
        session.erase()
        session.brush(
            stroke_from_rect((x0, -0.4), (x0 + 0.35, 0.3), 0.06, "red")
        )
        session.set_time_window(TimeWindow.end(0.2 + 0.6 * u))

    def _brush_all_sessions(self) -> None:
        for s in self.sessions:
            self._brush(s, 0)

    def _append_some(self, step: int) -> None:
        n = 1 + int(_draw(self.seed, step, "append") * 3)
        for _ in range(n):
            if self._fed >= len(self._stream):
                return
            self.buffer.append(self._stream[self._fed])
            self._fed += 1
            self.report.appended += 1

    def _rollover(self) -> None:
        try:
            result = self.coordinator.rollover()
        except ChaosInterrupt:
            self.report.crashes += 1
            return
        except InjectedFault:
            self.report.crashes += 1
            return
        if result is not None:
            self.report.rollovers += 1
            if result.recovered:
                self.report.recovered += 1

    def _query_and_check(self, session: "SessionView", step: int) -> None:
        """The stale-read oracle: the session's answer must equal a
        fresh, cache-less brute-force engine over its pinned dataset."""
        from repro.core.engine import CoordinatedBrushingEngine

        self._brush(session, step)
        result = session.run_query("red")
        self.report.queries += 1
        if result.degradation is not None and any(
            e.kind == "stale-epoch" for e in result.degradation.events
        ):
            self.report.stale_queries += 1
        reference = CoordinatedBrushingEngine(
            session.dataset, use_index=False, cache_capacity=1
        ).query(
            session.canvas,
            "red",
            window=session.window,
            assignment=session.assignment,
        )
        if not np.array_equal(result.traj_mask, reference.traj_mask):
            raise AssertionError(
                f"chaos step {step}: session {session.session_id} "
                f"(epoch {session.epoch}) diverged from brute-force "
                "reference — stale cache entry or torn swap"
            )

    def _churn_sessions(self, step: int) -> None:
        u = _draw(self.seed, step, "churn")
        if len(self.sessions) > 1 and u < 0.4:
            victim = self.sessions.pop(
                int(_draw(self.seed, step, "victim") * len(self.sessions))
            )
            victim.close()
            self.report.sessions_closed += 1
        elif len(self.sessions) < self.max_sessions:
            s = self.service.session(self._viewport)
            self._brush(s, step)
            self.sessions.append(s)
            self.report.sessions_opened += 1

    def _rebind_one(self, step: int) -> None:
        s = self.sessions[int(_draw(self.seed, step, "rebind") * len(self.sessions))]
        if s.rebind():
            self._brush(s, step)
            self.report.rebinds += 1

    def _evict_oldest(self) -> None:
        handles = self.service.stores()
        if handles and not self.service.evict_store(handles[0].uid):
            self.report.evict_refused += 1

    def _attach_roundtrip(self) -> None:
        """Attach the newest published store (a foreign consumer racing
        the swap machinery) and immediately detach."""
        from repro.store.arena import attach
        from repro.store.shm import StoreAttachError

        handles = self.service.stores()
        if not handles:
            return
        try:
            with attach(handles[-1]) as client:
                assert len(client.dataset) == handles[-1].n_traj
            self.report.attaches += 1
        except StoreAttachError:
            pass  # racing an eviction is legal; stale must fail loudly

    # -- invariants --------------------------------------------------------
    def verify(self, step: int = -1) -> None:
        """Assert the conservation invariant: the active dataset holds
        the initial trajectories plus exactly those the buffer has
        committed — nothing lost to a crash, nothing ingested twice."""
        expected = self._n_initial + self.report.appended - self.buffer.n_pending
        actual = len(self.service.dataset)
        if actual != expected:
            raise AssertionError(
                f"chaos step {step}: active dataset holds {actual} "
                f"trajectories, expected {expected} "
                f"({self._n_initial} initial + {self.report.appended} "
                f"appended - {self.buffer.n_pending} pending)"
            )

    # -- driving -----------------------------------------------------------
    def step(self, step: int) -> None:
        """One scheduled action + invariant check."""
        self._append_some(step)
        u = _draw(self.seed, step, "action")
        if u < 0.35:
            self._rollover()
        elif u < 0.65:
            session = self.sessions[
                int(_draw(self.seed, step, "who") * len(self.sessions))
            ]
            self._query_and_check(session, step)
        elif u < 0.78:
            self._churn_sessions(step)
        elif u < 0.88:
            self._rebind_one(step)
        elif u < 0.95:
            self._evict_oldest()
        else:
            self._attach_roundtrip()
        self.report.steps += 1
        self.verify(step)

    def run(self, n_steps: int) -> ChaosReport:
        """Run ``n_steps`` scheduled actions, then query every live
        session one final time against the oracle."""
        for i in range(n_steps):
            self.step(i)
        for s in list(self.sessions):
            self._query_and_check(s, n_steps)
        self.report.fired = list(self.monkey.fired) if self.monkey else []
        return self.report

    def close(self) -> None:
        """Close every session and the service, then assert the run
        left no shared-memory block behind."""
        import gc

        from repro.store.shm import live_blocks

        for s in self.sessions:
            s.close()
            self.report.sessions_closed += 1
        self.sessions.clear()
        self.service.close()
        gc.collect()
        leaked = set(live_blocks()) - self._blocks_before
        if leaked:
            raise AssertionError(f"chaos run leaked shared blocks: {sorted(leaked)}")

    def __enter__(self) -> "ChaosHarness":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
