"""Resilience layer: fault injection, retry, supervision, degradation.

The paper's wall is a distributed system — a cluster of render nodes
drives 18 tiles — and production-scale visual analytics treats partial
failure as the normal case.  This subpackage is the robustness
substrate the reproduction's scaling work builds on:

* :mod:`faults` — a deterministic, seedable fault-injection harness
  (:class:`FaultPlan`) usable from tests and benchmarks, plus the
  ``REPRO_FAULTS`` environment hook;
* :mod:`retry` — :func:`retry_call` / :func:`retryable` with
  exponential backoff, deterministic jitter and per-attempt timeouts,
  governed by a :class:`RetryPolicy`;
* :mod:`supervisor` — :class:`SupervisedPool`, a process pool that
  detects worker crashes, hangs and corrupt payloads, respawns and
  retries, and falls back to in-process serial execution (bit-identical
  results) when retries are exhausted;
* :mod:`health` — :class:`DegradationReport`, the "no silent drops"
  ledger attached to render and query results;
* :mod:`chaos` — :class:`ChaosHarness` / :class:`ChaosMonkey`, a
  seeded storm generator for the streaming-ingest rollover path
  (crash-at-boundary, attach-during-swap, evict-with-live-sessions)
  with conservation, stale-read, and shm-leak invariants.

The degradation ladder, top to bottom: **indexed** (spatial-index
accelerated query) → **brute-force** (unindexed full scan) →
**serial** (in-process execution of pool work).  Every step down is
recorded, never silent, and preserves exact results.
"""

from repro.resilience.chaos import (
    ROLLOVER_POINTS,
    ChaosHarness,
    ChaosInterrupt,
    ChaosMonkey,
    ChaosReport,
)
from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    CorruptResult,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    run_with_faults,
)
from repro.resilience.health import DegradationReport, FaultEvent
from repro.resilience.retry import (
    DEFAULT_POLICY,
    AttemptTimeout,
    RetryError,
    RetryPolicy,
    retry_call,
    retryable,
)
from repro.resilience.supervisor import SupervisedPool, supervised_map

__all__ = [
    "ROLLOVER_POINTS",
    "ChaosHarness",
    "ChaosInterrupt",
    "ChaosMonkey",
    "ChaosReport",
    "FAULTS_ENV_VAR",
    "CorruptResult",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "run_with_faults",
    "DegradationReport",
    "FaultEvent",
    "DEFAULT_POLICY",
    "AttemptTimeout",
    "RetryError",
    "RetryPolicy",
    "retry_call",
    "retryable",
    "SupervisedPool",
    "supervised_map",
]
