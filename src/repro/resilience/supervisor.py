"""Supervised process-pool execution.

:class:`SupervisedPool` is the drop-in hardened sibling of
:class:`repro.parallel.pool.WorkerPool`: an ordered ``map`` over a
:class:`~concurrent.futures.ProcessPoolExecutor` that treats partial
failure as the normal case.  Per job it detects

* worker death (``BrokenProcessPool`` — e.g. an injected ``crash``
  fault calling ``os._exit``),
* raised exceptions (including :class:`InjectedFault`),
* per-attempt timeouts (hung workers are terminated and the pool
  respawned),
* corrupt payloads (:class:`CorruptResult` markers, or a caller
  ``validate`` hook rejecting a value),

and responds by respawning the pool as needed and retrying the failed
jobs under a :class:`RetryPolicy` with exponential backoff.  Jobs that
exhaust their retries are re-executed *in the parent process* via
``serial_fn`` — the bottom rung of the degradation ladder — so ``map``
always completes with results bit-identical to a plain serial loop.
Everything that failed, was retried, or fell back is recorded in the
attached :class:`DegradationReport` (no silent drops).
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence, TypeVar

from repro.resilience.faults import CorruptResult, FaultPlan, InjectedFault, run_with_faults
from repro.resilience.health import DegradationReport
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy

__all__ = ["SupervisedPool", "supervised_map"]

T = TypeVar("T")
R = TypeVar("R")

_UNSET = object()


def _supervised_init(counter, user_init, user_args) -> None:
    """Pool initializer: assign this worker a stable ordinal (for
    worker-targeted faults), then run the caller's initializer."""
    from repro.resilience import faults

    if counter is not None:
        with counter.get_lock():
            faults._WORKER_ORDINAL = int(counter.value)
            counter.value += 1
    if user_init is not None:
        user_init(*user_args)


class SupervisedPool:
    """A process pool that survives its workers.

    Parameters
    ----------
    max_workers:
        Pool width; ``<= 1`` runs everything serially in-process (no
        faults are injected on the serial path — it is the trusted
        bottom rung of the degradation ladder).
    policy:
        Retry policy governing attempts per job and backoff between
        retry rounds.
    fault_plan:
        Optional :class:`FaultPlan` shipped to workers (tests and
        benchmarks inject faults through this; production passes None).
    initializer / initargs:
        Per-worker setup, as for :class:`ProcessPoolExecutor` (re-run
        whenever the pool is respawned).
    report:
        A :class:`DegradationReport` to accumulate into (a fresh one is
        created when omitted; read it back via :attr:`report`).
    sleep:
        Injectable backoff sleep.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        report: DegradationReport | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_workers is None:
            from repro.parallel.pool import default_workers

            max_workers = default_workers()
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        self.max_workers = int(max_workers)
        self.policy = policy or DEFAULT_POLICY
        self.fault_plan = fault_plan
        self.report = report if report is not None else DegradationReport()
        self._initializer = initializer
        self._initargs = initargs
        self._sleep = sleep
        self._executor: ProcessPoolExecutor | None = None

    # Pool lifecycle -------------------------------------------------------
    @property
    def serial(self) -> bool:
        return self.max_workers <= 1

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self._shutdown()

    def _spawn(self) -> ProcessPoolExecutor:
        import multiprocessing

        counter = multiprocessing.Value("i", 0)
        self._executor = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_supervised_init,
            initargs=(counter, self._initializer, self._initargs),
        )
        return self._executor

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _kill(self) -> None:
        """Tear down a broken or hung pool without waiting on it."""
        if self._executor is None:
            return
        procs = getattr(self._executor, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None

    # Supervision ----------------------------------------------------------
    def _note_failure(
        self,
        kind: str,
        job: int,
        attempt: int,
        retry_next: list[tuple[int, int]],
        fallback: list[int],
        detail: str = "",
    ) -> None:
        """Record one failed attempt and route the job onward."""
        spec = self.fault_plan.fires(job, attempt) if self.fault_plan else None
        if spec is not None and "injected" not in kind:
            kind = f"injected-{spec.kind}"
        will_retry = attempt + 1 < self.policy.max_attempts
        self.report.record(
            kind,
            scope="job",
            action="retried" if will_retry else "serial-fallback",
            job=job,
            attempt=attempt,
            detail=detail,
        )
        if will_retry:
            retry_next.append((job, attempt + 1))
        else:
            fallback.append(job)

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        serial_fn: Callable[[T], R] | None = None,
        validate: Callable[[R], bool] | None = None,
    ) -> list[R]:
        """Ordered, failure-absorbing map.

        Parameters
        ----------
        fn:
            Picklable per-item work function run in pool workers (may
            rely on state installed by the pool initializer).
        serial_fn:
            In-parent equivalent used for serial mode and last-resort
            fallback (defaults to ``fn``; pass one when ``fn`` depends
            on worker-local state).
        validate:
            Optional result predicate; a False verdict counts as a
            ``corrupt`` failure and triggers a retry.
        """
        serial_fn = serial_fn if serial_fn is not None else fn
        n = len(items)
        results: list[Any] = [_UNSET] * n
        if self.serial:
            for i, item in enumerate(items):
                results[i] = serial_fn(item)
            return results

        pending: list[tuple[int, int]] = [(i, 0) for i in range(n)]
        round_index = 0
        while pending:
            retry_next: list[tuple[int, int]] = []
            fallback: list[int] = []
            if self._executor is None:
                self._spawn()
            futures: list[tuple[int, int, Future]] = [
                (job, attempt, self._executor.submit(
                    run_with_faults, fn, items[job], job, attempt, self.fault_plan
                ))
                for job, attempt in pending
            ]
            broken = False
            for job, attempt, fut in futures:
                try:
                    if broken:
                        # pool already dead: collect what finished in
                        # time, fail the rest without further waiting
                        value = fut.result(timeout=0)
                    else:
                        value = fut.result(timeout=self.policy.attempt_timeout_s)
                except FutureTimeoutError:
                    if broken:
                        self._note_failure("crash", job, attempt, retry_next, fallback,
                                           detail="pool died mid-round")
                        continue
                    # hung worker: kill the whole pool, respawn next round
                    self._kill()
                    broken = True
                    self.report.record(
                        "timeout", scope="pool", action="respawned",
                        job=job, attempt=attempt,
                        detail=f"attempt exceeded {self.policy.attempt_timeout_s}s",
                    )
                    self._note_failure("timeout", job, attempt, retry_next, fallback)
                    continue
                except BrokenProcessPool as exc:
                    if not broken:
                        self._kill()
                        broken = True
                        self.report.record(
                            "crash", scope="pool", action="respawned",
                            job=job, attempt=attempt, detail=repr(exc),
                        )
                    self._note_failure("crash", job, attempt, retry_next, fallback,
                                       detail=repr(exc))
                    continue
                except CancelledError:
                    self._note_failure("crash", job, attempt, retry_next, fallback,
                                       detail="cancelled by pool death")
                    continue
                except InjectedFault as exc:
                    self._note_failure(f"injected-{exc.kind}", job, attempt,
                                       retry_next, fallback, detail=str(exc))
                    continue
                except Exception as exc:  # job raised in the worker
                    self._note_failure("error", job, attempt, retry_next, fallback,
                                       detail=repr(exc))
                    continue
                if isinstance(value, CorruptResult) or (
                    validate is not None and not validate(value)
                ):
                    self._note_failure("corrupt", job, attempt, retry_next, fallback)
                    continue
                results[job] = value

            # bottom rung: exhausted jobs run in-process, serially —
            # deterministic work gives bit-identical output
            for job in fallback:
                results[job] = serial_fn(items[job])

            if retry_next:
                self._sleep(self.policy.delay_for(round_index))
                round_index += 1
            pending = retry_next

        assert all(r is not _UNSET for r in results)
        return results


def supervised_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    max_workers: int | None = None,
    policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> tuple[list[R], DegradationReport]:
    """One-shot supervised map; returns (results, degradation report)."""
    with SupervisedPool(
        max_workers, policy=policy, fault_plan=fault_plan
    ) as pool:
        results = pool.map(fn, items)
    return results, pool.report
