"""Chunked/parallel batch queries for very large datasets.

The §VI-C workloads (10k-1M traces) exceed what one packed-array pass
should hold in cache at once; this module shards a dataset into
contiguous trajectory chunks, runs the coordinated-brush kernel per
chunk (optionally across a process pool), and merges the per-chunk
per-trajectory outcomes.  Results are exactly the engine's — sharding
only changes the execution schedule.

Workers normally receive the dataset once, pickled through the pool
initializer.  Passing a published :class:`repro.store.SharedArenaStore`
(``store=``) replaces that with a handle ship + zero-copy attach — the
pool's per-worker payload becomes O(handle bytes) and every worker
reads the same resident arrays.  An unattachable handle falls back to
the pickle path (``report.transport == "pickle-fallback"``).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.store.arena import StoreHandle

import numpy as np

from repro.core.brush import BrushStroke
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow
from repro.parallel.partition import chunk_indices
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["BatchQueryReport", "parallel_query_support"]

# Heterogeneous per-worker state (dataset, strokes, pinned client) —
# an explicit Any beats casting at every read site.
_WORKER_DATA: dict[str, Any] = {}


def _init_batch_worker(dataset: TrajectoryDataset, strokes: list[BrushStroke],
                       color: str, window: TimeWindow) -> None:
    _WORKER_DATA["dataset"] = dataset
    _WORKER_DATA["strokes"] = strokes
    _WORKER_DATA["color"] = color
    _WORKER_DATA["window"] = window


def _init_batch_worker_shm(handle: StoreHandle, strokes: list[BrushStroke],
                           color: str, window: TimeWindow) -> None:
    """Zero-copy initializer: attach the shared store once per worker
    and serve every chunk from view-backed trajectories."""
    from repro.store.arena import attach

    client = attach(handle)
    _WORKER_DATA["client"] = client  # keeps the mapping alive
    _WORKER_DATA["dataset"] = client.dataset
    _WORKER_DATA["strokes"] = strokes
    _WORKER_DATA["color"] = color
    _WORKER_DATA["window"] = window


def _query_chunk(chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    dataset: TrajectoryDataset = _WORKER_DATA["dataset"]
    sub = dataset[int(chunk[0]) : int(chunk[-1]) + 1]
    canvas = BrushCanvas()
    for s in _WORKER_DATA["strokes"]:
        canvas.add(s)
    engine = CoordinatedBrushingEngine(sub, use_index=True)
    result = engine.query(canvas, _WORKER_DATA["color"], window=_WORKER_DATA["window"])
    return chunk, result.traj_mask


@dataclass(frozen=True)
class BatchQueryReport:
    """Merged outcome of a sharded query.

    ``transport`` records how workers received the dataset:
    ``"in-process"`` (serial path), ``"pickle"`` (initializer ship),
    ``"shm"`` (zero-copy store attach), or ``"pickle-fallback"``
    (a store was requested but its handle could not be attached).
    """

    traj_mask: np.ndarray
    elapsed_s: float
    n_chunks: int
    workers: int
    transport: str = "pickle"

    @property
    def support(self) -> float:
        return float(self.traj_mask.mean()) if len(self.traj_mask) else 0.0


def parallel_query_support(
    dataset: TrajectoryDataset,
    strokes: list[BrushStroke],
    *,
    color: str = "red",
    window: TimeWindow | None = None,
    n_chunks: int | None = None,
    max_workers: int = 0,
    store: "object | None" = None,
) -> BatchQueryReport:
    """Sharded coordinated-brush query over a large dataset.

    With ``max_workers <= 1`` chunks run serially in-process (still
    sharded, which bounds peak memory); otherwise across a pool whose
    workers receive the dataset once via the initializer — as a pickle,
    or as a zero-copy shared-memory attach when ``store`` (a
    :class:`~repro.store.SharedArenaStore` or
    :class:`~repro.store.StoreHandle` publishing ``dataset``) is given.
    """
    window = window or TimeWindow.all()
    if n_chunks is None:
        n_chunks = max(1, len(dataset) // 10_000)
    chunks = chunk_indices(len(dataset), n_chunks)
    mask = np.zeros(len(dataset), dtype=bool)
    t0 = time.perf_counter()
    if max_workers <= 1:
        transport = "in-process"
        _init_batch_worker(dataset, strokes, color, window)
        try:
            for chunk in chunks:
                if len(chunk) == 0:
                    continue
                idx, sub_mask = _query_chunk(chunk)
                mask[idx] = sub_mask
        finally:
            _WORKER_DATA.clear()
        workers = 1
    else:
        initializer, initargs = _init_batch_worker, (dataset, strokes, color, window)
        transport = "pickle"
        if store is not None:
            from repro.store.arena import SharedArenaStore, attach
            from repro.store.shm import StoreAttachError

            handle = store.handle if isinstance(store, SharedArenaStore) else store
            try:
                attach(handle).close()  # fail fast in the parent
            except StoreAttachError:
                transport = "pickle-fallback"
            else:
                initializer = _init_batch_worker_shm
                initargs = (handle, strokes, color, window)
                transport = "shm"
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=initializer,
            initargs=initargs,
        ) as executor:
            for idx, sub_mask in executor.map(_query_chunk, [c for c in chunks if len(c)]):
                mask[idx] = sub_mask
        workers = max_workers
    elapsed = time.perf_counter() - t0
    return BatchQueryReport(
        traj_mask=mask, elapsed_s=elapsed, n_chunks=len(chunks), workers=workers,
        transport=transport,
    )
