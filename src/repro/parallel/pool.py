"""Process pool wrapper.

A thin, test-friendly layer over :mod:`concurrent.futures`:

* ``max_workers=0`` (or 1) degrades to in-process serial execution —
  identical results, no fork, so unit tests and small jobs skip pool
  overhead entirely;
* work functions and payloads must be picklable (jobs are resolved to
  plain arrays before shipping, mirroring what a cluster-driven wall
  sends its render nodes).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro import obs

__all__ = ["WorkerPool", "pool_map", "default_workers", "round_robin_batches"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A sane default worker count: physical parallelism minus one,
    at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def round_robin_batches(items: Sequence[T], n_batches: int) -> list[tuple[T, ...]]:
    """Deal ``items`` into ``n_batches`` non-empty round-robin batches.

    Batch ``b`` gets ``items[b::n]`` — a deterministic, order-stable
    deal that spreads any positional cost skew (e.g. tiles of one wall
    column being denser than another) across batches instead of
    handing one batch a contiguous hot stripe.  ``n_batches`` is
    clamped to ``len(items)`` so no batch is ever empty.

    >>> round_robin_batches([1, 2, 3, 4, 5], 2)
    [(1, 3, 5), (2, 4)]
    >>> round_robin_batches([1], 4)
    [(1,)]
    """
    if n_batches < 1:
        raise ValueError(f"n_batches must be >= 1, got {n_batches}")
    n = min(int(n_batches), len(items))
    return [tuple(items[b::n]) for b in range(n)]


class WorkerPool:
    """Context-managed process pool with a serial fallback.

    >>> with WorkerPool(0) as pool:          # serial mode
    ...     pool.map(str, [1, 2])
    ['1', '2']
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is None:
            max_workers = default_workers()
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        self.max_workers = int(max_workers)
        self._executor: ProcessPoolExecutor | None = None

    @property
    def serial(self) -> bool:
        return self.max_workers <= 1

    def __enter__(self) -> "WorkerPool":
        if not self.serial:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def map(self, fn: Callable[[T], R], items: Sequence[T], *, chunksize: int = 1) -> list[R]:
        """Ordered map over items (serial or pooled).

        Both paths give identical guarantees so code exercised serially
        behaves the same pooled:

        * **Ordering** — ``results[i] == fn(items[i])`` always.
          ``chunksize`` only batches how many items travel per pickle
          round-trip; chunks are formed from consecutive items and
          results are reassembled in submission order, never reordered.
        * **Validation** — ``chunksize`` must be >= 1 on the serial
          path too (the pooled executor rejects it; a serial test run
          must not mask that).
        * **Failure timing** — the first exception from ``fn``
          propagates and later items are not evaluated.  Serially,
          items are consumed chunk-by-chunk in the same grouping the
          pooled path would ship, so side-effect ordering matches.

        Pickling contract (pooled path): ``fn`` must be a module-level
        callable, and every item and result must pickle — resolve jobs
        to plain arrays/dataclasses before mapping (or ship a
        :class:`repro.store.StoreHandle` and attach in the worker
        instead of pickling datasets).  The serial path never pickles;
        that difference is unobservable for conforming payloads.

        A pooled ``WorkerPool`` must be entered (``with`` block) before
        mapping; calling outside the context manager raises rather than
        silently degrading to serial execution and losing parallelism.
        """
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        mode = "serial" if self.serial else "pooled"
        obs.counter_add("pool.map.calls", 1, mode=mode)
        obs.counter_add("pool.map.items", len(items), mode=mode)
        if self.serial:
            results: list[R] = []
            for start in range(0, len(items), chunksize):
                results.extend(fn(item) for item in items[start : start + chunksize])
            return results
        if self._executor is None:
            raise RuntimeError(
                f"WorkerPool(max_workers={self.max_workers}).map called outside "
                "the context manager; enter `with WorkerPool(...) as pool:` so "
                "the process pool exists (refusing to silently run serial)"
            )
        return list(self._executor.map(fn, items, chunksize=chunksize))


def pool_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    max_workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """One-shot pooled map."""
    with WorkerPool(max_workers) as pool:
        return pool.map(fn, items, chunksize=chunksize)
