"""Process-parallel tile rendering.

Each (tile, eye) render job is independent, so the frame parallelizes
across a process pool.  State that every job needs — the renderer (with
its dataset), brush canvas, and query results — is shipped *once per
worker* through the pool initializer rather than once per job, which is
what makes the speedup survive Python's pickling costs (the dataset is
megabytes; a job description is kilobytes).

With a published :class:`repro.store.SharedArenaStore` (pass ``store=``)
the per-worker payload drops from O(dataset bytes) to O(handle bytes):
workers receive only the picklable :class:`~repro.store.StoreHandle`
plus the small renderer parts (arena/viewport/projection/style) and
attach zero-copy views onto the one resident copy of the packed
arrays.  If the handle cannot be attached (stale epoch, evicted block),
the render *degrades* to the classic pickle-ship initializer and the
event is recorded on the :class:`DegradationReport` — never a failed
frame.

``max_workers<=1`` runs serially in-process and is bit-identical to
:meth:`WallRenderer.render_viewport`.

The pooled path runs under a :class:`repro.resilience.SupervisedPool`:
a crashed, hung or misbehaving worker never costs the frame.  Failed
tiles are retried on respawned workers and, as a last resort,
re-rendered serially in the parent — rendering is deterministic, so the
recovered tiles are bit-identical to a healthy run and the frame always
completes (no blank tiles on the wall).  What failed and what it took
to recover is attached as ``ParallelRenderReport.degradation``.  Fault
injection for tests/benchmarks comes in through ``fault_plan`` or the
``REPRO_FAULTS`` environment hook.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.result import QueryResult
from repro.core.temporal import TimeWindow
from repro.display.viewport import Viewport
from repro.layout.cells import CellAssignment
from repro.render.framebuffer import Framebuffer
from repro.render.pipeline import RenderJob, WallRenderer
from repro.render.raster import CellStyle
from repro.resilience.faults import FaultPlan
from repro.resilience.health import DegradationReport
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisedPool
from repro.stereo.camera import Eye
from repro.stereo.projection import SpaceTimeProjection
from repro.store.arena import SharedArenaStore, StoreHandle, attach
from repro.synth.arena import Arena
from repro.store.shm import StoreAttachError

__all__ = ["render_viewport_parallel", "ParallelRenderReport"]

# Per-worker state installed by the pool initializer.  Values are
# heterogeneous (renderer, canvas, results, pinned client) — an explicit
# Any beats casting at every read site.
_WORKER_STATE: dict[str, Any] = {}


def _init_worker(renderer: WallRenderer, canvas: BrushCanvas | None,
                 results: dict[str, QueryResult] | None) -> None:
    _WORKER_STATE["renderer"] = renderer
    _WORKER_STATE["canvas"] = canvas
    _WORKER_STATE["results"] = results


def _init_worker_shm(handle: StoreHandle, arena: Arena, viewport: Viewport,
                     projection: SpaceTimeProjection | None,
                     style: CellStyle | None,
                     canvas: BrushCanvas | None,
                     results: dict[str, QueryResult] | None) -> None:
    """Zero-copy pool initializer: attach the shared store and rebuild
    the renderer around view-backed trajectories.

    An attach failure raises, killing the worker — the supervised
    pool's retry/serial-fallback ladder then still completes the frame
    (the parent pre-validates the handle, so this is a race, not the
    expected path).
    """
    from repro.store.arena import attach

    client = attach(handle)
    _WORKER_STATE["client"] = client  # pins the mapping for the worker's life
    _WORKER_STATE["renderer"] = WallRenderer(
        client.dataset, arena, viewport, projection, style
    )
    _WORKER_STATE["canvas"] = canvas
    _WORKER_STATE["results"] = results


def _render_one(job: RenderJob) -> tuple[int, int, int, np.ndarray, float]:
    """Render one job in a worker; the trailing float is the in-worker
    render seconds, shipped back so the parent can split frame wall time
    into dispatch / render / ship-back (worker processes cannot emit
    into the parent's telemetry registry directly)."""
    renderer: WallRenderer = _WORKER_STATE["renderer"]
    t0 = time.perf_counter()
    fb = renderer.render_job(
        job, canvas=_WORKER_STATE["canvas"], results=_WORKER_STATE["results"]
    )
    return (job.tile.col, job.tile.row, int(job.eye), fb.data,
            time.perf_counter() - t0)


@dataclass(frozen=True)
class ParallelRenderReport:
    """Frames plus timing and health of a parallel render pass.

    ``stage_seconds`` splits ``elapsed_s`` for the pooled path:
    ``dispatch`` (pool bring-up + initializer shipping), ``render``
    (summed in-worker render time across all jobs) and ``shipback``
    (result transport, queueing, and parent-side frame assembly —
    everything in the map wall not accounted to rendering).  The serial
    path reports only ``render``.
    """

    frames: dict[Eye, dict[tuple[int, int], Framebuffer]]
    elapsed_s: float
    n_jobs: int
    workers: int
    degradation: DegradationReport = field(default_factory=DegradationReport)
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when any job needed a retry or fallback."""
        return self.degradation.degraded


def render_viewport_parallel(
    renderer: WallRenderer,
    assignment: CellAssignment,
    *,
    eyes: tuple[Eye, ...] = (Eye.LEFT, Eye.RIGHT),
    canvas: BrushCanvas | None = None,
    results: dict[str, QueryResult] | None = None,
    engine: CoordinatedBrushingEngine | None = None,
    window: TimeWindow | None = None,
    max_workers: int = 0,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    store: "SharedArenaStore | StoreHandle | None" = None,
) -> ParallelRenderReport:
    """Render all viewport tiles, optionally over a supervised pool.

    Returns the same ``{eye: {(col, row): Framebuffer}}`` structure as
    the serial path, wrapped with timing for benchmark E11 and a
    :class:`DegradationReport` accounting for any worker failures the
    render absorbed.

    Parameters
    ----------
    engine:
        Optional query engine.  When given (and ``results`` is not),
        the highlight masks for every canvas color are evaluated
        *once* in the parent — through the engine's stage cache, so an
        unchanged brush/window costs only cache lookups — and the
        finished :class:`QueryResult` objects are shipped to the
        workers, instead of every tile job re-deriving highlights.
    window:
        Temporal filter for the ``engine`` evaluation.
    fault_plan:
        Deterministic fault injection for the pool workers (tests,
        benchmark R1).  Defaults to the ``REPRO_FAULTS`` environment
        hook; pass an empty plan to override the environment.
    retry_policy:
        Per-job retry/backoff/timeout policy for the supervisor.
    store:
        A published :class:`~repro.store.SharedArenaStore` (or its
        :class:`~repro.store.StoreHandle`) for the renderer's dataset.
        Pool workers then attach zero-copy views instead of receiving
        a pickled dataset; an unattachable handle degrades to the
        pickle-ship initializer with a ``shm-attach-failure`` event on
        the report.
    """
    if results is None and engine is not None and canvas is not None:
        if not canvas.is_empty():
            results = engine.query_all_colors(
                canvas, window=window, assignment=assignment
            )
    jobs = renderer.make_jobs(assignment, eyes)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    degradation = DegradationReport()
    t0 = time.perf_counter()
    frames: dict[Eye, dict[tuple[int, int], Framebuffer]] = {eye: {} for eye in eyes}
    stage_seconds: dict[str, float] = {}
    if max_workers <= 1:
        for job in jobs:
            t_tile = time.perf_counter()
            fb = renderer.render_job(job, canvas=canvas, results=results)
            obs.observe("render.tile.seconds", time.perf_counter() - t_tile)
            frames[job.eye][(job.tile.col, job.tile.row)] = fb
        workers = 1
        stage_seconds["render"] = time.perf_counter() - t0
    else:
        def _render_local(job: RenderJob) -> tuple[int, int, int, np.ndarray, float]:
            t_job = time.perf_counter()
            fb = renderer.render_job(job, canvas=canvas, results=results)
            return (job.tile.col, job.tile.row, int(job.eye), fb.data,
                    time.perf_counter() - t_job)

        # default transport: pickle the whole renderer into each worker
        initializer, initargs = _init_worker, (renderer, canvas, results)
        if store is not None:
            handle = store.handle if isinstance(store, SharedArenaStore) else store
            try:
                attach(handle).close()  # parent-side probe: fail fast+cheap
            except StoreAttachError as exc:
                degradation.record(
                    "shm-attach-failure", scope="pool", action="pickle-fallback",
                    detail=repr(exc),
                )
                obs.counter_add("render.transport.fallbacks", 1)
            else:
                initializer = _init_worker_shm
                initargs = (
                    handle, renderer.arena, renderer.viewport,
                    renderer.projection, renderer.style, canvas, results,
                )

        with SupervisedPool(
            max_workers,
            policy=retry_policy,
            fault_plan=fault_plan,
            initializer=initializer,
            initargs=initargs,
            report=degradation,
        ) as pool:
            dispatch_s = time.perf_counter() - t0
            t_map = time.perf_counter()
            outputs = pool.map(_render_one, jobs, serial_fn=_render_local)
            map_s = time.perf_counter() - t_map
        for col, row, eye_val, data, _job_s in outputs:
            fb = Framebuffer(data.shape[1], data.shape[0])
            fb.data[...] = data
            frames[Eye(eye_val)][(col, row)] = fb
        workers = max_workers
        render_s = float(sum(out[4] for out in outputs))
        # everything in the map wall not spent rendering (even spread
        # perfectly across workers) is transport: job pickling, result
        # queues, and parent-side assembly
        shipback_s = max(map_s - render_s / max_workers, 0.0)
        stage_seconds = {
            "dispatch": dispatch_s,
            "render": render_s,
            "shipback": shipback_s,
        }
    elapsed = time.perf_counter() - t0
    for stage, seconds in stage_seconds.items():
        obs.observe("render.frame.stage_seconds", seconds, stage=stage)
    obs.observe("render.frame.seconds", elapsed, workers=workers)
    obs.counter_add("render.jobs", len(jobs), workers=workers)
    return ParallelRenderReport(
        frames=frames,
        elapsed_s=elapsed,
        n_jobs=len(jobs),
        workers=workers,
        degradation=degradation,
        stage_seconds={k: round(v, 6) for k, v in stage_seconds.items()},
    )
