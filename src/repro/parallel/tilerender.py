"""Process-parallel tile rendering.

Each (tile, eye) render job is independent, so the frame parallelizes
across a process pool.  State that every job needs — the renderer (with
its dataset), brush canvas, and query results — is shipped *once per
worker* through the pool initializer rather than once per job, which is
what makes the speedup survive Python's pickling costs (the dataset is
megabytes; a job description is kilobytes).

Three transports stack on top of that, each removing a copy:

* **pickle ship-back** — workers return each tile's pixels through the
  executor result queue (the baseline transport; kept as a fallback
  and as the parity suite's second witness);
* **store handle** (pass ``store=``) — the per-worker *input* payload
  drops from O(dataset bytes) to O(handle bytes): workers attach
  zero-copy views onto the one resident copy of the packed arrays via
  :class:`repro.store.StoreHandle`.  An unattachable handle degrades to
  the pickle-ship initializer with a ``shm-attach-failure`` event;
* **shared framebuffer** (default on the pooled path) — the *output*
  payload drops to zero: the parent creates one
  :class:`repro.store.SharedFrameBuffer` sized to the frame, workers
  write their tile slots in place, and nothing but per-job timing rides
  the result queue.  If the frame block cannot be created the render
  degrades to ship-back with a ``framebuf-create-failure`` event —
  never a failed frame.

Jobs are **batched per worker** (one submit per worker carrying its
tile list) instead of dispatched per tile: a batch amortizes dispatch
and lets the worker hoist the brush-footprint coverage cache across its
whole tile list — the dominant per-tile cost on brushed frames is
rasterizing the same (cell size, color) footprint over and over, and a
batch pays it once.  Batch size is informed by the
``render.frame.stage_seconds{stage}`` / ``render.tile.seconds``
telemetry: when per-tile history says a one-batch-per-worker deal would
outlive the supervisor's attempt timeout, batches are split further so
a healthy batch is never mistaken for a hang.

``max_workers<=1`` runs serially in-process and is bit-identical to
:meth:`WallRenderer.render_viewport`.

The pooled path runs under a :class:`repro.resilience.SupervisedPool`:
a crashed, hung or misbehaving worker never costs the frame.  Failed
batches are retried on respawned workers and, as a last resort,
re-rendered serially in the parent — rendering is deterministic, so a
retried batch overwrites its framebuffer slots with identical bytes
(no torn tiles) and the frame always completes.  What failed and what
it took to recover is attached as
``ParallelRenderReport.degradation``.  Fault injection for tests and
benchmarks comes in through ``fault_plan`` or the ``REPRO_FAULTS``
environment hook; fault job indices address *batches* on this path.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.result import QueryResult
from repro.core.temporal import TimeWindow
from repro.display.viewport import Viewport
from repro.layout.cells import CellAssignment
from repro.parallel.pool import round_robin_batches
from repro.render.framebuffer import Framebuffer
from repro.render.pipeline import RenderJob, WallRenderer
from repro.render.raster import CellStyle
from repro.resilience.faults import FaultPlan
from repro.resilience.health import DegradationReport
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy
from repro.resilience.supervisor import SupervisedPool
from repro.stereo.camera import Eye
from repro.stereo.projection import SpaceTimeProjection
from repro.store.arena import SharedArenaStore, StoreHandle, attach
from repro.store.framebuf import (
    FramebufferHandle,
    SharedFrameBuffer,
    attach_framebuffer,
    create_framebuffer,
)
from repro.store.shm import StoreAttachError
from repro.synth.arena import Arena

__all__ = ["render_viewport_parallel", "ParallelRenderReport", "TileBatch"]

# Per-worker state installed by the pool initializer.  Values are
# heterogeneous (renderer, canvas, results, pinned clients) — an
# explicit Any beats casting at every read site.
_WORKER_STATE: dict[str, Any] = {}

#: One shipped result per render job: (col, row, eye, pixels-or-None,
#: in-worker render seconds).  ``pixels`` is None when the job wrote
#: its shared framebuffer slot instead of shipping data back.
_JobResult = tuple[int, int, int, "np.ndarray | None", float]


@dataclass(frozen=True)
class TileBatch:
    """One worker's submit: the tile jobs it renders in sequence.

    Batching is what lets the worker share a brush-footprint coverage
    cache across its whole job list (see
    :meth:`~repro.render.pipeline.WallRenderer.render_job`), and what
    collapses per-tile dispatch overhead into one pickle round-trip
    per worker.
    """

    jobs: tuple[RenderJob, ...]


def _attach_framebuffer_state(fb_handle: FramebufferHandle | None) -> None:
    """Attach the shared output framebuffer (if any) for this worker's
    lifetime.  An attach failure raises, killing the worker — the
    supervised pool's retry/serial-fallback ladder still completes the
    frame (the parent created the block, so this is a race with
    teardown, not the expected path)."""
    if fb_handle is None:
        _WORKER_STATE["fb"] = None
    else:
        _WORKER_STATE["fb"] = attach_framebuffer(fb_handle)


def _init_worker(renderer: WallRenderer, canvas: BrushCanvas | None,
                 results: dict[str, QueryResult] | None,
                 fb_handle: FramebufferHandle | None = None) -> None:
    _WORKER_STATE["renderer"] = renderer
    _WORKER_STATE["canvas"] = canvas
    _WORKER_STATE["results"] = results
    _attach_framebuffer_state(fb_handle)


def _init_worker_shm(handle: StoreHandle, arena: Arena, viewport: Viewport,
                     projection: SpaceTimeProjection | None,
                     style: CellStyle | None,
                     canvas: BrushCanvas | None,
                     results: dict[str, QueryResult] | None,
                     fb_handle: FramebufferHandle | None = None) -> None:
    """Zero-copy pool initializer: attach the shared store and rebuild
    the renderer around view-backed trajectories.

    An attach failure raises, killing the worker — the supervised pool
    still completes the frame (the parent pre-validates the handle, so
    this is a race, not the expected path).
    """
    client = attach(handle)
    _WORKER_STATE["client"] = client  # pins the mapping for the worker's life
    _WORKER_STATE["renderer"] = WallRenderer(
        client.dataset, arena, viewport, projection, style
    )
    _WORKER_STATE["canvas"] = canvas
    _WORKER_STATE["results"] = results
    _attach_framebuffer_state(fb_handle)


def _render_batch(batch: TileBatch) -> list[_JobResult]:
    """Render one batch in a worker.

    With a shared framebuffer attached, each job's pixels go straight
    into its slot and only ``(col, row, eye, None, seconds)`` rides the
    result queue; otherwise the pixels ship back.  The per-job seconds
    let the parent split frame wall time into dispatch / render /
    transport (worker processes cannot emit into the parent's
    telemetry registry directly).

    The footprint cache is hoisted across the batch: coverage depends
    only on (cell pixel size, color) within one frame, so the batch
    pays each footprint rasterization once instead of once per job.
    """
    renderer: WallRenderer = _WORKER_STATE["renderer"]
    fb_client = _WORKER_STATE.get("fb")
    footprint_cache: dict[tuple[int, int, str], np.ndarray] = {}
    out: list[_JobResult] = []
    for job in batch.jobs:
        t0 = time.perf_counter()
        fb = renderer.render_job(
            job,
            canvas=_WORKER_STATE["canvas"],
            results=_WORKER_STATE["results"],
            footprint_cache=footprint_cache,
        )
        payload: np.ndarray | None = fb.data
        if fb_client is not None:
            slot = fb_client.slot(
                job.tile.col, job.tile.row, int(job.eye), writable=True
            )
            slot[...] = fb.data
            del slot
            payload = None
        out.append(
            (job.tile.col, job.tile.row, int(job.eye), payload,
             time.perf_counter() - t0)
        )
    return out


def _plan_batches(
    jobs: list[RenderJob], max_workers: int, policy: RetryPolicy
) -> list[TileBatch]:
    """Deal jobs into per-worker batches, sized from tile telemetry.

    Default: one batch per worker (maximal footprint-cache reuse,
    minimal dispatch).  When ``render.tile.seconds`` history predicts a
    batch would outlive half the supervisor's attempt timeout, batches
    are split until the expected batch render fits — a healthy batch
    must never be indistinguishable from a hung worker.
    """
    if not jobs:
        return []
    n_batches = min(len(jobs), max_workers)
    timeout = policy.attempt_timeout_s
    if timeout:
        hist = obs.telemetry_snapshot().histogram("render.tile.seconds")
        if hist is not None and hist.count:
            per_tile = hist.sum / hist.count
            budget = 0.5 * float(timeout)
            largest = math.ceil(len(jobs) / n_batches)
            if per_tile > 0 and per_tile * largest > budget:
                per_batch = max(1, int(budget / per_tile))
                n_batches = min(len(jobs), math.ceil(len(jobs) / per_batch))
    return [TileBatch(jobs=b) for b in round_robin_batches(jobs, n_batches)]


@dataclass(frozen=True)
class ParallelRenderReport:
    """Frames plus timing and health of a parallel render pass.

    ``stage_seconds`` splits ``elapsed_s`` for the pooled path:
    ``dispatch`` (pool bring-up, initializer shipping, and shared-frame
    creation), ``render`` (summed in-worker render time across all
    jobs), ``shipback`` (result transport and queueing — everything in
    the map wall not accounted to rendering; near zero on the
    shared-framebuffer transport, where only timing tuples ride the
    queue) and ``assemble`` (parent-side frame assembly: one slot copy
    per tile, or adopting shipped arrays).  The serial path reports
    only ``render``.
    """

    frames: dict[Eye, dict[tuple[int, int], Framebuffer]]
    elapsed_s: float
    n_jobs: int
    workers: int
    degradation: DegradationReport = field(default_factory=DegradationReport)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    n_batches: int = 0
    shared_fb: bool = False

    @property
    def degraded(self) -> bool:
        """True when any job needed a retry or fallback."""
        return self.degradation.degraded


def render_viewport_parallel(
    renderer: WallRenderer,
    assignment: CellAssignment,
    *,
    eyes: tuple[Eye, ...] = (Eye.LEFT, Eye.RIGHT),
    canvas: BrushCanvas | None = None,
    results: dict[str, QueryResult] | None = None,
    engine: CoordinatedBrushingEngine | None = None,
    window: TimeWindow | None = None,
    max_workers: int = 0,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    store: "SharedArenaStore | StoreHandle | None" = None,
    shared_fb: bool | None = None,
) -> ParallelRenderReport:
    """Render all viewport tiles, optionally over a supervised pool.

    Returns the same ``{eye: {(col, row): Framebuffer}}`` structure as
    the serial path, wrapped with timing for benchmark E11 and a
    :class:`DegradationReport` accounting for any worker failures the
    render absorbed.

    Parameters
    ----------
    engine:
        Optional query engine.  When given (and ``results`` is not),
        the highlight masks for every canvas color are evaluated
        *once* in the parent — through the engine's stage cache, so an
        unchanged brush/window costs only cache lookups — and the
        finished :class:`QueryResult` objects are shipped to the
        workers, instead of every tile job re-deriving highlights.
    window:
        Temporal filter for the ``engine`` evaluation.
    fault_plan:
        Deterministic fault injection for the pool workers (tests,
        benchmark R1).  Defaults to the ``REPRO_FAULTS`` environment
        hook; pass an empty plan to override the environment.  Fault
        job indices address batches (one per worker submit).
    retry_policy:
        Per-batch retry/backoff/timeout policy for the supervisor.
    store:
        A published :class:`~repro.store.SharedArenaStore` (or its
        :class:`~repro.store.StoreHandle`) for the renderer's dataset.
        Pool workers then attach zero-copy views instead of receiving
        a pickled dataset; an unattachable handle degrades to the
        pickle-ship initializer with a ``shm-attach-failure`` event on
        the report.
    shared_fb:
        Output transport for the pooled path.  ``None`` (default) and
        ``True`` render into a shared framebuffer (workers write tile
        slots in place; nothing ships back); ``False`` forces the
        classic pickle ship-back (the parity suite's second witness).
        A frame-block creation failure degrades to ship-back with a
        ``framebuf-create-failure`` event.  Ignored on the serial path.
    """
    if results is None and engine is not None and canvas is not None:
        if not canvas.is_empty():
            results = engine.query_all_colors(
                canvas, window=window, assignment=assignment
            )
    jobs = renderer.make_jobs(assignment, eyes)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    degradation = DegradationReport()
    t0 = time.perf_counter()
    frames: dict[Eye, dict[tuple[int, int], Framebuffer]] = {eye: {} for eye in eyes}
    stage_seconds: dict[str, float] = {}
    n_batches = 0
    use_shared_fb = False
    if max_workers <= 1:
        for job in jobs:
            t_tile = time.perf_counter()
            fb = renderer.render_job(job, canvas=canvas, results=results)
            obs.observe("render.tile.seconds", time.perf_counter() - t_tile)
            frames[job.eye][(job.tile.col, job.tile.row)] = fb
        workers = 1
        stage_seconds["render"] = time.perf_counter() - t0
    else:
        policy = retry_policy or DEFAULT_POLICY
        batches = _plan_batches(jobs, max_workers, policy)
        n_batches = len(batches)

        frame_store: SharedFrameBuffer | None = None
        if shared_fb is None or shared_fb:
            try:
                frame_store = create_framebuffer(
                    (job.tile.col, job.tile.row, int(job.eye),
                     job.tile.px_height, job.tile.px_width)
                    for job in jobs
                )
            except (StoreAttachError, ValueError) as exc:
                degradation.record(
                    "framebuf-create-failure", scope="pool",
                    action="shipback-fallback", detail=repr(exc),
                )
                obs.counter_add("render.transport.fallbacks", 1)
        use_shared_fb = frame_store is not None
        fb_handle = None if frame_store is None else frame_store.handle

        def _render_batch_local(batch: TileBatch) -> list[_JobResult]:
            """Bottom-rung serial fallback, run in the parent.  Ships
            pixels through the return value even under a shared
            framebuffer — the parent must not write slots while other
            batches may still be in flight."""
            cache: dict[tuple[int, int, str], np.ndarray] = {}
            out: list[_JobResult] = []
            for job in batch.jobs:
                t_job = time.perf_counter()
                fb = renderer.render_job(
                    job, canvas=canvas, results=results, footprint_cache=cache
                )
                out.append(
                    (job.tile.col, job.tile.row, int(job.eye), fb.data,
                     time.perf_counter() - t_job)
                )
            return out

        # default transport: pickle the whole renderer into each worker
        initializer: Any = _init_worker
        initargs: tuple[Any, ...] = (renderer, canvas, results, fb_handle)
        if store is not None:
            handle = store.handle if isinstance(store, SharedArenaStore) else store
            try:
                attach(handle).close()  # parent-side probe: fail fast+cheap
            except StoreAttachError as exc:
                degradation.record(
                    "shm-attach-failure", scope="pool", action="pickle-fallback",
                    detail=repr(exc),
                )
                obs.counter_add("render.transport.fallbacks", 1)
            else:
                initializer = _init_worker_shm
                initargs = (
                    handle, renderer.arena, renderer.viewport,
                    renderer.projection, renderer.style, canvas, results,
                    fb_handle,
                )

        try:
            with SupervisedPool(
                max_workers,
                policy=retry_policy,
                fault_plan=fault_plan,
                initializer=initializer,
                initargs=initargs,
                report=degradation,
            ) as pool:
                dispatch_s = time.perf_counter() - t0
                t_map = time.perf_counter()
                outputs = pool.map(
                    _render_batch, batches, serial_fn=_render_batch_local
                )
                map_s = time.perf_counter() - t_map
            # assembly runs strictly after the map: every slot has been
            # fully (re)written by exactly one surviving attempt, so a
            # plain copy-out per tile cannot observe a torn write
            t_assemble = time.perf_counter()
            render_s = 0.0
            for batch_out in outputs:
                for col, row, eye_val, data, job_s in batch_out:
                    render_s += job_s
                    obs.observe("render.tile.seconds", job_s)
                    if data is None:
                        assert frame_store is not None
                        data = frame_store.slot(col, row, eye_val).copy()
                    frames[Eye(eye_val)][(col, row)] = Framebuffer.from_array(data)
            assemble_s = time.perf_counter() - t_assemble
        finally:
            if frame_store is not None:
                frame_store.unlink()
                frame_store.close()
        workers = max_workers
        # everything in the map wall not spent rendering (even spread
        # perfectly across workers) is transport: batch pickling and
        # result queues — near zero when only timing tuples ship back
        shipback_s = max(map_s - render_s / max_workers, 0.0)
        stage_seconds = {
            "dispatch": dispatch_s,
            "render": render_s,
            "shipback": shipback_s,
            "assemble": assemble_s,
        }
        obs.counter_add("render.batches", n_batches, workers=workers)
        if use_shared_fb:
            obs.counter_add("render.sharedfb.frames", 1)
    elapsed = time.perf_counter() - t0
    for stage, seconds in stage_seconds.items():
        obs.observe("render.frame.stage_seconds", seconds, stage=stage)
    obs.observe("render.frame.seconds", elapsed, workers=workers)
    obs.counter_add("render.jobs", len(jobs), workers=workers)
    return ParallelRenderReport(
        frames=frames,
        elapsed_s=elapsed,
        n_jobs=len(jobs),
        workers=workers,
        degradation=degradation,
        stage_seconds={k: round(v, 6) for k, v in stage_seconds.items()},
        n_batches=n_batches,
        shared_fb=use_shared_fb,
    )
