"""Parallel execution harness.

On the real wall each tile is driven by its own render node; the
software reproduction mirrors that with a process pool over per-tile
render jobs (tiles share nothing, so the decomposition is embarrassing
— the interesting part is amortizing worker startup and shipping only
what a tile needs).  The same pool runs chunked batch queries for the
§VI-C large-dataset workloads.
"""

from repro.parallel.partition import chunk_indices, partition_jobs_by_cost
from repro.parallel.pool import WorkerPool, pool_map
from repro.parallel.tilerender import render_viewport_parallel
from repro.parallel.batch import parallel_query_support

__all__ = [
    "chunk_indices",
    "partition_jobs_by_cost",
    "WorkerPool",
    "pool_map",
    "render_viewport_parallel",
    "parallel_query_support",
]
