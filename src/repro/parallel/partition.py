"""Work partitioning.

Utilities for splitting work across workers: plain index chunking for
homogeneous items, and a longest-processing-time (LPT) partitioner for
jobs with known cost estimates (tiles hosting more trajectory cells
cost more to render; LPT keeps workers balanced within the classic
4/3 bound).
"""

from __future__ import annotations

import numpy as np

__all__ = ["chunk_indices", "partition_jobs_by_cost"]


def chunk_indices(n: int, n_chunks: int) -> list[np.ndarray]:
    """Split ``range(n)`` into at most ``n_chunks`` contiguous chunks of
    near-equal size (earlier chunks at most one element larger)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n_chunks = min(n_chunks, max(1, n))
    base, extra = divmod(n, n_chunks)
    out: list[np.ndarray] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append(np.arange(start, start + size))
        start += size
    return [c for c in out if len(c)] or [np.arange(0)]


def partition_jobs_by_cost(costs: np.ndarray, n_workers: int) -> list[list[int]]:
    """LPT scheduling: assign jobs to workers, heaviest first, each to
    the currently lightest worker.  Returns job-index lists per worker
    (some possibly empty when jobs < workers).
    """
    costs = np.asarray(costs, dtype=np.float64)
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    buckets: list[list[int]] = [[] for _ in range(n_workers)]
    loads = np.zeros(n_workers)
    for j in np.argsort(costs)[::-1]:
        w = int(np.argmin(loads))
        buckets[w].append(int(j))
        loads[w] += costs[j]
    return buckets
