"""Vectorized polyline splatting.

Rendering hundreds of trajectory cells means rasterizing hundreds of
thousands of short segments per frame.  A per-segment scanline loop in
Python is hopeless; instead we *splat*: every polyline is resampled
along its arc length at sub-pixel spacing, and the resulting point
cloud is accumulated into a coverage map with bilinear weights via
``np.add.at`` — a single unsorted scatter-add over flat arrays.  Line
width is achieved by stamping a small disc kernel of offsets around
each sample (a tiny constant-size loop, vectorized over all points).

This trades exact analytic anti-aliasing for an approximation that is
visually equivalent at sub-pixel step sizes, and it turns the frame
into a handful of NumPy passes regardless of trajectory count.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resample_segments", "splat_points", "splat_polylines", "disc_kernel"]


def resample_segments(
    a: np.ndarray, b: np.ndarray, step: float, values: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Resample segments a[i]->b[i] at ``step`` pixel spacing.

    Returns the (P, 2) sample points and, when ``values`` gives a
    per-segment scalar (e.g. normalized time), the (P,) per-sample
    values (linearly carried, constant per segment).

    Fully vectorized: per-segment sample counts come from the segment
    lengths; samples are generated with a repeat/cumulative pattern.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if len(a) == 0:
        return np.empty((0, 2)), (np.empty(0) if values is not None else None)
    d = b - a
    lengths = np.hypot(d[:, 0], d[:, 1])
    counts = np.maximum(1, np.ceil(lengths / step).astype(np.int64)) + 1
    total = int(counts.sum())
    seg_of = np.repeat(np.arange(len(a)), counts)
    # within-segment sample rank: 0..counts[i]-1 via cumulative trick
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    rank = np.arange(total) - starts[seg_of]
    t = rank / np.maximum(counts[seg_of] - 1, 1)
    points = a[seg_of] + t[:, None] * d[seg_of]
    vals = values[seg_of] if values is not None else None
    return points, vals


def disc_kernel(width: float) -> tuple[np.ndarray, np.ndarray]:
    """Offsets and weights of a disc stamp for line width ``width`` px.

    Width <= 1 collapses to a single center tap.  Weights fall off
    linearly at the rim for soft edges.
    """
    if width <= 1.0:
        return np.zeros((1, 2)), np.ones(1)
    r = width / 2.0
    n = int(np.ceil(r))
    ys, xs = np.mgrid[-n : n + 1, -n : n + 1]
    d = np.hypot(xs, ys)
    weights_full = np.clip(r + 0.5 - d, 0.0, 1.0)
    keep = weights_full > 0.0
    offsets = np.stack([xs[keep], ys[keep]], axis=1).astype(np.float64)
    return offsets, weights_full[keep]


def splat_points(
    coverage: np.ndarray,
    points: np.ndarray,
    *,
    weights: np.ndarray | float = 1.0,
    rgb_accum: np.ndarray | None = None,
    colors: np.ndarray | None = None,
) -> None:
    """Accumulate points into a coverage map with bilinear weights.

    Parameters
    ----------
    coverage:
        (H, W) float array accumulated in place.
    points:
        (P, 2) pixel coordinates (x, y).
    weights:
        Scalar or (P,) per-point weight.
    rgb_accum, colors:
        Optional (H, W, 3) color accumulator and (P, 3) per-point
        colors; enables per-pixel color averaging
        (``rgb = rgb_accum / coverage``) for gradient-colored lines.
    """
    h, w = coverage.shape
    points = np.asarray(points, dtype=np.float64)
    if len(points) == 0:
        return
    wts = np.broadcast_to(np.asarray(weights, dtype=np.float64), (len(points),))

    x = points[:, 0]
    y = points[:, 1]
    x0 = np.floor(x).astype(np.int64)
    y0 = np.floor(y).astype(np.int64)
    fx = x - x0
    fy = y - y0

    for dx, dy, bw in (
        (0, 0, (1 - fx) * (1 - fy)),
        (1, 0, fx * (1 - fy)),
        (0, 1, (1 - fx) * fy),
        (1, 1, fx * fy),
    ):
        xi = x0 + dx
        yi = y0 + dy
        ok = (xi >= 0) & (xi < w) & (yi >= 0) & (yi < h)
        if not ok.any():
            continue
        contrib = bw[ok] * wts[ok]
        np.add.at(coverage, (yi[ok], xi[ok]), contrib)
        if rgb_accum is not None and colors is not None:
            np.add.at(rgb_accum, (yi[ok], xi[ok]), contrib[:, None] * colors[ok])


def splat_polylines(
    coverage: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    *,
    width: float = 1.5,
    step: float = 0.7,
    seg_values: np.ndarray | None = None,
    rgb_accum: np.ndarray | None = None,
    value_to_rgb=None,
) -> None:
    """Splat segments a[i]->b[i] (pixel space) into ``coverage``.

    ``seg_values`` + ``value_to_rgb`` enable per-segment color ramps
    (the time gradient): values are resampled along with the geometry
    and mapped to RGB per sample point.

    The per-sample weight is normalized by the samples-per-pixel
    density (step) and kernel mass so accumulated coverage saturates
    near 1.0 on the line body independent of ``step`` and ``width``.
    """
    points, vals = resample_segments(a, b, step, seg_values)
    if len(points) == 0:
        return
    offsets, kweights = disc_kernel(width)
    # normalize: one pixel of line body receives ~ (1/step) samples,
    # each stamping kernel mass sum(kweights)
    norm = step / max(1e-9, float(kweights.max()))
    colors = None
    if vals is not None and value_to_rgb is not None and rgb_accum is not None:
        colors = np.asarray(value_to_rgb(vals), dtype=np.float64)
    for (dx, dy), kw in zip(offsets, kweights):
        shifted = points + (dx, dy)
        splat_points(
            coverage,
            shifted,
            weights=kw * norm,
            rgb_accum=rgb_accum if colors is not None else None,
            colors=colors,
        )
