"""The wall rendering pipeline.

A :class:`WallRenderer` turns an exploration state — dataset, layout
assignment, brush canvas, query results, temporal window, projection —
into per-tile, per-eye framebuffers.  Tiles are independent render
units: :meth:`render_tile` touches only geometry overlapping one panel,
which is what makes process-parallel rendering
(:mod:`repro.parallel.tilerender`) a drop-in.

A :class:`RenderJob` is the picklable work description one tile worker
needs (everything resolved to plain arrays before shipping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.canvas import BrushCanvas
from repro.core.result import QueryResult
from repro.display.coords import CoordinateMapper
from repro.display.tile import Tile
from repro.display.viewport import Viewport
from repro.layout.cells import CellAssignment
from repro.render.framebuffer import Framebuffer
from repro.render.raster import CellRenderer, CellStyle
from repro.stereo.camera import Eye
from repro.stereo.projection import SpaceTimeProjection
from repro.synth.arena import Arena
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["RenderJob", "WallRenderer"]


@dataclass(frozen=True)
class RenderJob:
    """Work description for rendering one tile for one eye."""

    tile: Tile
    eye: Eye
    cell_rects: np.ndarray            # (C, 4) wall rects of cells on this tile
    cell_traj: np.ndarray             # (C,) dataset indices (-1 = empty)
    cell_colors: np.ndarray           # (C, 3) group background colors
    cell_labels: tuple[str, ...] = () # per-cell annotation ("" = none)


class WallRenderer:
    """Renders the application's state onto a wall viewport.

    Parameters
    ----------
    dataset:
        Trajectories being displayed.
    arena:
        The shared arena (drives per-cell coordinate mappers).
    viewport:
        The hosting viewport.
    projection:
        Stereo space-time projection.
    style:
        Cell styling.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        arena: Arena,
        viewport: Viewport,
        projection: SpaceTimeProjection | None = None,
        style: CellStyle | None = None,
    ) -> None:
        self.dataset = dataset
        self.arena = arena
        self.viewport = viewport
        self.projection = projection or SpaceTimeProjection()
        self.style = style or CellStyle()

    # Job construction -----------------------------------------------------
    def _cells_on_tile(
        self, tile: Tile, assignment: CellAssignment
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rects, traj_indices, colors) of cells intersecting one tile.

        Bezel-aware grids place each cell wholly inside a panel, so the
        intersection test is a containment test of cell centers.
        """
        rects = assignment.grid.rects()
        cx = 0.5 * (rects[:, 0] + rects[:, 2])
        cy = 0.5 * (rects[:, 1] + rects[:, 3])
        x0, y0, x1, y1 = tile.rect
        on_tile = (cx >= x0) & (cx < x1) & (cy >= y0) & (cy < y1)
        idx = np.flatnonzero(on_tile)
        colors = np.full((len(idx), 3), 0.10, dtype=np.float64)
        labels = [""] * len(idx)
        if assignment.groups is not None:
            specs = list(assignment.groups)
            labeled_groups: set[int] = set()
            for k, cell_i in enumerate(idx):
                gi = int(assignment.group_of_cell[cell_i])
                if gi >= 0:
                    colors[k] = specs[gi].color
                    # label each group once per tile, at its first cell
                    if gi not in labeled_groups:
                        labels[k] = specs[gi].name
                        labeled_groups.add(gi)
        return rects[idx], assignment.cell_to_traj[idx], colors, tuple(labels)

    def make_jobs(self, assignment: CellAssignment, eyes: tuple[Eye, ...] = (Eye.LEFT, Eye.RIGHT)) -> list[RenderJob]:
        """One job per (tile, eye) over the viewport."""
        jobs: list[RenderJob] = []
        for tile in self.viewport.tiles():
            rects, trajs, colors, labels = self._cells_on_tile(tile, assignment)
            for eye in eyes:
                jobs.append(RenderJob(tile, eye, rects, trajs, colors, labels))
        return jobs

    # Rendering ---------------------------------------------------------------
    def render_job(
        self,
        job: RenderJob,
        *,
        canvas: BrushCanvas | None = None,
        results: dict[str, QueryResult] | None = None,
        footprint_cache: dict[tuple[int, int, str], np.ndarray] | None = None,
    ) -> Framebuffer:
        """Rasterize one tile/eye job into a fresh framebuffer.

        ``footprint_cache`` may be shared across the jobs of one frame:
        brush-footprint coverage depends only on the cell's pixel size
        and the stroke set of a color, both constant within a frame, so
        a batch worker passes one dict for its whole job list and pays
        the footprint rasterization once per (size, color) instead of
        once per job.  Never reuse a cache across canvas changes.
        """
        tile = job.tile
        fb = Framebuffer(tile.px_width, tile.px_height, self.style.background)
        renderer = CellRenderer(tile, self.projection, self.style)
        packed = self.dataset.packed() if results else None
        # brush-footprint coverage is identical across same-sized cells;
        # cache it per (cell pixel size, color)
        if footprint_cache is None:
            footprint_cache = {}
        labels = job.cell_labels or ("",) * len(job.cell_rects)
        for rect, traj_idx, color, label in zip(
            job.cell_rects, job.cell_traj, job.cell_colors, labels
        ):
            rect_t = tuple(float(v) for v in rect)
            renderer.draw_background(fb, rect_t, tuple(color))
            mapper = CoordinateMapper(self.arena, rect_t)
            renderer.draw_arena_rim(fb, mapper)
            if label:
                from repro.render.font import draw_text

                x0, y0, _, y1 = renderer._cell_px_rect(rect_t)
                # scale the label with the cell so it stays legible on
                # composed (downscaled) wall frames
                scale = max(1, (y1 - y0) // 60)
                draw_text(fb, x0 + 3, y0 + 3, label, alpha=0.9, scale=scale)
            if traj_idx < 0:
                continue
            traj = self.dataset[int(traj_idx)]
            renderer.draw_trajectory(fb, traj, mapper, job.eye, rect_t)
            if canvas is not None:
                x0, y0, x1, y1 = renderer._cell_px_rect(rect_t)
                for color_name in canvas.colors():
                    centers, radii = canvas.stamps_of(color_name)
                    if not len(centers):
                        continue
                    key = (x1 - x0, y1 - y0, color_name)
                    cov = renderer.draw_brush_footprint(
                        fb, mapper, centers, radii, color_name, rect_t,
                        precomputed=footprint_cache.get(key),
                    )
                    if cov is not None and key not in footprint_cache:
                        footprint_cache[key] = cov
            if results:
                for color_name, res in results.items():
                    rows = packed.rows_of(int(traj_idx))
                    seg_mask = res.segment_mask[rows]
                    if seg_mask.any():
                        renderer.draw_highlights(
                            fb, traj, mapper, job.eye, seg_mask, color_name, rect_t
                        )
        return fb

    def render_viewport(
        self,
        assignment: CellAssignment,
        *,
        eyes: tuple[Eye, ...] = (Eye.LEFT, Eye.RIGHT),
        canvas: BrushCanvas | None = None,
        results: dict[str, QueryResult] | None = None,
    ) -> dict[Eye, dict[tuple[int, int], Framebuffer]]:
        """Render every tile serially; returns {eye: {(col,row): fb}}.

        The process-parallel equivalent lives in
        :func:`repro.parallel.tilerender.render_viewport_parallel`.
        """
        out: dict[Eye, dict[tuple[int, int], Framebuffer]] = {eye: {} for eye in eyes}
        for job in self.make_jobs(assignment, eyes):
            fb = self.render_job(job, canvas=canvas, results=results)
            out[job.eye][(job.tile.col, job.tile.row)] = fb
        return out
