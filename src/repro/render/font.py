"""A tiny built-in bitmap font for frame annotations.

The wall application labels its group bins; the headless renderer does
the same with a self-contained 5x7 pixel font (uppercase letters,
digits, and a little punctuation — enough for group names, layout tags
and percentages).  No external font files, no image libraries: glyphs
are string bitmaps compiled to boolean arrays at import time.
"""

from __future__ import annotations

import numpy as np

from repro.render.color import Color
from repro.render.framebuffer import Framebuffer

__all__ = ["GLYPH_W", "GLYPH_H", "text_mask", "draw_text"]

GLYPH_W = 5
GLYPH_H = 7

# fmt: off
_GLYPHS: dict[str, tuple[str, ...]] = {
    "A": (" ### ", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"),
    "B": ("#### ", "#   #", "#   #", "#### ", "#   #", "#   #", "#### "),
    "C": (" ####", "#    ", "#    ", "#    ", "#    ", "#    ", " ####"),
    "D": ("#### ", "#   #", "#   #", "#   #", "#   #", "#   #", "#### "),
    "E": ("#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#####"),
    "F": ("#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#    "),
    "G": (" ####", "#    ", "#    ", "#  ##", "#   #", "#   #", " ####"),
    "H": ("#   #", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"),
    "I": ("#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "#####"),
    "J": ("    #", "    #", "    #", "    #", "    #", "#   #", " ### "),
    "K": ("#   #", "#  # ", "# #  ", "##   ", "# #  ", "#  # ", "#   #"),
    "L": ("#    ", "#    ", "#    ", "#    ", "#    ", "#    ", "#####"),
    "M": ("#   #", "## ##", "# # #", "# # #", "#   #", "#   #", "#   #"),
    "N": ("#   #", "##  #", "# # #", "#  ##", "#   #", "#   #", "#   #"),
    "O": (" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "),
    "P": ("#### ", "#   #", "#   #", "#### ", "#    ", "#    ", "#    "),
    "Q": (" ### ", "#   #", "#   #", "#   #", "# # #", "#  # ", " ## #"),
    "R": ("#### ", "#   #", "#   #", "#### ", "# #  ", "#  # ", "#   #"),
    "S": (" ####", "#    ", "#    ", " ### ", "    #", "    #", "#### "),
    "T": ("#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "),
    "U": ("#   #", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "),
    "V": ("#   #", "#   #", "#   #", "#   #", "#   #", " # # ", "  #  "),
    "W": ("#   #", "#   #", "#   #", "# # #", "# # #", "## ##", "#   #"),
    "X": ("#   #", "#   #", " # # ", "  #  ", " # # ", "#   #", "#   #"),
    "Y": ("#   #", "#   #", " # # ", "  #  ", "  #  ", "  #  ", "  #  "),
    "Z": ("#####", "    #", "   # ", "  #  ", " #   ", "#    ", "#####"),
    "0": (" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "),
    "1": ("  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", "#####"),
    "2": (" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"),
    "3": (" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "),
    "4": ("   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "),
    "5": ("#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "),
    "6": (" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "),
    "7": ("#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "),
    "8": (" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "),
    "9": (" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "),
    " ": ("     ", "     ", "     ", "     ", "     ", "     ", "     "),
    "-": ("     ", "     ", "     ", "#####", "     ", "     ", "     "),
    "_": ("     ", "     ", "     ", "     ", "     ", "     ", "#####"),
    ".": ("     ", "     ", "     ", "     ", "     ", " ##  ", " ##  "),
    ",": ("     ", "     ", "     ", "     ", " ##  ", " ##  ", " #   "),
    ":": ("     ", " ##  ", " ##  ", "     ", " ##  ", " ##  ", "     "),
    "%": ("##  #", "##  #", "   # ", "  #  ", " #   ", "#  ##", "#  ##"),
    "/": ("    #", "    #", "   # ", "  #  ", " #   ", "#    ", "#    "),
    "(": ("  #  ", " #   ", "#    ", "#    ", "#    ", " #   ", "  #  "),
    ")": ("  #  ", "   # ", "    #", "    #", "    #", "   # ", "  #  "),
    "#": (" # # ", " # # ", "#####", " # # ", "#####", " # # ", " # # "),
    "!": ("  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "     ", "  #  "),
    "?": (" ### ", "#   #", "    #", "   # ", "  #  ", "     ", "  #  "),
    "=": ("     ", "     ", "#####", "     ", "#####", "     ", "     "),
    "+": ("     ", "  #  ", "  #  ", "#####", "  #  ", "  #  ", "     "),
    "'": ("  #  ", "  #  ", "     ", "     ", "     ", "     ", "     "),
}
# fmt: on


def _compile() -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for ch, rows in _GLYPHS.items():
        grid = np.zeros((GLYPH_H, GLYPH_W), dtype=bool)
        for y, row in enumerate(rows):
            for x, cell in enumerate(row[:GLYPH_W]):
                grid[y, x] = cell == "#"
        out[ch] = grid
    return out


_COMPILED = _compile()
_UNKNOWN = _COMPILED["?"]


def text_mask(text: str, scale: int = 1, spacing: int = 1) -> np.ndarray:
    """Boolean pixel mask of ``text`` (uppercased; unknown chars -> '?').

    ``scale`` integer-upscales the glyphs; ``spacing`` is the blank
    column count between glyphs (pre-scaling).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if spacing < 0:
        raise ValueError("spacing must be >= 0")
    text = text.upper()
    if not text:
        return np.zeros((GLYPH_H * scale, 0), dtype=bool)
    columns: list[np.ndarray] = []
    gap = np.zeros((GLYPH_H, spacing), dtype=bool)
    for i, ch in enumerate(text):
        if i:
            columns.append(gap)
        columns.append(_COMPILED.get(ch, _UNKNOWN))
    mask = np.concatenate(columns, axis=1)
    if scale > 1:
        mask = np.repeat(np.repeat(mask, scale, axis=0), scale, axis=1)
    return mask


def draw_text(
    fb: Framebuffer,
    x: int,
    y: int,
    text: str,
    color: Color = (0.9, 0.9, 0.9),
    *,
    scale: int = 1,
    alpha: float = 1.0,
) -> None:
    """Blit ``text`` with its top-left corner at pixel (x, y), clipped.

    ``alpha`` blends the glyph pixels over the existing content.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    mask = text_mask(text, scale=scale)
    h, w = mask.shape
    x0, y0 = int(x), int(y)
    x1, y1 = x0 + w, y0 + h
    cx0, cy0 = max(0, x0), max(0, y0)
    cx1, cy1 = min(fb.width, x1), min(fb.height, y1)
    if cx1 <= cx0 or cy1 <= cy0:
        return
    sub = mask[cy0 - y0 : cy1 - y0, cx0 - x0 : cx1 - x0]
    region = fb.data[cy0:cy1, cx0:cx1]
    c = np.asarray(color, dtype=np.float32)
    blend = sub[..., None] * alpha
    region *= 1.0 - blend
    region += blend * c
