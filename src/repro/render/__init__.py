"""Deterministic NumPy software renderer.

Replaces the wall's OpenGL pipeline with an in-memory rasterizer that
exercises the same code paths the paper's application drove: per-eye
sheared-orthographic projection of space-time cubes, per-tile
framebuffers (so tiles render independently — the unit of parallelism
on a real cluster-driven wall and in :mod:`repro.parallel`), group
background colors, brush-highlight overlays, and stereo-pair/anaglyph
composition.

Rendering uses arc-length point splatting with bilinear coverage:
polylines are resampled at sub-pixel spacing and accumulated into the
framebuffer with ``np.add.at`` — one vectorized pass over all segments
of all cells on a tile, no per-segment Python loop (HPC-guide idiom).
"""

from repro.render.color import Color, HIGHLIGHT_COLORS, named_color, time_gradient
from repro.render.framebuffer import Framebuffer
from repro.render.lines import splat_points, splat_polylines
from repro.render.raster import CellRenderer
from repro.render.compose import anaglyph, compose_wall, stereo_pair_side_by_side
from repro.render.pipeline import RenderJob, WallRenderer
from repro.render.image_io import read_ppm, write_npz, write_ppm

__all__ = [
    "Color",
    "HIGHLIGHT_COLORS",
    "named_color",
    "time_gradient",
    "Framebuffer",
    "splat_points",
    "splat_polylines",
    "CellRenderer",
    "compose_wall",
    "anaglyph",
    "stereo_pair_side_by_side",
    "WallRenderer",
    "RenderJob",
    "write_ppm",
    "read_ppm",
    "write_npz",
]
