"""Image output.

PPM (binary P6) for zero-dependency viewable frames and NPZ for exact
float round-trips in tests.  PNG is deliberately absent (no imaging
libraries in the offline environment); PPM opens in any image viewer
and converts losslessly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util.fileio import atomic_write

__all__ = ["write_ppm", "read_ppm", "write_npz", "read_npz"]


def write_ppm(image: np.ndarray, path: str | Path) -> None:
    """Write an (H, W, 3) image (float [0,1] or uint8) as binary PPM.

    Atomic: a frame grabbed mid-render-loop crash is either the old
    complete frame or the new one, never a torn raster.
    """
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {image.shape}")
    if image.dtype != np.uint8:
        image = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    h, w = image.shape[:2]
    payload = np.ascontiguousarray(image).tobytes()

    def _write(fh) -> None:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(payload)

    atomic_write(Path(path), _write)


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary P6 PPM written by :func:`write_ppm`."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise ValueError("not a binary P6 PPM file")
    # header: magic, width, height, maxval, then EXACTLY ONE whitespace
    # byte before the raster.  Tokenize by scanning, never by split():
    # raster bytes may themselves be whitespace values (0x20, 0x0a).
    pos = 2
    tokens: list[int] = []
    while len(tokens) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        if start == pos:
            raise ValueError("truncated PPM header")
        tokens.append(int(data[start:pos]))
    pos += 1  # the single whitespace separating header from raster
    w, h, maxval = tokens
    if maxval != 255:
        raise ValueError(f"only maxval 255 supported, got {maxval}")
    raster = data[pos : pos + w * h * 3]
    if len(raster) < w * h * 3:
        raise ValueError("truncated PPM raster")
    return np.frombuffer(raster, dtype=np.uint8).reshape(h, w, 3).copy()


def write_npz(image: np.ndarray, path: str | Path) -> None:
    """Exact float image dump for tests."""
    np.savez_compressed(path, image=np.asarray(image))


def read_npz(path: str | Path) -> np.ndarray:
    """Load an image written by :func:`write_npz`."""
    with np.load(path) as archive:
        return archive["image"]
