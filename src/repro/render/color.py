"""Colors and palettes.

RGB triples in [0, 1] float.  The highlight palette matches the brush
colors the study used (red for the west-exit query, green for the
seed-drop query, blue in Fig. 3's inset); the trajectory body uses a
cool-to-warm time gradient so even the mono view hints at temporal
order, with stereo depth carrying the exact encoding.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Color", "NAMED_COLORS", "HIGHLIGHT_COLORS", "named_color", "time_gradient"]

#: An RGB triple in [0, 1].
Color = tuple[float, float, float]

NAMED_COLORS: dict[str, Color] = {
    "black": (0.0, 0.0, 0.0),
    "white": (1.0, 1.0, 1.0),
    "red": (0.95, 0.20, 0.15),
    "green": (0.20, 0.85, 0.30),
    "blue": (0.25, 0.45, 0.95),
    "yellow": (0.95, 0.85, 0.20),
    "cyan": (0.20, 0.85, 0.85),
    "magenta": (0.90, 0.25, 0.85),
    "orange": (0.95, 0.55, 0.15),
    "gray": (0.55, 0.55, 0.55),
    "dark": (0.10, 0.10, 0.12),
}

#: Brush colors available on the palette, in keypad order.
HIGHLIGHT_COLORS: tuple[str, ...] = ("red", "green", "blue", "yellow", "cyan", "magenta")


def named_color(name: str) -> Color:
    """Look up a named color; raises KeyError with the valid set."""
    try:
        return NAMED_COLORS[name]
    except KeyError:
        raise KeyError(
            f"unknown color {name!r}; valid: {sorted(NAMED_COLORS)}"
        ) from None


def time_gradient(t01: np.ndarray) -> np.ndarray:
    """(N, 3) cool-to-warm gradient over normalized time in [0, 1].

    Early samples render blue-ish, late samples warm white-orange —
    a simple diverging ramp with monotone luminance so temporal order
    is readable pre-attentively.
    """
    t = np.clip(np.asarray(t01, dtype=np.float64), 0.0, 1.0)
    out = np.empty(t.shape + (3,), dtype=np.float64)
    out[..., 0] = 0.25 + 0.70 * t          # red ramps up
    out[..., 1] = 0.35 + 0.45 * t          # green ramps gently
    out[..., 2] = 0.90 - 0.55 * t          # blue ramps down
    return out


def to_uint8(rgb: np.ndarray) -> np.ndarray:
    """Float [0,1] image -> uint8, rounding and clipping."""
    return (np.clip(rgb, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
