"""Cell rasterization.

A :class:`CellRenderer` draws one small-multiple cell — group
background, arena rim, the trajectory's per-eye projected space-time
polyline with a time gradient, brush-highlighted segments in their
query color, and the translucent brush footprint — into a tile
framebuffer.  All geometry arrives in wall meters and is converted to
tile pixels through the owning :class:`~repro.display.tile.Tile`.

Coverage accumulation happens in *cell-local* scratch buffers (the
cell's pixel bounding box, not the whole tile), which keeps per-cell
cost proportional to cell area — with 36x12 layouts a tile hosts dozens
of cells and tile-sized temporaries would dominate the frame time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.display.coords import CoordinateMapper
from repro.display.tile import Tile
from repro.render.color import Color, named_color, time_gradient
from repro.render.framebuffer import Framebuffer
from repro.render.lines import splat_polylines
from repro.stereo.camera import Eye
from repro.stereo.projection import SpaceTimeProjection
from repro.trajectory.model import Trajectory

__all__ = ["CellStyle", "CellRenderer"]


@dataclass(frozen=True)
class CellStyle:
    """Visual styling of a cell."""

    background: Color = (0.10, 0.10, 0.12)
    rim_color: Color = (0.35, 0.35, 0.40)
    line_width: float = 1.6
    highlight_width: float = 2.4
    brush_alpha: float = 0.25
    background_dim: float = 0.35
    step_px: float = 0.7
    #: Pixels of slack around a cell for content that overhangs it
    #: (stereo shear pushes near-depth samples sideways).
    overdraw_px: int = 8


class CellRenderer:
    """Draws trajectory cells onto one tile's framebuffer."""

    def __init__(
        self,
        tile: Tile,
        projection: SpaceTimeProjection,
        style: CellStyle | None = None,
    ) -> None:
        self.tile = tile
        self.projection = projection
        self.style = style or CellStyle()

    # Helpers ---------------------------------------------------------------
    def _cell_px_rect(
        self, cell_rect: tuple[float, float, float, float], pad: int = 0
    ) -> tuple[int, int, int, int]:
        """Cell wall-rect -> clipped integer tile pixel rect (x0,y0,x1,y1)."""
        corners = np.array(
            [[cell_rect[0], cell_rect[1]], [cell_rect[2], cell_rect[3]]], dtype=np.float64
        )
        px = self.tile.wall_to_pixel(corners)
        x0 = max(0, int(np.floor(px[0, 0])) - pad)
        y0 = max(0, int(np.floor(px[0, 1])) - pad)
        x1 = min(self.tile.px_width, int(np.ceil(px[1, 0])) + pad)
        y1 = min(self.tile.px_height, int(np.ceil(px[1, 1])) + pad)
        return x0, y0, x1, y1

    def _dim(self, color: Color) -> Color:
        k = self.style.background_dim
        return (color[0] * k, color[1] * k, color[2] * k)

    @staticmethod
    def _composite_local(
        region: np.ndarray, coverage: np.ndarray, color: Color | np.ndarray
    ) -> None:
        """Alpha-composite a local coverage map onto a framebuffer view."""
        a = np.clip(coverage, 0.0, 1.0).astype(np.float32)[..., None]
        region *= 1.0 - a
        region += a * np.asarray(color, dtype=np.float32)

    # Drawing ------------------------------------------------------------------
    def draw_background(
        self,
        fb: Framebuffer,
        cell_rect: tuple[float, float, float, float],
        group_color: Color | None,
    ) -> None:
        """Fill the cell with its (dimmed) group color."""
        x0, y0, x1, y1 = self._cell_px_rect(cell_rect)
        color = self._dim(group_color) if group_color is not None else self.style.background
        fb.fill_rect(x0, y0, x1, y1, color)

    def draw_arena_rim(self, fb: Framebuffer, mapper: CoordinateMapper) -> None:
        """The arena outline — the visual reference for brushing."""
        center_wall = mapper.arena_to_wall(np.zeros((1, 2)))[0]
        center_px = self.tile.wall_to_pixel(center_wall[None, :])[0]
        radius_px = mapper.scale * mapper.arena.radius * self.tile.pixels_per_meter[0]
        fb.draw_circle_outline(
            center_px[0], center_px[1], radius_px, self.style.rim_color, thickness=1.0
        )

    def draw_trajectory(
        self,
        fb: Framebuffer,
        traj: Trajectory,
        mapper: CoordinateMapper,
        eye: Eye,
        cell_rect: tuple[float, float, float, float],
    ) -> None:
        """Splat the per-eye projected space-time polyline, time-graded."""
        x0, y0, x1, y1 = self._cell_px_rect(cell_rect, pad=self.style.overdraw_px)
        if x1 <= x0 or y1 <= y0:
            return
        projected_wall = self.projection.project(traj, mapper, eye)
        px = self.tile.wall_to_pixel(projected_wall)
        px -= (x0, y0)
        a = px[:-1]
        b = px[1:]
        tmid = 0.5 * (traj.times[:-1] + traj.times[1:])
        denom = max(traj.duration, 1e-9)
        t01 = (tmid - traj.times[0]) / denom
        ch, cw = y1 - y0, x1 - x0
        coverage = np.zeros((ch, cw), dtype=np.float64)
        rgb = np.zeros((ch, cw, 3), dtype=np.float64)
        splat_polylines(
            coverage,
            a,
            b,
            width=self.style.line_width,
            step=self.style.step_px,
            seg_values=t01,
            rgb_accum=rgb,
            value_to_rgb=time_gradient,
        )
        hit = coverage > 1e-9
        mean_rgb = np.zeros_like(rgb)
        mean_rgb[hit] = rgb[hit] / coverage[hit][:, None]
        self._composite_local(
            fb.data[y0:y1, x0:x1], np.minimum(coverage, 1.0), mean_rgb.astype(np.float32)
        )

    def draw_highlights(
        self,
        fb: Framebuffer,
        traj: Trajectory,
        mapper: CoordinateMapper,
        eye: Eye,
        seg_mask: np.ndarray,
        color_name: str,
        cell_rect: tuple[float, float, float, float],
    ) -> None:
        """Overlay the highlighted segments in the brush color."""
        seg_mask = np.asarray(seg_mask, dtype=bool)
        if seg_mask.shape != (traj.n_samples - 1,):
            raise ValueError(
                f"seg_mask has {seg_mask.shape}, expected ({traj.n_samples - 1},)"
            )
        if not seg_mask.any():
            return
        x0, y0, x1, y1 = self._cell_px_rect(cell_rect, pad=self.style.overdraw_px)
        if x1 <= x0 or y1 <= y0:
            return
        projected_wall = self.projection.project(traj, mapper, eye)
        px = self.tile.wall_to_pixel(projected_wall)
        px -= (x0, y0)
        a = px[:-1][seg_mask]
        b = px[1:][seg_mask]
        coverage = np.zeros((y1 - y0, x1 - x0), dtype=np.float64)
        splat_polylines(
            coverage, a, b, width=self.style.highlight_width, step=self.style.step_px
        )
        self._composite_local(
            fb.data[y0:y1, x0:x1], np.minimum(coverage, 1.0), named_color(color_name)
        )

    def brush_footprint_coverage(
        self,
        mapper: CoordinateMapper,
        cell_rect: tuple[float, float, float, float],
        centers_arena: np.ndarray,
        radii_arena: np.ndarray,
        *,
        stamp_chunk: int = 64,
    ) -> tuple[np.ndarray, tuple[int, int, int, int]]:
        """Coverage map of the brushed region over one cell.

        Computed as a signed distance field on the cell's pixel grid:
        for each pixel, the minimum of (distance-to-stamp - radius)
        over all stamps, converted to coverage with a one-pixel soft
        edge.  Stamps are processed in chunks to bound the
        (pixels x stamps) temporary.

        The map depends only on the cell's pixel size (cells share the
        arena mapping up to translation), so callers cache it per
        (width, height) — see :meth:`WallRenderer.render_job
        <repro.render.pipeline.WallRenderer.render_job>`.
        """
        x0, y0, x1, y1 = self._cell_px_rect(cell_rect)
        if x1 <= x0 or y1 <= y0:
            return np.zeros((0, 0)), (x0, y0, x1, y1)
        # arena coordinates of every pixel center in the cell
        xs = np.arange(x0, x1, dtype=np.float64) + 0.5
        ys = np.arange(y0, y1, dtype=np.float64) + 0.5
        gx, gy = np.meshgrid(xs, ys)
        px = np.stack([gx.ravel(), gy.ravel()], axis=1)
        arena_pts = mapper.wall_to_arena(self.tile.pixel_to_wall(px))
        centers = np.asarray(centers_arena, dtype=np.float64)
        radii = np.asarray(radii_arena, dtype=np.float64)
        signed = np.full(len(arena_pts), np.inf)
        for lo in range(0, len(centers), stamp_chunk):
            c = centers[lo : lo + stamp_chunk]
            r = radii[lo : lo + stamp_chunk]
            d = np.sqrt(
                (arena_pts[:, None, 0] - c[None, :, 0]) ** 2
                + (arena_pts[:, None, 1] - c[None, :, 1]) ** 2
            )
            np.minimum(signed, (d - r[None, :]).min(axis=1), out=signed)
        soft = 1.0 / (mapper.scale * self.tile.pixels_per_meter[0])  # 1 px in arena m
        coverage = np.clip(0.5 - signed / soft, 0.0, 1.0)
        return coverage.reshape(y1 - y0, x1 - x0), (x0, y0, x1, y1)

    def draw_brush_footprint(
        self,
        fb: Framebuffer,
        mapper: CoordinateMapper,
        centers_arena: np.ndarray,
        radii_arena: np.ndarray,
        color_name: str,
        cell_rect: tuple[float, float, float, float],
        *,
        precomputed: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Translucent discs showing where the brush was painted.

        Returns the coverage map so the pipeline can reuse it for the
        other cells of the same pixel size (``precomputed``).
        """
        centers_arena = np.asarray(centers_arena, dtype=np.float64)
        if len(centers_arena) == 0:
            return None
        if precomputed is not None:
            x0, y0, x1, y1 = self._cell_px_rect(cell_rect)
            coverage = precomputed
            ch, cw = coverage.shape
            x1, y1 = x0 + cw, y0 + ch
            if x1 > self.tile.px_width or y1 > self.tile.px_height:
                coverage = coverage[: self.tile.px_height - y0, : self.tile.px_width - x0]
                y1 = min(y1, self.tile.px_height)
                x1 = min(x1, self.tile.px_width)
        else:
            coverage, (x0, y0, x1, y1) = self.brush_footprint_coverage(
                mapper, cell_rect, centers_arena, radii_arena
            )
        if coverage.size == 0:
            return coverage
        self._composite_local(
            fb.data[y0:y1, x0:x1],
            coverage * self.style.brush_alpha,
            named_color(color_name),
        )
        return coverage
