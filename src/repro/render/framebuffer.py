"""Framebuffers.

A :class:`Framebuffer` is an (H, W, 3) float32 RGB image with the
blending operations the renderer needs: rect fills, additive /
alpha-composited splat accumulation, and circle outlines.  Buffers are
preallocated once per tile per eye and reused across frames (guide
idiom: allocate outside the loop, write in place).
"""

from __future__ import annotations

import numpy as np

from repro.render.color import Color

__all__ = ["Framebuffer"]


class Framebuffer:
    """An RGB render target.

    Parameters
    ----------
    width, height:
        Pixel dimensions.
    background:
        Initial clear color.
    """

    def __init__(self, width: int, height: int, background: Color = (0.1, 0.1, 0.12)) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"framebuffer size must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.data = np.empty((self.height, self.width, 3), dtype=np.float32)
        self.clear(background)

    @classmethod
    def from_array(cls, data: np.ndarray) -> "Framebuffer":
        """Adopt existing (H, W, 3) pixel storage without clearing.

        The assembly path for shared-framebuffer renders: the parent
        wraps a slot copy that workers already filled, so re-clearing
        (or re-allocating) would discard the rendered pixels.  The
        array is taken as-is when it is already contiguous float32.
        """
        data = np.asarray(data)
        if data.ndim != 3 or data.shape[2] != 3:
            raise ValueError(f"pixel array must be (H, W, 3), got {data.shape}")
        if data.shape[0] < 1 or data.shape[1] < 1:
            raise ValueError(f"framebuffer size must be positive, got {data.shape}")
        fb = cls.__new__(cls)
        fb.height = int(data.shape[0])
        fb.width = int(data.shape[1])
        fb.data = np.ascontiguousarray(data, dtype=np.float32)
        return fb

    def clear(self, color: Color = (0.0, 0.0, 0.0)) -> None:
        """Fill the whole buffer with one color (in place)."""
        self.data[...] = np.asarray(color, dtype=np.float32)

    def fill_rect(self, x0: int, y0: int, x1: int, y1: int, color: Color) -> None:
        """Fill a pixel rectangle [x0, x1) x [y0, y1), clipped to the buffer."""
        x0 = max(0, int(x0))
        y0 = max(0, int(y0))
        x1 = min(self.width, int(x1))
        y1 = min(self.height, int(y1))
        if x1 > x0 and y1 > y0:
            self.data[y0:y1, x0:x1] = np.asarray(color, dtype=np.float32)

    def composite_coverage(self, coverage: np.ndarray, color: Color) -> None:
        """Alpha-composite a coverage map (H, W) in [0, 1] of one color.

        ``out = (1 - a) * out + a * color`` with a = clipped coverage.
        In-place; no temporaries beyond the broadcast products.
        """
        if coverage.shape != (self.height, self.width):
            raise ValueError(
                f"coverage shape {coverage.shape} != buffer {self.height, self.width}"
            )
        a = np.clip(coverage, 0.0, 1.0).astype(np.float32)[..., None]
        c = np.asarray(color, dtype=np.float32)
        self.data *= 1.0 - a
        self.data += a * c

    def composite_rgb(self, coverage: np.ndarray, rgb: np.ndarray) -> None:
        """Alpha-composite a per-pixel colored layer.

        ``coverage`` is (H, W) in [0, 1]; ``rgb`` is (H, W, 3) premult-
        free color (already averaged per pixel).
        """
        if coverage.shape != (self.height, self.width):
            raise ValueError("coverage shape mismatch")
        if rgb.shape != (self.height, self.width, 3):
            raise ValueError("rgb shape mismatch")
        a = np.clip(coverage, 0.0, 1.0).astype(np.float32)[..., None]
        self.data *= 1.0 - a
        self.data += a * rgb.astype(np.float32)

    def draw_circle_outline(
        self, cx: float, cy: float, radius: float, color: Color, thickness: float = 1.0
    ) -> None:
        """Anti-aliased circle outline (the arena rim in each cell).

        Computed over the circle's bounding box only, with coverage
        falling off linearly over one pixel around the ring.
        """
        if radius <= 0:
            return
        pad = thickness + 1.5
        x0 = max(0, int(np.floor(cx - radius - pad)))
        x1 = min(self.width, int(np.ceil(cx + radius + pad)) + 1)
        y0 = max(0, int(np.floor(cy - radius - pad)))
        y1 = min(self.height, int(np.ceil(cy + radius + pad)) + 1)
        if x1 <= x0 or y1 <= y0:
            return
        ys, xs = np.mgrid[y0:y1, x0:x1]
        d = np.abs(np.hypot(xs - cx, ys - cy) - radius)
        cov = np.clip(1.0 + thickness / 2.0 - d, 0.0, 1.0)
        a = cov.astype(np.float32)[..., None]
        c = np.asarray(color, dtype=np.float32)
        region = self.data[y0:y1, x0:x1]
        region *= 1.0 - a
        region += a * c

    def to_uint8(self) -> np.ndarray:
        """uint8 copy for image output."""
        return (np.clip(self.data, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)

    def copy(self) -> "Framebuffer":
        """Deep copy (independent pixel storage)."""
        fb = Framebuffer(self.width, self.height)
        fb.data[...] = self.data
        return fb
