"""Frame composition.

Assembles per-tile framebuffers into a whole-wall image (with dark
pixels standing in for physical mullions, so composed frames show the
bezel grid exactly as a photograph of the wall would), and combines
per-eye frames into side-by-side stereo pairs or red-cyan anaglyphs
for inspection without polarized glasses.
"""

from __future__ import annotations

import numpy as np

from repro.display.wall import DisplayWall
from repro.render.framebuffer import Framebuffer

__all__ = ["compose_wall", "stereo_pair_side_by_side", "anaglyph"]

#: Color standing in for physical bezel material in composed frames.
BEZEL_COLOR = (0.02, 0.02, 0.02)


def compose_wall(
    wall: DisplayWall,
    tile_buffers: dict[tuple[int, int], Framebuffer],
    *,
    scale: float = 1.0,
) -> np.ndarray:
    """Compose per-tile buffers into one (H, W, 3) float image.

    ``tile_buffers`` maps (col, row) to that panel's framebuffer;
    missing tiles render as black.  ``scale`` < 1 downsamples the
    output by integer striding (for quick previews of ~19 Mpixel
    frames).  Mullions are drawn at their true pixel-equivalent width.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    stride = max(1, int(round(1.0 / scale)))
    # mullion width in (full-res) pixels, using panel pixel density
    mx = int(round(wall.bezel.horizontal_mullion * wall.panel_px_width / wall.panel_width))
    my = int(round(wall.bezel.vertical_mullion * wall.panel_px_height / wall.panel_height))
    full_w = wall.cols * wall.panel_px_width + (wall.cols - 1) * mx
    full_h = wall.rows * wall.panel_px_height + (wall.rows - 1) * my

    out_w = (full_w + stride - 1) // stride
    out_h = (full_h + stride - 1) // stride
    out = np.empty((out_h, out_w, 3), dtype=np.float32)
    out[...] = np.asarray(BEZEL_COLOR, dtype=np.float32)

    for (col, row), fb in tile_buffers.items():
        if not (0 <= col < wall.cols and 0 <= row < wall.rows):
            raise IndexError(f"tile ({col}, {row}) outside {wall.cols}x{wall.rows} wall")
        if (fb.width, fb.height) != (wall.panel_px_width, wall.panel_px_height):
            raise ValueError(
                f"tile ({col}, {row}) buffer is {fb.width}x{fb.height}, panel is "
                f"{wall.panel_px_width}x{wall.panel_px_height}"
            )
        x0 = col * (wall.panel_px_width + mx)
        y0 = row * (wall.panel_px_height + my)
        sub = fb.data[::stride, ::stride]
        # output placement of the strided tile
        ox0 = (x0 + stride - 1) // stride
        oy0 = (y0 + stride - 1) // stride
        oh, ow = sub.shape[:2]
        oh = min(oh, out_h - oy0)
        ow = min(ow, out_w - ox0)
        out[oy0 : oy0 + oh, ox0 : ox0 + ow] = sub[:oh, :ow]
    return out


def stereo_pair_side_by_side(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Concatenate per-eye frames horizontally (L | R)."""
    left = np.asarray(left)
    right = np.asarray(right)
    if left.shape != right.shape:
        raise ValueError(f"eye frames differ: {left.shape} vs {right.shape}")
    return np.concatenate([left, right], axis=1)


def anaglyph(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Red-cyan anaglyph: red from the left eye, green+blue from the right.

    Lets a stereo frame be checked with paper glasses (or just by
    looking at channel offsets) without polarized hardware.
    """
    left = np.asarray(left, dtype=np.float32)
    right = np.asarray(right, dtype=np.float32)
    if left.shape != right.shape:
        raise ValueError(f"eye frames differ: {left.shape} vs {right.shape}")
    # luminance per eye (Rec. 601 weights), then channel assignment
    lw = np.array([0.299, 0.587, 0.114], dtype=np.float32)
    lum_l = left @ lw
    lum_r = right @ lw
    out = np.empty_like(left)
    out[..., 0] = lum_l
    out[..., 1] = lum_r
    out[..., 2] = lum_r
    return out
