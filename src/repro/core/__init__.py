"""The paper's primary contribution: scalable visual queries.

Coordinated brushing (§IV-C.2, Fig. 5): the user paints a region of one
trajectory's arena background; because every small-multiple cell shares
the same arena coordinate system, the brushed region is simultaneously
meaningful in *all* cells, and every displayed trajectory gets its
segments highlighted wherever the insect crossed the brushed area.
Combined with the temporal filter, this turns high-level hypotheses
("east-captured ants exit west", "seed-droppers linger centrally early
on") into single visual queries whose results are pre-attentively
readable across hundreds of trajectories at once.

This subpackage implements the query machinery headlessly and exactly:

* :mod:`brush` / :mod:`canvas` — paintbrush strokes and the shared
  arena-space brush canvas (multiple colors = multiple simultaneous
  queries);
* :mod:`temporal` — the time-window range slider, in absolute seconds
  or per-trajectory fractional form ("the last few seconds of the
  experiment");
* :mod:`spatial_index` — a uniform-grid segment index that keeps brush
  hit-testing sublinear in the segment count (ablation A2);
* :mod:`engine` — the vectorized coordinated-brushing engine over a
  whole dataset;
* :mod:`plan` — the staged query-plan pipeline behind the engine:
  planner, executor, keyed stage cache, and per-stage traces;
* :mod:`result` — per-segment/per-trajectory highlight masks, group
  support fractions, and verdicts;
* :mod:`hypothesis` — declarative hypotheses evaluated as visual
  queries;
* :mod:`session` — the interactive exploration session facade;
* :mod:`multiscale` — cluster-level queries for the §VI-C scaling path.
"""

from repro.core.brush import BrushStroke, stroke_from_path, stroke_from_rect
from repro.core.plan import (
    QueryExecutor,
    QueryPlan,
    QueryPlanner,
    QuerySpec,
    QueryTrace,
    StageCache,
    StageRecord,
)
from repro.core.canvas import BrushCanvas
from repro.core.temporal import TimeWindow
from repro.core.spatial_index import UniformGridIndex
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.result import GroupSupport, QueryResult
from repro.core.hypothesis import Hypothesis, Verdict
from repro.core.session import ExplorationSession, SessionJournal, replay_session
from repro.core.multiscale import MultiscaleExplorer
from repro.core.combine import combine_and, combine_and_not, combine_or
from repro.core.profile import TemporalProfile, temporal_profile
from repro.core.snapshot import SessionSnapshot, restore_session, snapshot_session

__all__ = [
    "QuerySpec",
    "QueryTrace",
    "StageRecord",
    "StageCache",
    "QueryPlan",
    "QueryPlanner",
    "QueryExecutor",
    "MultiscaleExplorer",
    "combine_and",
    "combine_and_not",
    "combine_or",
    "TemporalProfile",
    "temporal_profile",
    "SessionSnapshot",
    "restore_session",
    "snapshot_session",
    "BrushStroke",
    "stroke_from_path",
    "stroke_from_rect",
    "BrushCanvas",
    "TimeWindow",
    "UniformGridIndex",
    "CoordinatedBrushingEngine",
    "QueryResult",
    "GroupSupport",
    "Hypothesis",
    "Verdict",
    "ExplorationSession",
    "SessionJournal",
    "replay_session",
]
