"""The shared brush canvas.

All small-multiple cells show the same arena, so one brush canvas in
arena coordinates serves every cell simultaneously — that is the whole
trick behind coordinated brushing's scalability.  The canvas holds the
accumulated strokes grouped by color (each color is an independent
query region), supports erasing, and computes per-segment hit masks.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.brush import BrushStroke
from repro.trajectory.dataset import PackedSegments
from repro.util.geometry import point_segment_distance

__all__ = ["BrushCanvas"]

# Process-wide canvas ids: stage-cache keys must distinguish two canvas
# instances even when their edit epochs coincide.
_CANVAS_UIDS = itertools.count(1)


class BrushCanvas:
    """Accumulated brush strokes in shared arena space."""

    def __init__(self) -> None:
        self._strokes: list[BrushStroke] = []
        self._version = 0
        self._uid = next(_CANVAS_UIDS)
        self._color_epochs: dict[str, int] = {}

    # Editing -----------------------------------------------------------
    def add(self, stroke: BrushStroke) -> None:
        """Lay down a stroke (bumps the stroke epoch of its color)."""
        if not isinstance(stroke, BrushStroke):
            raise TypeError(f"expected BrushStroke, got {type(stroke).__name__}")
        self._strokes.append(stroke)
        self._version += 1
        self._color_epochs[stroke.color] = self._version

    def clear(self, color: str | None = None) -> None:
        """Erase all strokes, or only those of one color."""
        if color is None:
            touched = {s.color for s in self._strokes}
            self._strokes.clear()
        else:
            touched = {color}
            self._strokes = [s for s in self._strokes if s.color != color]
        self._version += 1
        for c in touched:
            self._color_epochs[c] = self._version

    @property
    def version(self) -> int:
        """Monotone edit counter (query caches key on it)."""
        return self._version

    @property
    def stroke_epoch(self) -> int:
        """The global stroke epoch: bumped by every add/clear.  Stage
        caches key on the per-color epochs; this is the whole-canvas
        invalidation epoch."""
        return self._version

    @property
    def uid(self) -> int:
        """Process-unique canvas id (part of every stage cache key)."""
        return self._uid

    def color_epoch(self, color: str) -> int:
        """Stroke epoch of one color: last edit that touched it (0 =
        never touched).  Strokes of *other* colors leave it unchanged,
        which is what lets a query for ``color`` keep its cached
        spatial stages while someone paints in a different color."""
        return self._color_epochs.get(color, 0)

    @property
    def n_strokes(self) -> int:
        return len(self._strokes)

    def strokes(self, color: str | None = None) -> list[BrushStroke]:
        """Strokes on the canvas, optionally restricted to one color."""
        if color is None:
            return list(self._strokes)
        return [s for s in self._strokes if s.color == color]

    def colors(self) -> list[str]:
        """Colors present, in first-use order."""
        seen: list[str] = []
        for s in self._strokes:
            if s.color not in seen:
                seen.append(s.color)
        return seen

    def is_empty(self) -> bool:
        """True when no strokes are painted."""
        return not self._strokes

    # Hit testing ---------------------------------------------------------
    def stamps_of(self, color: str) -> tuple[np.ndarray, np.ndarray]:
        """All stamp (centers, radii) of one color, concatenated.

        Radii are per-stamp because strokes of the same color may use
        different brush sizes.
        """
        strokes = self.strokes(color)
        if not strokes:
            return np.empty((0, 2)), np.empty(0)
        centers = np.concatenate([s.centers for s in strokes], axis=0)
        radii = np.concatenate(
            [np.full(s.n_stamps, s.radius, dtype=np.float64) for s in strokes]
        )
        return centers, radii

    def segment_hit_mask(
        self,
        color: str,
        a: np.ndarray,
        b: np.ndarray,
        *,
        chunk: int = 262_144,
    ) -> np.ndarray:
        """Mask of segments a[i]->b[i] touching the color's brushed region.

        Vectorized as (segments x stamps) distance blocks; ``chunk``
        bounds the temporary to ~chunk*K floats so 100k-trace datasets
        stay within memory (HPC-guide: bound your broadcast temporaries).
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        centers, radii = self.stamps_of(color)
        n = len(a)
        out = np.zeros(n, dtype=bool)
        if len(centers) == 0 or n == 0:
            return out
        k = len(centers)
        block = max(1, chunk // max(1, k))
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            # (B, K) distances from each stamp center to each segment
            d = point_segment_distance(
                centers[None, :, :], a[lo:hi, None, :], b[lo:hi, None, :]
            )
            out[lo:hi] = (d <= radii[None, :]).any(axis=1)
        return out

    def packed_hit_mask(self, color: str, packed: PackedSegments, *, candidates: np.ndarray | None = None) -> np.ndarray:
        """Hit mask over a dataset's packed segments.

        With ``candidates`` (int row indices from a spatial index) only
        those rows are tested; the returned mask is still full-length.
        """
        if candidates is None:
            return self.segment_hit_mask(color, packed.a, packed.b)
        out = np.zeros(packed.n_segments, dtype=bool)
        if len(candidates) == 0:
            return out
        sub = self.segment_hit_mask(color, packed.a[candidates], packed.b[candidates])
        out[candidates] = sub
        return out

    def bounding_box(self, color: str | None = None) -> tuple[np.ndarray, np.ndarray] | None:
        """(lo, hi) bounds of the brushed region (one color or all)."""
        strokes = self.strokes(color)
        if not strokes:
            return None
        los, his = zip(*(s.bounding_box() for s in strokes))
        return np.min(los, axis=0), np.max(his, axis=0)
