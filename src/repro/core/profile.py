"""Temporal query profiles.

The range slider gives the researcher one time window at a time; the
profile sweeps it: evaluate the same brush under a sliding fractional
window and return support as a function of window position.  This is
the quantitative form of "scrubbing the slider and watching the
highlight" — it shows *when* a spatial pattern occurs (e.g. west-edge
occupancy concentrates at the end of each run for east-captured ants),
and it makes a natural ablation/analysis target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.temporal import TimeWindow

__all__ = ["TemporalProfile", "temporal_profile"]


@dataclass(frozen=True)
class TemporalProfile:
    """Support as a function of (fractional) window position.

    Attributes
    ----------
    centers:
        (B,) window-center fractions in [0, 1].
    support:
        (B,) overall highlighted fraction per window.
    group_support:
        Optional {group: (B,) support series}.
    window_width:
        The sliding window's fractional width.
    """

    centers: np.ndarray
    support: np.ndarray
    group_support: dict[str, np.ndarray]
    window_width: float

    @property
    def n_bins(self) -> int:
        return len(self.centers)

    def peak(self) -> tuple[float, float]:
        """(center, support) of the maximum-support window."""
        i = int(np.argmax(self.support))
        return float(self.centers[i]), float(self.support[i])

    def peak_of(self, group: str) -> tuple[float, float]:
        """Peak window of one group's series."""
        series = self.group_support[group]
        i = int(np.argmax(series))
        return float(self.centers[i]), float(series[i])


def temporal_profile(
    engine: CoordinatedBrushingEngine,
    canvas: BrushCanvas,
    color: str = "red",
    *,
    n_bins: int = 10,
    window_width: float | None = None,
    assignment=None,
) -> TemporalProfile:
    """Sweep a fractional window across [0, 1] and record support.

    ``window_width`` defaults to one bin (non-overlapping windows);
    wider values produce overlapping, smoothed profiles.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    width = 1.0 / n_bins if window_width is None else float(window_width)
    if not 0.0 < width <= 1.0:
        raise ValueError("window_width must be in (0, 1]")
    centers = (np.arange(n_bins) + 0.5) / n_bins
    support = np.empty(n_bins)
    group_series: dict[str, list[float]] = {}
    for i, c in enumerate(centers):
        lo = max(0.0, c - width / 2.0)
        hi = min(1.0, c + width / 2.0)
        res = engine.query(
            canvas, color, window=TimeWindow.fraction(lo, hi), assignment=assignment
        )
        support[i] = res.overall_support
        for name, gs in res.group_support.items():
            group_series.setdefault(name, []).append(gs.support)
    return TemporalProfile(
        centers=centers,
        support=support,
        group_support={k: np.asarray(v) for k, v in group_series.items()},
        window_width=width,
    )
