"""Visual query results.

A :class:`QueryResult` is what one coordinated-brushing pass produces:
per-segment highlight masks (one per brush color), their per-trajectory
aggregation (is any segment of trajectory *i* highlighted? how much
highlighted time?), and — when a group scheme is active — per-group
support fractions, the quantity the researcher reads pre-attentively
("a concentration of red highlight in the 'east' group").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.resilience.health import DegradationReport

if TYPE_CHECKING:  # imported lazily to avoid a core ↔ plan cycle
    from repro.core.plan.trace import QueryTrace

__all__ = ["GroupSupport", "QueryResult"]


@dataclass(frozen=True)
class GroupSupport:
    """Highlight support within one trajectory group.

    Attributes
    ----------
    group:
        Group name.
    n_displayed:
        Displayed trajectories belonging to the group.
    n_highlighted:
        Of those, how many have at least one highlighted segment.
    """

    group: str
    n_displayed: int
    n_highlighted: int

    @property
    def support(self) -> float:
        """Fraction highlighted; 0 for empty groups."""
        if self.n_displayed == 0:
            return 0.0
        return self.n_highlighted / self.n_displayed

    @property
    def majority(self) -> bool:
        """The paper's informal criterion: highlight in the majority."""
        return self.n_displayed > 0 and self.n_highlighted * 2 > self.n_displayed

    def __str__(self) -> str:
        return f"{self.group}: {self.n_highlighted}/{self.n_displayed} ({self.support:.0%})"


@dataclass(frozen=True)
class QueryResult:
    """Result of one coordinated-brushing query over a dataset.

    Attributes
    ----------
    color:
        The brush color this result answers for.
    segment_mask:
        (S,) mask over the dataset's packed segments: highlighted
        (touches the brushed region AND inside the time window).
    traj_mask:
        (T,) mask over the dataset: trajectory has >= 1 highlighted
        segment.
    traj_highlight_time:
        (T,) float: highlighted seconds per trajectory.
    displayed:
        (T,) mask of trajectories currently on screen (all True when
        the query ran without a layout restriction).
    group_support:
        Per-group aggregation, when a group scheme was supplied.
    elapsed_s:
        Wall-clock query latency (for E5/A2).  Covers plan **and**
        execute consistently: when a trace is attached this equals
        ``trace.total_s`` (= ``plan_s + execute_s``), which in turn
        bounds the per-stage sum ``trace.stage_total_s`` from above.
    trace:
        Per-stage observability record of the planned pipeline (wall
        time, cardinalities, cache hit/miss per stage); ``None`` for
        results assembled outside the engine (e.g. combinators).
    degraded:
        True when the query completed on a slower rung of the
        degradation ladder (e.g. the spatial index failed and the
        engine fell back to the brute-force scan).  The masks are
        identical to the healthy path either way.
    degradation:
        The ledger of what failed and what the engine did about it
        (None on a fully healthy query).
    """

    color: str
    segment_mask: np.ndarray
    traj_mask: np.ndarray
    traj_highlight_time: np.ndarray
    displayed: np.ndarray
    group_support: dict[str, GroupSupport] = field(default_factory=dict)
    elapsed_s: float = 0.0
    degraded: bool = False
    degradation: DegradationReport | None = None
    trace: "QueryTrace | None" = None

    def __repr__(self) -> str:
        """Journal-readable one-liner: hits, latency, degradation, cache."""
        parts = [
            f"QueryResult[{self.color}]",
            f"{self.n_highlighted}/{self.n_displayed} hi ({self.overall_support:.0%})",
            f"{self.elapsed_s * 1e3:.2f}ms",
        ]
        if self.trace is not None:
            parts.append(
                f"stages={len(self.trace.stages)}"
                f"({self.trace.cache_hits} hit/{self.trace.cache_misses} miss)"
            )
        if self.degraded:
            kinds = (
                ",".join(sorted({e.kind for e in self.degradation.events}))
                if self.degradation is not None
                else "?"
            )
            parts.append(f"degraded[{kinds}]")
        return f"<{' '.join(parts)}>"

    @property
    def n_highlighted(self) -> int:
        """Displayed trajectories with any highlight."""
        return int((self.traj_mask & self.displayed).sum())

    @property
    def n_displayed(self) -> int:
        return int(self.displayed.sum())

    @property
    def overall_support(self) -> float:
        """Highlighted fraction of all displayed trajectories."""
        n = self.n_displayed
        return self.n_highlighted / n if n else 0.0

    def highlighted_indices(self) -> np.ndarray:
        """Dataset indices of highlighted displayed trajectories."""
        return np.flatnonzero(self.traj_mask & self.displayed)

    def support_of(self, group: str) -> float:
        """Support fraction within one group (KeyError if unknown)."""
        return self.group_support[group].support

    def summary(self) -> str:
        """One-line human-readable result, group breakdown included."""
        parts = [
            f"[{self.color}] {self.n_highlighted}/{self.n_displayed} "
            f"displayed trajectories highlighted ({self.overall_support:.0%})"
        ]
        for gs in self.group_support.values():
            parts.append(str(gs))
        return "; ".join(parts)
