"""The keyed stage cache, plain and shard-striped.

An LRU mapping stage cache keys to stage outputs.  Invalidation is
epoch-based and *explicit*: every key embeds the epochs its value
depends on (dataset epoch, canvas stroke epoch, window key), so a
bumped epoch makes stale entries unreachable immediately — they are
then either evicted lazily by the LRU or eagerly via
:meth:`StageCache.invalidate`.

Stage outputs are numpy arrays marked read-only by the executor before
insertion, so serving the same array to multiple queries is safe.

Two implementations share one interface:

* :class:`StageCache` — the single-user building block.  Not thread
  safe (an LRU lookup is a read-*modify* operation: ``move_to_end``).
* :class:`ShardedStageCache` — N independent :class:`StageCache`
  shards, each behind its own micro-mutex, selected by key hash.  This
  is what the multi-tenant service hands its shared engines: concurrent
  sessions' stage lookups stripe across shards instead of contending on
  one lock (and *never* touch the service lock — the critical section
  is a handful of dict operations, bounded and allocation-light).  A
  given key always maps to the same shard, so hit/miss/eviction
  semantics per key are identical to a single cache of the same total
  capacity.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

__all__ = ["StageCache", "ShardedStageCache", "CacheStats"]

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class StageCache:
    """LRU cache of stage outputs keyed on epoch-embedding tuples.

    Parameters
    ----------
    capacity:
        Maximum number of retained stage outputs; least recently used
        entries are evicted beyond it.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> Any:
        """Look up a stage output; counts a hit/miss and refreshes
        recency.  Returns the sentinel-free value or ``None``-safe
        :data:`MISS` via :meth:`lookup` semantics — callers should use
        :meth:`lookup` when ``None`` is a legal cached value."""
        value, found = self.lookup(key)
        return value if found else None

    def lookup(self, key: tuple) -> tuple[Any, bool]:
        """(value, found) lookup that distinguishes a cached ``None``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return None, False
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value, True

    def put(self, key: tuple, value: Any) -> None:
        """Insert (or refresh) a stage output, evicting LRU overflow."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # Invalidation -------------------------------------------------------
    def invalidate(
        self,
        *,
        dataset_epoch: int | None = None,
        canvas_epoch: int | None = None,
        window_key: tuple | None = None,
    ) -> int:
        """Eagerly drop entries whose key embeds a *different* epoch.

        Keys are tuples of the form ``(stage, dataset_epoch, ...)``
        built by the planner; each criterion drops every entry whose
        embedded value for that dimension differs from the one given
        (i.e. "keep only the current epoch").  Returns the number of
        entries dropped.  Purely an eager complement to the lazy
        epoch-in-key scheme — correctness never depends on calling it.
        """
        drop: list[tuple] = []
        for key in self._entries:
            meta = _key_meta(key)
            if dataset_epoch is not None and meta.get("dataset_epoch") != dataset_epoch:
                drop.append(key)
            elif canvas_epoch is not None and meta.get("canvas_epoch", canvas_epoch) != canvas_epoch:
                drop.append(key)
            elif window_key is not None and meta.get("window_key", window_key) != window_key:
                drop.append(key)
        for key in drop:
            del self._entries[key]
        self.stats.invalidations += len(drop)
        return len(drop)

    def clear(self) -> None:
        """Drop everything (counts as invalidations)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def keys(self) -> list[tuple]:
        """Current keys, LRU-first (introspection/tests)."""
        return list(self._entries)


class ShardedStageCache:
    """A thread-safe stage cache striped over N locked shards.

    Parameters
    ----------
    capacity:
        Total retained stage outputs across all shards (each shard gets
        ``ceil(capacity / shards)``, so the aggregate capacity is at
        least ``capacity``).
    shards:
        Number of independent shards.  More shards, less lock
        contention; 8 covers the 64-session target comfortably because
        the critical section is a few dict operations.

    The interface is a superset drop-in for :class:`StageCache`
    (``lookup``/``put``/``get``/``invalidate``/``clear``/``keys``/
    ``stats``/``len``/``in``); the executor and engine never know which
    one they hold.  Shard selection is ``hash(key) % shards`` — stage
    keys are hashable planner tuples — so one key always lands on one
    shard and per-key LRU/hit/miss behavior matches the single cache.
    Per-shard :class:`CacheStats` are merged on read; counters are
    mutated under the owning shard's lock, so totals are exact.
    """

    def __init__(self, capacity: int = 128, *, shards: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.capacity = int(capacity)
        per_shard = -(-int(capacity) // int(shards))  # ceil division
        self._shards = tuple(StageCache(per_shard) for _ in range(shards))
        self._locks = tuple(threading.Lock() for _ in range(shards))

    @property
    def n_shards(self) -> int:
        """Number of stripe shards."""
        return len(self._shards)

    def _shard_of(self, key: tuple) -> int:
        return hash(key) % len(self._shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def __contains__(self, key: tuple) -> bool:
        i = self._shard_of(key)
        with self._locks[i]:
            return key in self._shards[i]

    def get(self, key: tuple) -> Any:
        """:meth:`StageCache.get` against the owning shard."""
        value, found = self.lookup(key)
        return value if found else None

    def lookup(self, key: tuple) -> tuple[Any, bool]:
        """(value, found) lookup under the owning shard's lock only."""
        i = self._shard_of(key)
        with self._locks[i]:
            return self._shards[i].lookup(key)

    def put(self, key: tuple, value: Any) -> None:
        """Insert under the owning shard's lock; LRU-evicts per shard."""
        i = self._shard_of(key)
        with self._locks[i]:
            self._shards[i].put(key, value)

    # Invalidation -------------------------------------------------------
    def invalidate(self, **criteria: Any) -> int:
        """Eagerly drop mismatching-epoch entries across every shard."""
        return sum(
            self._locked_shard_call(i, "invalidate", **criteria)
            for i in range(len(self._shards))
        )

    def clear(self) -> None:
        """Drop everything in every shard."""
        for i in range(len(self._shards)):
            self._locked_shard_call(i, "clear")

    def keys(self) -> list[tuple]:
        """All current keys, shard-major then LRU-first within a shard."""
        out: list[tuple] = []
        for i in range(len(self._shards)):
            with self._locks[i]:
                out.extend(self._shards[i].keys())
        return out

    def _locked_shard_call(self, i: int, method: str, **kwargs: Any) -> Any:
        with self._locks[i]:
            return getattr(self._shards[i], method)(**kwargs)

    @property
    def stats(self) -> CacheStats:
        """Exact merged counters across shards (a fresh value object —
        mutating it does not write back)."""
        merged = CacheStats()
        for i in range(len(self._shards)):
            with self._locks[i]:
                s = self._shards[i].stats
                merged.hits += s.hits
                merged.misses += s.misses
                merged.evictions += s.evictions
                merged.invalidations += s.invalidations
        return merged


def _key_meta(key: tuple) -> dict:
    """Decode the epoch metadata the planner embeds in a cache key.

    Planner keys are ``(stage, ("ds", e), ("cv", e)?, ("win", k)?,
    ...)`` — tagged pairs after the stage name; unrecognized elements
    are ignored so key shapes can evolve per stage.
    """
    meta: dict = {}
    tag_names = {"ds": "dataset_epoch", "cv": "canvas_epoch", "win": "window_key"}
    for element in key[1:]:
        if isinstance(element, tuple) and len(element) == 2 and element[0] in tag_names:
            meta[tag_names[element[0]]] = element[1]
    return meta
