"""The query planner.

Turns a :class:`~repro.core.plan.spec.QuerySpec` into a
:class:`QueryPlan`: a topologically ordered DAG of named stages

    temporal_mask → spatial_candidates → brush_hit → combine
                                  → aggregate → group_support

with one cache key per cacheable stage.  The planner makes the routing
decision the old monolith made inline — index vs brute-force per the
degradation ladder, trivial plan for an empty brush — so the executor
stays a mechanical "run stages through the cache" loop.

Cache-key construction is the heart of the incremental behaviour.
Keys embed exactly the epochs a stage's output depends on, as tagged
pairs (``("ds", dataset_epoch)``, ``("cv", color_epoch)``,
``("win", window_key)``):

* ``temporal_mask`` depends on the dataset and window only — a
  color-only change reuses it outright;
* ``spatial_candidates`` / ``brush_hit`` depend on the dataset and the
  *color's own* stroke epoch, never the window — a slider-only change
  reuses the (expensive) capsule hit-test and re-runs just
  ``temporal_mask → combine → aggregate``;
* ``combine`` / ``aggregate`` / ``group_support`` depend on both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.plan.spec import QuerySpec

__all__ = ["PlannedStage", "QueryPlan", "QueryPlanner", "STAGE_ORDER"]

STAGE_ORDER = (
    "temporal_mask",
    "spatial_candidates",
    "brush_hit",
    "combine",
    "aggregate",
    "group_support",
)


@dataclass(frozen=True)
class PlannedStage:
    """One node of the plan DAG.

    Attributes
    ----------
    name:
        Stage name (one of :data:`STAGE_ORDER`).
    key:
        Stage cache key (``None`` = never cached, e.g. group support
        for an anonymous assignment).
    deps:
        Names of stages whose outputs this stage consumes; always
        earlier in the plan (validated at construction).
    """

    name: str
    key: tuple | None
    deps: tuple[str, ...] = ()


@dataclass(frozen=True)
class QueryPlan:
    """An ordered, validated stage DAG for one spec."""

    spec: QuerySpec
    stages: tuple[PlannedStage, ...]
    strategy: str
    plan_s: float

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for stage in self.stages:
            if stage.name not in STAGE_ORDER:
                raise ValueError(f"unknown stage {stage.name!r}")
            missing = [d for d in stage.deps if d not in seen]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} depends on {missing} before they run"
                )
            seen.add(stage.name)

    def stage_names(self) -> tuple[str, ...]:
        """Planned stage names in execution order."""
        return tuple(s.name for s in self.stages)

    def __contains__(self, name: str) -> bool:
        return any(s.name == name for s in self.stages)


class QueryPlanner:
    """Builds :class:`QueryPlan` objects from specs.

    Parameters
    ----------
    index_token:
        Identity of the engine's spatial index build (``None`` when no
        index is available); embedded in spatial keys so a rebuilt
        index invalidates cached candidate sets.
    """

    def __init__(self, index_token: tuple | None = None) -> None:
        self.index_token = index_token

    def plan(self, spec: QuerySpec, *, index_token: tuple | None = None) -> QueryPlan:
        """Build the stage plan for one spec.

        ``index_token`` overrides the constructor's (the engine passes
        the *current* index identity so index swaps re-plan correctly).
        """
        t0 = time.perf_counter()
        token = index_token if index_token is not None else self.index_token
        # store-attached datasets carry the store's identity inside the
        # dataset tag: epochs of two datasets attached from different
        # shared stores may coincide, the (uid, epoch) store token never
        # does — the tag stays a 2-tuple so epoch-based invalidation
        # keeps decoding it
        ds = ("ds", spec.dataset_epoch if spec.store_token is None
              else (spec.dataset_epoch, spec.store_token))
        cv = ("cv", (spec.canvas_uid, spec.color_epoch))
        win = ("win", spec.window_key)

        if spec.n_stamps == 0:
            strategy = "empty-brush"
        elif spec.use_index and token is not None:
            strategy = "indexed"
        else:
            strategy = "brute-force"

        stages: list[PlannedStage] = [
            PlannedStage("temporal_mask", ("temporal_mask", ds, win))
        ]
        hit_deps: tuple[str, ...] = ()
        if strategy == "indexed":
            stages.append(
                PlannedStage(
                    "spatial_candidates",
                    ("spatial_candidates", ds, cv, spec.color, token),
                )
            )
            hit_deps = ("spatial_candidates",)
        stages.append(
            PlannedStage(
                "brush_hit",
                ("brush_hit", ds, cv, spec.color, strategy),
                deps=hit_deps,
            )
        )
        stages.append(
            PlannedStage(
                "combine",
                ("combine", ds, cv, win, spec.color, strategy),
                deps=("temporal_mask", "brush_hit"),
            )
        )
        stages.append(
            PlannedStage(
                "aggregate",
                ("aggregate", ds, cv, win, spec.color, strategy),
                deps=("combine",),
            )
        )
        if spec.assignment_id is not None:
            stages.append(
                PlannedStage(
                    "group_support",
                    (
                        "group_support",
                        ds,
                        cv,
                        win,
                        spec.color,
                        strategy,
                        spec.assignment_id,
                    ),
                    deps=("aggregate",),
                )
            )
        return QueryPlan(
            spec=spec,
            stages=tuple(stages),
            strategy=strategy,
            plan_s=time.perf_counter() - t0,
        )
