"""The query planner.

Turns a :class:`~repro.core.plan.spec.QuerySpec` into a
:class:`QueryPlan`: a topologically ordered DAG of named stages.  The
legacy per-segment route is

    temporal_mask → spatial_candidates → brush_hit → combine
                                  → aggregate → group_support

and the aggregate-first route (when the engine carries a
:class:`~repro.core.aggregate.SummaryPyramid`) is

    agg_temporal → agg_spatial → agg_brush → classify → drilldown
                                  → aggregate → group_support

where the ``agg_*`` stages tri-state supernodes (all-in / all-out /
inconclusive) from summary statistics and ``drilldown`` assembles the
final segment mask, running the exact per-segment kernels only over
inconclusive cells.  Both routes produce bit-identical masks; the
planner makes the routing decision the old monolith made inline —
index vs brute-force per the degradation ladder, trivial plan for an
empty brush, aggregate-first when a pyramid is available — so the
executor stays a mechanical "run stages through the cache" loop.

Cache-key construction is the heart of the incremental behaviour.
Keys embed exactly the epochs a stage's output depends on, as tagged
pairs (``("ds", dataset_epoch)``, ``("cv", color_epoch)``,
``("win", window_key)``):

* ``temporal_mask`` / ``agg_temporal`` depend on the dataset and
  window only — a color-only change reuses them outright;
* ``spatial_candidates`` / ``brush_hit`` / ``agg_spatial`` /
  ``agg_brush`` depend on the dataset and the *color's own* stroke
  epoch, never the window — a slider-only change reuses the
  (expensive) capsule hit-tests and re-runs just the cheap temporal
  stages (``agg_temporal → classify → drilldown → aggregate`` on the
  aggregate route);
* ``combine`` / ``classify`` / ``drilldown`` / ``aggregate`` /
  ``group_support`` depend on both.

Aggregate-route keys additionally embed the pyramid's build token so a
republished pyramid invalidates every classification derived from it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.plan.spec import QuerySpec

__all__ = ["PlannedStage", "QueryPlan", "QueryPlanner", "STAGE_ORDER"]

STAGE_ORDER = (
    "temporal_mask",
    "spatial_candidates",
    "brush_hit",
    "agg_temporal",
    "agg_spatial",
    "agg_brush",
    "classify",
    "drilldown",
    "combine",
    "aggregate",
    "group_support",
)


@dataclass(frozen=True)
class PlannedStage:
    """One node of the plan DAG.

    Attributes
    ----------
    name:
        Stage name (one of :data:`STAGE_ORDER`).
    key:
        Stage cache key (``None`` = never cached, e.g. group support
        for an anonymous assignment).
    deps:
        Names of stages whose outputs this stage consumes; always
        earlier in the plan (validated at construction).
    """

    name: str
    key: tuple | None
    deps: tuple[str, ...] = ()


@dataclass(frozen=True)
class QueryPlan:
    """An ordered, validated stage DAG for one spec."""

    spec: QuerySpec
    stages: tuple[PlannedStage, ...]
    strategy: str
    plan_s: float

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for stage in self.stages:
            if stage.name not in STAGE_ORDER:
                raise ValueError(f"unknown stage {stage.name!r}")
            missing = [d for d in stage.deps if d not in seen]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} depends on {missing} before they run"
                )
            seen.add(stage.name)

    def stage_names(self) -> tuple[str, ...]:
        """Planned stage names in execution order."""
        return tuple(s.name for s in self.stages)

    @property
    def mask_stage(self) -> str:
        """Name of the stage producing the final segment mask.

        ``drilldown`` on the aggregate route, ``combine`` otherwise —
        downstream consumers (the ``aggregate`` reduction, the engine's
        result assembly) read this instead of hard-coding the route.
        """
        return "drilldown" if "drilldown" in self else "combine"

    def __contains__(self, name: str) -> bool:
        return any(s.name == name for s in self.stages)


class QueryPlanner:
    """Builds :class:`QueryPlan` objects from specs.

    Parameters
    ----------
    index_token:
        Identity of the engine's spatial index build (``None`` when no
        index is available); embedded in spatial keys so a rebuilt
        index invalidates cached candidate sets.
    pyramid_token:
        Identity of the engine's summary-pyramid build (``None`` when
        no pyramid is available); embedded in every aggregate-route key
        so a republished pyramid invalidates cached classifications.
    """

    def __init__(
        self,
        index_token: tuple | None = None,
        pyramid_token: tuple | None = None,
    ) -> None:
        self.index_token = index_token
        self.pyramid_token = pyramid_token

    def plan(
        self,
        spec: QuerySpec,
        *,
        index_token: tuple | None = None,
        pyramid_token: tuple | None = None,
    ) -> QueryPlan:
        """Build the stage plan for one spec.

        ``index_token`` / ``pyramid_token`` override the constructor's
        (the engine passes the *current* identities so index or pyramid
        swaps re-plan correctly).
        """
        t0 = time.perf_counter()
        token = index_token if index_token is not None else self.index_token
        pyr = (
            pyramid_token if pyramid_token is not None else self.pyramid_token
        )
        # store-attached datasets carry the store's identity inside the
        # dataset tag: epochs of two datasets attached from different
        # shared stores may coincide, the (uid, epoch) store token never
        # does — the tag stays a 2-tuple so epoch-based invalidation
        # keeps decoding it
        ds = ("ds", spec.dataset_epoch if spec.store_token is None
              else (spec.dataset_epoch, spec.store_token))
        cv = ("cv", (spec.canvas_uid, spec.color_epoch))
        win = ("win", spec.window_key)

        if spec.n_stamps == 0:
            strategy = "empty-brush"
        elif spec.use_aggregate and pyr is not None:
            strategy = "aggregate"
        elif spec.use_index and token is not None:
            strategy = "indexed"
        else:
            strategy = "brute-force"

        stages: list[PlannedStage] = []
        if strategy == "aggregate":
            mask_deps: tuple[str, ...]
            stages.append(
                PlannedStage("agg_temporal", ("agg_temporal", ds, win, pyr))
            )
            stages.append(
                PlannedStage(
                    "agg_spatial", ("agg_spatial", ds, cv, spec.color, pyr)
                )
            )
            stages.append(
                PlannedStage(
                    "agg_brush",
                    ("agg_brush", ds, cv, spec.color, pyr),
                    deps=("agg_spatial",),
                )
            )
            stages.append(
                PlannedStage(
                    "classify",
                    ("classify", ds, cv, win, spec.color, pyr),
                    deps=("agg_temporal", "agg_spatial"),
                )
            )
            stages.append(
                PlannedStage(
                    "drilldown",
                    ("drilldown", ds, cv, win, spec.color, pyr),
                    deps=("agg_temporal", "agg_brush", "classify"),
                )
            )
            mask_deps = ("drilldown",)
        else:
            stages.append(
                PlannedStage("temporal_mask", ("temporal_mask", ds, win))
            )
            hit_deps: tuple[str, ...] = ()
            if strategy == "indexed":
                stages.append(
                    PlannedStage(
                        "spatial_candidates",
                        ("spatial_candidates", ds, cv, spec.color, token),
                    )
                )
                hit_deps = ("spatial_candidates",)
            stages.append(
                PlannedStage(
                    "brush_hit",
                    ("brush_hit", ds, cv, spec.color, strategy),
                    deps=hit_deps,
                )
            )
            stages.append(
                PlannedStage(
                    "combine",
                    ("combine", ds, cv, win, spec.color, strategy),
                    deps=("temporal_mask", "brush_hit"),
                )
            )
            mask_deps = ("combine",)
        stages.append(
            PlannedStage(
                "aggregate",
                ("aggregate", ds, cv, win, spec.color, strategy),
                deps=mask_deps,
            )
        )
        if spec.assignment_id is not None:
            stages.append(
                PlannedStage(
                    "group_support",
                    (
                        "group_support",
                        ds,
                        cv,
                        win,
                        spec.color,
                        strategy,
                        spec.assignment_id,
                    ),
                    deps=("aggregate",),
                )
            )
        return QueryPlan(
            spec=spec,
            stages=tuple(stages),
            strategy=strategy,
            plan_s=time.perf_counter() - t0,
        )
