"""Query identity.

A :class:`QuerySpec` captures everything that determines a query's
answer — and nothing that doesn't.  Two queries with equal specs are
the same query, which is precisely what makes stage outputs safely
memoizable: every cache key the planner derives embeds the relevant
slice of the spec, so a stale entry is unreachable by construction
(epoch bumps change the key rather than flushing the cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.canvas import BrushCanvas
from repro.core.temporal import TimeWindow
from repro.layout.cells import CellAssignment
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["QuerySpec", "assignment_token"]


def assignment_token(assignment: CellAssignment | None) -> int | None:
    """Stable hashable identity of a layout assignment.

    Derived from the content that affects group support (which
    trajectory sits in which cell, which group owns each cell, the
    group names), not object identity — re-deriving the same layout
    yields the same token and therefore the same cache keys.
    """
    if assignment is None:
        return None
    names: tuple[str, ...] = ()
    if assignment.groups is not None:
        names = tuple(spec.name for spec in assignment.groups)
    return hash(
        (
            assignment.cell_to_traj.tobytes(),
            assignment.group_of_cell.tobytes(),
            names,
        )
    )


@dataclass(frozen=True)
class QuerySpec:
    """Immutable, hashable identity of one coordinated-brushing query.

    Attributes
    ----------
    color:
        The brush color under evaluation.
    window_key:
        Canonical :meth:`TimeWindow.cache_key` of the temporal filter.
    dataset_epoch:
        The dataset's mutation epoch at query time; any append bumps
        it, invalidating every stage computed over the old segments.
    canvas_uid:
        Unique id of the canvas instance — two different canvases that
        happen to share an epoch must never collide on cache keys.
    canvas_epoch:
        The canvas's global stroke epoch (any stroke/erase bumps it).
    color_epoch:
        The stroke epoch of ``color`` alone — strokes of *other*
        colors leave it unchanged, so a green stroke does not evict
        red's spatial stages.
    assignment_id:
        :func:`assignment_token` of the layout restriction (None when
        querying without a layout).
    use_index:
        Whether the plan may route through the spatial index.
    n_stamps:
        Stamp count of ``color`` on the canvas (0 = empty brush, which
        plans to a trivial all-false hit mask).
    store_token:
        Identity of the shared-memory store the dataset is attached to
        (``None`` for plain in-process datasets).  Embedded in every
        stage key so two datasets attached from *different* stores —
        whose private epoch counters may coincide — can never collide
        in a shared stage cache.
    deadline_s:
        Per-query wall-clock budget in seconds (``None`` = unbounded).
        Deliberately **excluded** from cache keys: the deadline changes
        how much of the answer gets computed this time, never what the
        answer *is* — stages that complete within budget are cached and
        reusable by deadline-free queries, while stages synthesized
        after expiry are tainted and never cached at all.
    use_aggregate:
        Whether the plan may route through the aggregate-first summary
        pyramid (tri-state supernode classification + drill-down).
        Like ``use_index`` this is a *routing* preference, not an
        answer-changing one — aggregate-first plans are bit-identical
        to per-segment plans — but it is part of the spec because the
        planner keys stage identity on the route taken.
    """

    color: str
    window_key: tuple
    dataset_epoch: int
    canvas_uid: int
    canvas_epoch: int
    color_epoch: int
    assignment_id: int | None
    use_index: bool
    n_stamps: int
    store_token: tuple | None = None
    deadline_s: float | None = None
    use_aggregate: bool = False

    @classmethod
    def capture(
        cls,
        dataset: TrajectoryDataset,
        canvas: BrushCanvas,
        color: str,
        window: TimeWindow,
        assignment: CellAssignment | None,
        *,
        use_index: bool,
        deadline_s: float | None = None,
        use_aggregate: bool = False,
    ) -> "QuerySpec":
        """Snapshot the current epochs/keys into a spec."""
        centers, _ = canvas.stamps_of(color)
        return cls(
            color=color,
            window_key=window.cache_key(),
            dataset_epoch=dataset.epoch,
            canvas_uid=canvas.uid,
            canvas_epoch=canvas.stroke_epoch,
            color_epoch=canvas.color_epoch(color),
            assignment_id=assignment_token(assignment),
            use_index=use_index,
            n_stamps=len(centers),
            store_token=getattr(dataset, "store_token", None),
            deadline_s=deadline_s,
            use_aggregate=use_aggregate,
        )
