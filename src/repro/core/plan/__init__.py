"""The staged query-plan pipeline.

``CoordinatedBrushingEngine.query`` used to be a monolith: temporal
mask, spatial candidates, capsule hit-test and aggregation recomputed
from scratch on every call, even when the only thing that moved was
the time slider.  This subpackage splits the query path into an
explicit plan/execute pipeline:

* :mod:`spec` — :class:`QuerySpec`, the immutable, hashable identity
  of one query (dataset epoch, canvas stroke epochs, window key,
  assignment token);
* :mod:`trace` — :class:`QueryTrace` / :class:`StageRecord`, the
  per-stage observability surface (wall time, cardinalities, cache
  hit/miss) attached to every :class:`~repro.core.result.QueryResult`;
* :mod:`cache` — :class:`StageCache`, a keyed LRU whose keys embed
  explicit invalidation epochs (dataset epoch, canvas stroke epoch,
  window key) so stale entries can never be served;
* :mod:`planner` — :class:`QueryPlanner`, which builds the stage DAG
  ``temporal_mask → spatial_candidates → brush_hit → combine →
  aggregate → group_support`` and chooses index vs brute-force per the
  degradation ladder;
* :mod:`executor` — :class:`QueryExecutor`, which runs planned stages
  through the cache, so a slider-only change re-executes just
  ``temporal_mask → combine → aggregate`` and a color-only change
  reuses the temporal mask outright.

This is what makes the paper's "a brush or slider tweak answers in a
few seconds across ~500 trajectories" hold as datasets grow: the warm
path touches only the stages whose inputs actually changed.
"""

from repro.core.plan.cache import StageCache
from repro.core.plan.executor import Deadline, DeadlineExceeded, QueryExecutor
from repro.core.plan.planner import PlannedStage, QueryPlan, QueryPlanner
from repro.core.plan.spec import QuerySpec
from repro.core.plan.trace import QueryTrace, StageRecord

__all__ = [
    "QuerySpec",
    "QueryTrace",
    "StageRecord",
    "StageCache",
    "PlannedStage",
    "QueryPlan",
    "QueryPlanner",
    "QueryExecutor",
    "Deadline",
    "DeadlineExceeded",
]
