"""Per-stage query observability.

Every executed plan produces a :class:`QueryTrace`: one
:class:`StageRecord` per stage with wall time, input/output
cardinality, and whether the stage was served from the
:class:`~repro.core.plan.cache.StageCache`.  The trace rides on
:class:`~repro.core.result.QueryResult` and is journaled by the
session, giving "why was this query slow?" a first-class answer
(e.g. "brush_hit missed because the canvas epoch moved").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageRecord", "QueryTrace"]


@dataclass(frozen=True)
class StageRecord:
    """One stage execution (or cache hit) inside a query.

    Attributes
    ----------
    stage:
        Stage name (``temporal_mask``, ``spatial_candidates``,
        ``brush_hit``, ``combine``, ``aggregate``, ``group_support``).
    elapsed_s:
        Wall time of the stage (near zero on a cache hit).
    n_in:
        Input cardinality (segments/candidates entering the stage).
    n_out:
        Output cardinality (elements selected by the stage).
    cache_hit:
        True when the output came from the stage cache.
    degraded:
        True when this stage (or a dependency) ran on a fallback rung
        of the degradation ladder; degraded outputs are never cached.
    detail:
        Free-form annotation (strategy, fallback reason).
    """

    stage: str
    elapsed_s: float
    n_in: int
    n_out: int
    cache_hit: bool = False
    degraded: bool = False
    detail: str = ""

    def describe(self) -> str:
        """Compact ``name[hit|12.3ms] 5000→120`` form for logs."""
        status = "hit" if self.cache_hit else f"{self.elapsed_s * 1e3:.2f}ms"
        tag = "!" if self.degraded else ""
        return f"{self.stage}{tag}[{status}] {self.n_in}→{self.n_out}"


@dataclass
class QueryTrace:
    """The full per-stage record of one planned query.

    Attributes
    ----------
    strategy:
        The planner's routing decision (``indexed`` | ``brute-force``
        | ``empty-brush``).
    plan_s:
        Wall time spent building the plan.
    execute_s:
        Wall time spent executing it (cache lookups included).
    stages:
        Stage records in execution order.
    """

    strategy: str = ""
    plan_s: float = 0.0
    execute_s: float = 0.0
    stages: list[StageRecord] = field(default_factory=list)

    def record(self, record: StageRecord) -> None:
        """Append one stage's record (in execution order)."""
        self.stages.append(record)

    # Aggregates ---------------------------------------------------------
    @property
    def total_s(self) -> float:
        """Plan + execute wall time: what ``QueryResult.elapsed_s``
        reports, by construction covering every stage."""
        return self.plan_s + self.execute_s

    @property
    def stage_total_s(self) -> float:
        """Sum of per-stage wall times (<= :attr:`total_s`)."""
        return sum(r.elapsed_s for r in self.stages)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.stages if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.stages if not r.cache_hit)

    def executed_stages(self) -> list[str]:
        """Names of stages that actually ran (cache misses), in order."""
        return [r.stage for r in self.stages if not r.cache_hit]

    def stage_names(self) -> list[str]:
        """All stage names in the plan's execution order."""
        return [r.stage for r in self.stages]

    def __getitem__(self, stage: str) -> StageRecord:
        """Record of one stage by name (KeyError if absent)."""
        for r in self.stages:
            if r.stage == stage:
                return r
        raise KeyError(stage)

    def __contains__(self, stage: str) -> bool:
        return any(r.stage == stage for r in self.stages)

    def describe(self) -> str:
        """One-line journal-ready summary of the whole trace."""
        parts = " ".join(r.describe() for r in self.stages)
        return (
            f"{self.strategy} {self.total_s * 1e3:.2f}ms "
            f"({self.cache_hits} hit/{self.cache_misses} miss): {parts}"
        )
