"""The query executor.

Runs a :class:`~repro.core.plan.planner.QueryPlan` stage by stage
through the :class:`~repro.core.plan.cache.StageCache`, recording one
:class:`~repro.core.plan.trace.StageRecord` per stage.  The executor
owns the stage *implementations* (the vectorized kernels the old
monolithic engine ran inline); the planner owns the routing and the
cache keys.

Degradation ladder: a spatial-index failure mid-stage falls back to
the exact brute-force scan, records the event, and **taints** the
stage — tainted outputs (and everything computed from them) are never
inserted into the cache, so a degraded query can never poison the warm
path.

Observability: every stage runs inside a :func:`repro.obs.stage_span`,
which both back-fills the :class:`QueryTrace` (the per-result record
this module always produced) and — when a live registry is installed —
emits per-stage latency histograms and cache hit/miss/taint counters
into the process telemetry plane.  Emission is guarded inside the span;
nothing here can raise because of telemetry.

Deadlines: a query may carry a :class:`Deadline` (wall-clock budget
set at query entry).  The budget is checked **only between stages** —
never inside a stage kernel, so every stage output is either complete
or absent (reprolint rule RL008 pins this).  Once the budget is
exhausted the executor stops computing: every remaining stage is
*synthesized* as an empty partial (all-false masks, zero aggregates),
recorded as degraded via :class:`DeadlineExceeded` →
``DegradationReport``, and tainted so nothing partial can ever enter
the stage cache.  Stages that finished before expiry remain cached —
their outputs are exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.core.aggregate.kernels import (
    IN as AGG_IN,
    MAYBE as AGG_MAYBE,
    OUT as AGG_OUT,
    brush_hit_cells,
    brush_hit_mask,
    classify_spatial,
    classify_temporal,
    refine_temporal_rows,
)
from repro.core.aggregate.pyramid import SummaryPyramid
from repro.core.canvas import BrushCanvas
from repro.core.plan.cache import StageCache
from repro.core.plan.planner import QueryPlan
from repro.core.plan.trace import QueryTrace
from repro.core.result import GroupSupport
from repro.core.spatial_index import UniformGridIndex
from repro.core.temporal import TimeWindow
from repro.layout.cells import CellAssignment
from repro.resilience.health import DegradationReport
from repro.trajectory.dataset import PackedSegments, TrajectoryDataset

__all__ = ["Deadline", "DeadlineExceeded", "QueryExecutor"]


class DeadlineExceeded(RuntimeError):
    """A query's wall-clock budget ran out at a stage boundary.

    Raised by :meth:`Deadline.check`; the executor absorbs it into the
    degradation ladder (partial result, tainted stages) rather than
    letting it propagate — queries degrade, they do not fail.
    """

    def __init__(self, budget_s: float, overshoot_s: float, stage: str) -> None:
        super().__init__(
            f"query deadline of {budget_s:.3f}s exceeded by "
            f"{overshoot_s:.3f}s before stage {stage!r}"
        )
        self.budget_s = budget_s
        self.overshoot_s = overshoot_s
        self.stage = stage


@dataclass(frozen=True)
class Deadline:
    """A per-query wall-clock budget, checked at stage boundaries only.

    Attributes
    ----------
    budget_s:
        The total budget granted at query entry (planning time counts
        against it).
    expires_at:
        Absolute expiry instant on ``clock``'s timeline.
    clock:
        Injectable monotonic clock (tests freeze it; production uses
        ``time.perf_counter``).
    """

    budget_s: float
    expires_at: float
    clock: Callable[[], float] = time.perf_counter

    @classmethod
    def after(
        cls,
        budget_s: float,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "Deadline":
        """A deadline expiring ``budget_s`` seconds from now."""
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        return cls(budget_s=budget_s, expires_at=clock() + budget_s, clock=clock)

    def remaining_s(self) -> float:
        """Seconds left on the budget (negative once expired)."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        """True once the budget is exhausted."""
        return self.clock() >= self.expires_at

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is exhausted.

        Called by the executor between stages — the one legal check
        site (RL008): a stage either runs to completion or not at all.
        """
        over = -self.remaining_s()
        if over >= 0:
            raise DeadlineExceeded(self.budget_s, over, stage)


def _freeze(value: Any) -> Any:
    """Mark array outputs read-only before they enter the shared cache."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, tuple):
        for item in value:
            if isinstance(item, np.ndarray):
                item.setflags(write=False)
    return value


#: Distinguishes "not passed" from an explicit ``None`` index.
_UNSET: Any = object()


class QueryExecutor:
    """Executes planned stages over one dataset's packed segments.

    Parameters
    ----------
    dataset, packed:
        The bound trajectory collection and its columnar segment view.
    index:
        The spatial index, or ``None`` (brute-force plans).
    cache:
        The shared :class:`StageCache` stage outputs flow through.
    index_error:
        The recorded index *build* failure, if construction degraded
        the engine to brute force (surfaces in every query's report).
    pyramid:
        The summary pyramid backing aggregate-route plans, or ``None``
        (such plans are never produced without one).
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        packed: PackedSegments,
        index: UniformGridIndex | None,
        cache: "StageCache | Any",
        *,
        index_error: str | None = None,
        pyramid: SummaryPyramid | None = None,
    ) -> None:
        self.dataset = dataset
        self.packed = packed
        self.index = index
        self.cache = cache
        self.index_error = index_error
        self.pyramid = pyramid
        # per-trajectory segment-range bounds for reduceat aggregation
        self._starts = packed.offsets[:-1]
        self._has_segments = packed.offsets[1:] > packed.offsets[:-1]

    # Aggregation kernels ------------------------------------------------
    def _per_traj_any(self, segment_mask: np.ndarray) -> np.ndarray:
        """(T,) any-highlight flag via logical reduceat over owner ranges."""
        out = np.zeros(len(self.dataset), dtype=bool)
        if segment_mask.any():
            red = np.bitwise_or.reduceat(segment_mask, self._starts)
            # reduceat on an empty range returns the element at the start
            # index of the *next* range; mask those out
            out = red & self._has_segments
        return out

    def _per_traj_time(self, segment_mask: np.ndarray) -> np.ndarray:
        """(T,) highlighted seconds via add.reduceat of segment dts."""
        dt = (self.packed.t1 - self.packed.t0) * segment_mask
        red = np.add.reduceat(dt, self._starts)
        return np.where(self._has_segments, red, 0.0)

    # Execution ----------------------------------------------------------
    def run(
        self,
        plan: QueryPlan,
        canvas: BrushCanvas,
        window: TimeWindow,
        assignment: CellAssignment | None,
        trace: QueryTrace,
        degradation: DegradationReport,
        deadline: Deadline | None = None,
        *,
        index: "UniformGridIndex | None | object" = _UNSET,
        index_error: "str | None | object" = _UNSET,
        pyramid: "SummaryPyramid | None | object" = _UNSET,
    ) -> dict[str, Any]:
        """Execute every planned stage; returns the stage-output map.

        Cache policy: a stage is served from the cache when its key is
        present; a freshly computed output is inserted only when the
        stage is untainted (neither it nor any dependency degraded).

        Deadline policy: the budget is checked once per stage boundary.
        On expiry the remaining stages are synthesized as empty
        partials — degraded, tainted, and never cached — so the caller
        still receives a structurally complete (if conservative) result
        within its budget.

        Concurrency: ``index``/``index_error``/``pyramid`` may be
        passed per run so a shared executor is never *mutated* between
        queries — on the lock-free multi-tenant path, N threads run
        this method against one executor simultaneously and everything
        they touch is either immutable (dataset, packed view, index,
        pyramid) or thread-safe (a sharded stage cache, the per-call
        locals below).
        """
        if index is _UNSET:
            index = self.index
        if index_error is _UNSET:
            index_error = self.index_error
        if pyramid is _UNSET:
            pyramid = self.pyramid
        t_run = time.perf_counter()
        outputs: dict[str, Any] = {}
        tainted: set[str] = set()
        expired = False
        for stage in plan.stages:
            if deadline is not None and not expired:
                try:
                    deadline.check(stage.name)
                except DeadlineExceeded as exc:
                    expired = True
                    degradation.record(
                        "deadline-exceeded",
                        scope="query",
                        action="degraded-partial",
                        detail=str(exc),
                    )
                    obs.counter_add(
                        "query.deadline_exceeded", 1, stage=stage.name
                    )
            if expired:
                with obs.stage_span(trace, stage.name) as sp:
                    value = self._partial_stage(stage.name, assignment, pyramid)
                    outputs[stage.name] = value
                    tainted.add(stage.name)
                    sp.n_in = 0
                    sp.n_out = _cardinality(value)
                    sp.degraded = True
                    sp.detail = "deadline exceeded; synthesized partial"
                continue
            dep_tainted = any(d in tainted for d in stage.deps)
            if stage.key is not None:
                cached, found = self.cache.lookup(stage.key)
                if found:
                    with obs.stage_span(trace, stage.name) as sp:
                        outputs[stage.name] = cached
                        sp.cache_hit = True
                        sp.n_in = self._n_in(stage.name, outputs)
                        sp.n_out = _cardinality(cached)
                    continue
            with obs.stage_span(trace, stage.name) as sp:
                value, degraded, detail = self._execute_stage(
                    stage.name, plan, canvas, window, assignment, outputs,
                    degradation, index, index_error, pyramid,
                )
                outputs[stage.name] = value
                if degraded or dep_tainted:
                    tainted.add(stage.name)
                elif stage.key is not None:
                    self.cache.put(stage.key, _freeze(value))
                sp.n_in = self._n_in(stage.name, outputs)
                sp.n_out = _cardinality(value)
                sp.degraded = degraded or dep_tainted
                sp.detail = detail
        trace.execute_s += time.perf_counter() - t_run
        return outputs

    def _n_in(self, name: str, outputs: dict[str, Any]) -> int:
        """Input cardinality feeding one stage."""
        if name in ("temporal_mask", "spatial_candidates", "combine"):
            return self.packed.n_segments
        if name == "brush_hit":
            cand = outputs.get("spatial_candidates")
            return len(cand) if cand is not None else self.packed.n_segments
        if name in ("agg_temporal", "agg_spatial", "classify"):
            # supernode/cell cardinality — read off the stage's own output
            value = outputs.get(name)
            return len(value) if value is not None else 0
        if name in ("agg_brush", "drilldown"):
            return self.packed.n_segments
        if name == "aggregate":
            mask = outputs.get("drilldown")
            if mask is None:
                mask = outputs.get("combine")
            return int(mask.sum()) if mask is not None else 0
        if name == "group_support":
            agg = outputs.get("aggregate")
            return int(agg[0].sum()) if agg is not None else 0
        return 0

    def _execute_stage(
        self,
        name: str,
        plan: QueryPlan,
        canvas: BrushCanvas,
        window: TimeWindow,
        assignment: CellAssignment | None,
        outputs: dict[str, Any],
        degradation: DegradationReport,
        index: UniformGridIndex | None = None,
        index_error: str | None = None,
        pyramid: SummaryPyramid | None = None,
    ) -> tuple[Any, bool, str]:
        """Dispatch one stage; returns (output, degraded, detail).

        ``index``/``index_error``/``pyramid`` arrive as per-run
        arguments (never read from shared executor state) so concurrent
        queries cannot observe each other's index or pyramid swaps.
        """
        color = plan.spec.color
        if name == "temporal_mask":
            return window.segment_mask(self.packed, self.dataset), False, ""

        if name == "agg_temporal":
            assert pyramid is not None
            return classify_temporal(pyramid, window), False, ""

        if name == "agg_spatial":
            assert pyramid is not None
            centers, radii = canvas.stamps_of(color)
            return classify_spatial(pyramid, centers, radii), False, ""

        if name == "agg_brush":
            # exact full-length brush mask from the tri-state cells:
            # IN cells are hit wholesale, OUT cells stay False, and only
            # the inconclusive cells' rows reach the capsule kernel.
            # Window-independent, so slider sweeps reuse it from cache.
            assert pyramid is not None
            scls = outputs["agg_spatial"]
            mask = np.zeros(self.packed.n_segments, dtype=bool)
            mask[pyramid.rows_in_cells(np.flatnonzero(scls == AGG_IN))] = True
            centers, radii = canvas.stamps_of(color)
            maybe_rows, hits = brush_hit_cells(
                pyramid, centers, radii, self.packed,
                np.flatnonzero(scls == AGG_MAYBE),
            )
            mask[maybe_rows] = hits
            obs.counter_add(
                "service.aggregate.drilldown_segments", len(maybe_rows)
            )
            return mask, False, f"refined {len(maybe_rows)} segments"

        if name == "classify":
            assert pyramid is not None
            tcls = outputs["agg_temporal"]
            scls = outputs["agg_spatial"]
            ncls = np.minimum(np.repeat(scls, pyramid.n_tbuckets), tcls)
            occupied = pyramid.node_counts > 0
            for code, label in (
                (AGG_IN, "all_in"),
                (AGG_MAYBE, "inconclusive"),
                (AGG_OUT, "all_out"),
            ):
                obs.counter_add(
                    "service.aggregate.supernodes",
                    int(((ncls == code) & occupied).sum()),
                    **{"class": label},
                )
            return ncls, False, ""

        if name == "drilldown":
            # combine brush × temporal: the brush mask is already exact;
            # rows in temporally-inconclusive nodes get the exact window
            # predicate, everything else resolves from the tri-state.
            assert pyramid is not None
            tcls_rows = outputs["agg_temporal"][pyramid.node_of]
            mask = outputs["agg_brush"] & (tcls_rows != AGG_OUT)
            need = np.flatnonzero(mask & (tcls_rows == AGG_MAYBE))
            if len(need):
                mask[need] = refine_temporal_rows(
                    pyramid, self.packed, window, need
                )
            return mask, False, f"refined {len(need)} segments"

        if name == "spatial_candidates":
            centers, radii = canvas.stamps_of(color)
            try:
                assert index is not None
                return index.candidates_for_discs(centers, radii), False, ""
            except Exception as exc:
                # one rung down the ladder: brush_hit scans everything
                degradation.record(
                    "index-failure",
                    scope="index",
                    action="degraded-brute-force",
                    detail=repr(exc),
                )
                return None, True, "index failed; brute-force fallback"

        if name == "brush_hit":
            if plan.strategy == "empty-brush":
                return np.zeros(self.packed.n_segments, dtype=bool), False, "no stamps"
            if plan.strategy == "brute-force" and index_error is not None:
                # the engine-level build failure surfaces on every query
                # that would have used the index (as the monolith did)
                degradation.record(
                    "index-build-failure",
                    scope="index",
                    action="degraded-brute-force",
                    detail=index_error,
                )
                mask = canvas.packed_hit_mask(color, self.packed)
                return mask, True, "index build failed; brute-force"
            candidates = outputs.get("spatial_candidates")
            if candidates is None:
                # degraded brute-force rung: no index candidates to gate on
                mask = canvas.packed_hit_mask(color, self.packed)
            else:
                centers, radii = canvas.stamps_of(color)
                mask = brush_hit_mask(centers, radii, self.packed, candidates)
            return mask, False, plan.strategy

        if name == "combine":
            return outputs["brush_hit"] & outputs["temporal_mask"], False, ""

        if name == "aggregate":
            segment_mask = outputs[plan.mask_stage]
            return (
                self._per_traj_any(segment_mask),
                self._per_traj_time(segment_mask),
            ), False, ""

        if name == "group_support":
            traj_mask = outputs["aggregate"][0]
            support: dict[str, GroupSupport] = {}
            if assignment is not None and assignment.groups is not None:
                for gi, spec in enumerate(assignment.groups):
                    cells = np.flatnonzero(assignment.group_of_cell == gi)
                    trajs = assignment.cell_to_traj[cells]
                    trajs = trajs[trajs >= 0]
                    n_disp = len(trajs)
                    n_hi = int(traj_mask[trajs].sum())
                    support[spec.name] = GroupSupport(spec.name, n_disp, n_hi)
            return support, False, ""

        raise ValueError(f"unknown stage {name!r}")

    def _partial_stage(
        self,
        name: str,
        assignment: CellAssignment | None,
        pyramid: SummaryPyramid | None = None,
    ) -> Any:
        """Synthesize the conservative empty output for one skipped stage.

        Used once the query's deadline expired: nothing is highlighted
        (all-false masks, zero aggregates, zero group support, all-OUT
        classifications), so a partial result under-reports rather than
        inventing hits.  The synthesized values are always tainted —
        they must never reach the stage cache.
        """
        if name in ("temporal_mask", "brush_hit", "combine",
                    "agg_brush", "drilldown"):
            return np.zeros(self.packed.n_segments, dtype=bool)
        if name == "spatial_candidates":
            return None
        if name in ("agg_temporal", "classify"):
            n = pyramid.n_nodes if pyramid is not None else 0
            return np.zeros(n, dtype=np.int8)
        if name == "agg_spatial":
            n = pyramid.n_cells if pyramid is not None else 0
            return np.zeros(n, dtype=np.int8)
        if name == "aggregate":
            n_traj = len(self.dataset)
            return (
                np.zeros(n_traj, dtype=bool),
                np.zeros(n_traj, dtype=np.float64),
            )
        if name == "group_support":
            support: dict[str, GroupSupport] = {}
            if assignment is not None and assignment.groups is not None:
                for gi, spec in enumerate(assignment.groups):
                    cells = np.flatnonzero(assignment.group_of_cell == gi)
                    trajs = assignment.cell_to_traj[cells]
                    support[spec.name] = GroupSupport(
                        spec.name, int((trajs >= 0).sum()), 0
                    )
            return support
        raise ValueError(f"unknown stage {name!r}")


def _cardinality(value: Any) -> int:
    """Output cardinality of a stage value for the trace."""
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        if value.dtype == bool:
            return int(value.sum())
        return len(value)
    if isinstance(value, tuple):  # aggregate: (traj_mask, traj_time)
        return int(value[0].sum())
    if isinstance(value, dict):  # group_support
        return sum(gs.n_highlighted for gs in value.values())
    return 0
