"""Session snapshots.

§VII: "We will also look at ways of integrating our application into
larger scientific workflows."  The minimal integration primitive is a
serializable session state: the layout key, page, grouping mode, brush
strokes, and temporal window — everything needed to reconstruct the
exact view and re-run its queries later, elsewhere, or alongside the
provenance log.  Snapshots are plain JSON; trajectory data itself is
referenced by the dataset's name, not embedded (datasets have their own
I/O in :mod:`repro.trajectory.io`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.brush import BrushStroke
from repro.core.session import ExplorationSession
from repro.core.temporal import TimeWindow
from repro.util.fileio import atomic_write_text

__all__ = ["SessionSnapshot", "snapshot_session", "restore_session"]


def _stroke_to_dict(stroke: BrushStroke) -> dict[str, Any]:
    return {
        "centers": stroke.centers.tolist(),
        "radius": stroke.radius,
        "color": stroke.color,
    }


def _stroke_from_dict(d: dict[str, Any]) -> BrushStroke:
    return BrushStroke(
        np.asarray(d["centers"], dtype=np.float64), float(d["radius"]), d["color"]
    )


@dataclass(frozen=True)
class SessionSnapshot:
    """A serializable exploration-session state.

    Attributes
    ----------
    layout_key:
        The keypad layout preset in effect.
    page:
        Bin paging position.
    fig3_groups:
        Whether the standard five-zone grouping was active.  (Custom
        group schemes are code, not data; they are re-applied by the
        caller after restore.)
    strokes:
        The brush canvas contents.
    window:
        The temporal filter.
    dataset_name:
        Name of the dataset the session explored (for bookkeeping; the
        restore target supplies the actual data).
    """

    layout_key: str
    page: int
    fig3_groups: bool
    strokes: tuple[BrushStroke, ...]
    window: TimeWindow
    dataset_name: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "layout_key": self.layout_key,
            "page": self.page,
            "fig3_groups": self.fig3_groups,
            "strokes": [_stroke_to_dict(s) for s in self.strokes],
            "window": {
                "lo": self.window.lo,
                "hi": self.window.hi,
                "fractional": self.window.fractional,
            },
            "dataset_name": self.dataset_name,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SessionSnapshot":
        """Inverse of :meth:`to_dict`."""
        w = d["window"]
        return cls(
            layout_key=d["layout_key"],
            page=int(d["page"]),
            fig3_groups=bool(d["fig3_groups"]),
            strokes=tuple(_stroke_from_dict(s) for s in d["strokes"]),
            window=TimeWindow(float(w["lo"]), float(w["hi"]), bool(w["fractional"])),
            dataset_name=d.get("dataset_name", ""),
            extra=dict(d.get("extra", {})),
        )

    def save(self, path: str | Path) -> None:
        """Write the snapshot to a JSON file.

        Atomic: the document lands via a same-directory temp file and
        :func:`os.replace`, so a crash mid-save can never tear an
        existing snapshot (the analyst's session survives).
        """
        atomic_write_text(Path(path), json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "SessionSnapshot":
        """Read a snapshot written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def snapshot_session(session: ExplorationSession, **extra: Any) -> SessionSnapshot:
    """Capture a session's current state."""
    return SessionSnapshot(
        layout_key=session.layout.key,
        page=session.page,
        fig3_groups=session.groups is not None,
        strokes=tuple(session.canvas.strokes()),
        window=session.window,
        dataset_name=session.dataset.name,
        extra=extra,
    )


def restore_session(session: ExplorationSession, snapshot: SessionSnapshot) -> None:
    """Apply a snapshot to a (fresh or dirty) session in place.

    The session's dataset is left as-is; layout, grouping, paging,
    canvas and window are replaced to match the snapshot.
    """
    session.switch_layout(snapshot.layout_key)
    if snapshot.fig3_groups:
        session.enable_fig3_groups()
    for _ in range(snapshot.page):
        session.next_page()
    session.erase()
    for stroke in snapshot.strokes:
        session.brush(stroke)
    session.set_time_window(snapshot.window)
