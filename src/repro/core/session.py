"""Interactive exploration session facade.

Ties the pieces of the application together the way the study's
researcher experienced them: a dataset on a wall viewport, a current
layout (switchable by keypad digit), a group scheme, a shared brush
canvas, a temporal window, and a query engine — with a history log of
every action taken (the raw material for the sensemaking analysis of
§V/§VI).  :class:`repro.app.TrajectoryExplorer` builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.brush import BrushStroke
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.hypothesis import Hypothesis, Verdict
from repro.core.result import QueryResult
from repro.core.temporal import TimeWindow
from repro.display.viewport import Viewport
from repro.layout.cells import CellAssignment, assign_groups_to_cells, assign_sequential
from repro.layout.configs import LayoutConfig, preset
from repro.layout.grid import BezelAwareGrid
from repro.layout.groups import TrajectoryGroups
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["ExplorationSession", "SessionEvent"]


@dataclass(frozen=True)
class SessionEvent:
    """One logged user action (layout switch, brush, query, ...)."""

    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class ExplorationSession:
    """One researcher's sitting with the application.

    Parameters
    ----------
    dataset:
        The trajectory collection under study.
    viewport:
        The wall viewport hosting the small multiples.
    layout_key:
        Initial keypad layout preset ('1' | '2' | '3').
    use_index:
        Whether the query engine builds its spatial index.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        viewport: Viewport,
        *,
        layout_key: str = "3",
        use_index: bool = True,
    ) -> None:
        self.dataset = dataset
        self.viewport = viewport
        self.engine = CoordinatedBrushingEngine(dataset, use_index=use_index)
        self.canvas = BrushCanvas()
        self.window: TimeWindow = TimeWindow.all()
        self.events: list[SessionEvent] = []
        self.groups: TrajectoryGroups | None = None
        self.page: int = 0
        self._grid: BezelAwareGrid | None = None
        self._assignment: CellAssignment | None = None
        self._config: LayoutConfig | None = None
        self.switch_layout(layout_key)

    # Layout -------------------------------------------------------------
    def switch_layout(self, key: str) -> LayoutConfig:
        """Keypad layout switching ('1', '2', ...); resets paging."""
        config = preset(key)
        self._config = config
        self._grid = config.build(self.viewport)
        self.page = 0
        if self.groups is not None:
            # group rectangles are grid-specific; re-derive the standard
            # scheme on the new grid (custom schemes must be re-applied)
            self.groups = TrajectoryGroups.fig3_scheme(self._grid)
        self._reassign()
        self._log("layout", key=key, cells=config.n_cells)
        return config

    def _reassign(self) -> None:
        assert self._grid is not None
        if self.groups is not None:
            self._assignment = assign_groups_to_cells(
                self.dataset, self._grid, self.groups, page=self.page
            )
        else:
            self._assignment = assign_sequential(
                self.dataset, self._grid, page=self.page
            )

    # Paging ---------------------------------------------------------------
    def next_page(self) -> int:
        """Scroll every bin forward one page (clamped at the end:
        pages showing nothing roll back)."""
        self.page += 1
        self._reassign()
        if self._assignment.n_displayed == 0 and self.page > 0:
            self.page -= 1
            self._reassign()
        self._log("page", page=self.page)
        return self.page

    def prev_page(self) -> int:
        """Scroll back one page (clamped at zero)."""
        if self.page > 0:
            self.page -= 1
            self._reassign()
        self._log("page", page=self.page)
        return self.page

    def enable_fig3_groups(self) -> TrajectoryGroups:
        """Apply the five-zone grouping scheme of Fig. 3."""
        assert self._grid is not None
        self.groups = TrajectoryGroups.fig3_scheme(self._grid)
        self.page = 0
        self._reassign()
        self._log("groups", scheme="fig3", names=self.groups.names())
        return self.groups

    def set_groups(self, groups: TrajectoryGroups) -> None:
        """Apply a custom group scheme (resets paging)."""
        self.groups = groups
        self.page = 0
        self._reassign()
        self._log("groups", scheme="custom", names=groups.names())

    @property
    def grid(self) -> BezelAwareGrid:
        assert self._grid is not None
        return self._grid

    @property
    def assignment(self) -> CellAssignment:
        assert self._assignment is not None
        return self._assignment

    @property
    def layout(self) -> LayoutConfig:
        assert self._config is not None
        return self._config

    # Brushing & temporal filter ------------------------------------------
    def brush(self, stroke: BrushStroke) -> None:
        """Paint a stroke onto the shared canvas."""
        self.canvas.add(stroke)
        self._log("brush", color=stroke.color, stamps=stroke.n_stamps, radius=stroke.radius)

    def erase(self, color: str | None = None) -> None:
        """Clear the canvas (one color or all)."""
        self.canvas.clear(color)
        self._log("erase", color=color or "*")

    def set_time_window(self, window: TimeWindow) -> None:
        """Move the temporal range slider."""
        self.window = window
        self._log("temporal", window=window.describe())

    # Queries ---------------------------------------------------------------
    def run_query(self, color: str = "red") -> QueryResult:
        """Evaluate the canvas under the current window and layout."""
        result = self.engine.query(
            self.canvas, color, window=self.window, assignment=self._assignment
        )
        self._log(
            "query",
            color=color,
            highlighted=result.n_highlighted,
            displayed=result.n_displayed,
            elapsed_s=result.elapsed_s,
        )
        return result

    def test_hypothesis(self, hypothesis: Hypothesis) -> Verdict:
        """Evaluate a declarative hypothesis under the current layout."""
        verdict = hypothesis.evaluate(self.engine, self._assignment)
        self._log(
            "hypothesis",
            statement=hypothesis.statement,
            verdict=verdict.kind.value,
            support=verdict.support,
        )
        return verdict

    # Bookkeeping ------------------------------------------------------------
    def _log(self, kind: str, **detail: Any) -> None:
        self.events.append(SessionEvent(kind, detail))

    def event_counts(self) -> dict[str, int]:
        """Histogram of logged action kinds."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out
