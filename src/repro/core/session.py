"""Interactive exploration session facade.

Ties the pieces of the application together the way the study's
researcher experienced them: a dataset on a wall viewport, a current
layout (switchable by keypad digit), a group scheme, a shared brush
canvas, a temporal window, and a query engine — with a history log of
every action taken (the raw material for the sensemaking analysis of
§V/§VI).  :class:`repro.app.TrajectoryExplorer` builds on this.

Crash safety: pass ``journal_path`` and every action is additionally
appended — one fsync'd JSON line at a time — to an on-disk event
journal.  If the process dies mid-session, :func:`replay_session`
rebuilds the session from the journal, tolerating a torn final line
(the one action that was mid-write when the crash hit).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.brush import BrushStroke
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.hypothesis import Hypothesis, Verdict
from repro.core.result import QueryResult
from repro.core.temporal import TimeWindow
from repro.display.viewport import Viewport
from repro.layout.cells import CellAssignment, assign_groups_to_cells, assign_sequential
from repro.layout.configs import LayoutConfig, preset
from repro.layout.grid import BezelAwareGrid
from repro.layout.groups import TrajectoryGroups
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["ExplorationSession", "SessionEvent", "SessionJournal", "replay_session"]


@dataclass(frozen=True)
class SessionEvent:
    """One logged user action (layout switch, brush, query, ...)."""

    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


def _json_default(value: Any) -> Any:
    """JSON fallback for numpy scalars/arrays in event details."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return str(value)


class SessionJournal:
    """Crash-safe append-only event journal (JSON lines).

    Each record is one line, flushed (and, when ``durable``, fsync'd)
    before :meth:`append` returns — an interrupted session loses at
    most the action that was mid-write, and :meth:`read` tolerates
    exactly that torn final line.

    ``durable=False`` drops the per-record fsync: appends still flush
    to the OS page cache (safe against *process* crash, not power
    loss), trading the ~ms synchronous disk wait for query latency.
    The multi-tenant service tier runs its per-session journals this
    way — the journal is an audit trail there, not the system of
    record — while standalone sessions keep the durable default.
    """

    def __init__(self, path: str | Path, *, durable: bool = True) -> None:
        self.path = Path(path)
        self.durable = durable
        self._fh = self.path.open("a", encoding="utf-8")

    def append(self, kind: str, detail: dict[str, Any]) -> None:
        """Append one event record (fsync'd when ``durable``)."""
        if self._fh is None:
            raise RuntimeError("journal is closed")
        line = json.dumps({"kind": kind, "detail": detail}, default=_json_default)
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the underlying file; further appends raise."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def read(path: str | Path) -> list[dict[str, Any]]:
        """Read journal records, dropping a torn trailing line.

        A malformed line *before* the final one means real corruption
        and raises; only the last line may be partial (the crash case).
        """
        records: list[dict[str, Any]] = []
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn final record: the crash ate it
                raise ValueError(
                    f"{path}:{i + 1}: corrupt journal line (not the final record)"
                )
        return records


class ExplorationSession:
    """One researcher's sitting with the application.

    Parameters
    ----------
    dataset:
        The trajectory collection under study.
    viewport:
        The wall viewport hosting the small multiples.
    layout_key:
        Initial keypad layout preset ('1' | '2' | '3').
    use_index:
        Whether the query engine builds its spatial index (ignored when
        ``engine`` is supplied).
    journal_path:
        Optional path of a crash-safe append-only event journal; every
        action is durably recorded so :func:`replay_session` can
        rebuild an interrupted session.
    journal_durable:
        Whether the journal fsyncs every record (the default).  The
        service tier passes ``False`` so a shared-store query never
        waits on a synchronous disk write — see
        :class:`SessionJournal`.
    engine:
        A pre-existing engine over the *same* dataset to share instead
        of building a private one.  This is how
        :class:`repro.store.DatasetService` hands N concurrent sessions
        one resident copy of the packed arrays and one stage cache;
        when sessions run on multiple threads, share an engine whose
        stage cache is thread safe (e.g.
        :class:`repro.store.SharedQueryEngine`, which is lock-free over
        a sharded cache).
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        viewport: Viewport,
        *,
        layout_key: str = "3",
        use_index: bool = True,
        journal_path: str | Path | None = None,
        journal_durable: bool = True,
        engine: CoordinatedBrushingEngine | None = None,
    ) -> None:
        if engine is not None and engine.dataset is not dataset:
            raise ValueError("shared engine is bound to a different dataset")
        self.dataset = dataset
        self.viewport = viewport
        self.engine = (
            engine
            if engine is not None
            else CoordinatedBrushingEngine(dataset, use_index=use_index)
        )
        self.canvas = BrushCanvas()
        self.window: TimeWindow = TimeWindow.all()
        self.events: list[SessionEvent] = []
        self.groups: TrajectoryGroups | None = None
        self.page: int = 0
        self._grid: BezelAwareGrid | None = None
        self._assignment: CellAssignment | None = None
        self._config: LayoutConfig | None = None
        self.journal: SessionJournal | None = (
            SessionJournal(journal_path, durable=journal_durable)
            if journal_path is not None
            else None
        )
        self.switch_layout(layout_key)

    def close(self) -> None:
        """Close the journal (if any); the session stays usable but
        stops recording to disk."""
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    # Layout -------------------------------------------------------------
    def switch_layout(self, key: str) -> LayoutConfig:
        """Keypad layout switching ('1', '2', ...); resets paging."""
        config = preset(key)
        self._config = config
        self._grid = config.build(self.viewport)
        self.page = 0
        if self.groups is not None:
            # group rectangles are grid-specific; re-derive the standard
            # scheme on the new grid (custom schemes must be re-applied)
            self.groups = TrajectoryGroups.fig3_scheme(self._grid)
        self._reassign()
        self._log("layout", key=key, cells=config.n_cells)
        return config

    def _reassign(self) -> None:
        assert self._grid is not None
        if self.groups is not None:
            self._assignment = assign_groups_to_cells(
                self.dataset, self._grid, self.groups, page=self.page
            )
        else:
            self._assignment = assign_sequential(
                self.dataset, self._grid, page=self.page
            )

    # Paging ---------------------------------------------------------------
    def next_page(self) -> int:
        """Scroll every bin forward one page (clamped at the end:
        pages showing nothing roll back)."""
        self.page += 1
        self._reassign()
        if self._assignment.n_displayed == 0 and self.page > 0:
            self.page -= 1
            self._reassign()
        self._log("page", page=self.page)
        return self.page

    def prev_page(self) -> int:
        """Scroll back one page (clamped at zero)."""
        if self.page > 0:
            self.page -= 1
            self._reassign()
        self._log("page", page=self.page)
        return self.page

    def enable_fig3_groups(self) -> TrajectoryGroups:
        """Apply the five-zone grouping scheme of Fig. 3."""
        assert self._grid is not None
        self.groups = TrajectoryGroups.fig3_scheme(self._grid)
        self.page = 0
        self._reassign()
        self._log("groups", scheme="fig3", names=self.groups.names())
        return self.groups

    def set_groups(self, groups: TrajectoryGroups) -> None:
        """Apply a custom group scheme (resets paging)."""
        self.groups = groups
        self.page = 0
        self._reassign()
        self._log("groups", scheme="custom", names=groups.names())

    @property
    def grid(self) -> BezelAwareGrid:
        assert self._grid is not None
        return self._grid

    @property
    def assignment(self) -> CellAssignment:
        assert self._assignment is not None
        return self._assignment

    @property
    def layout(self) -> LayoutConfig:
        assert self._config is not None
        return self._config

    # Brushing & temporal filter ------------------------------------------
    def brush(self, stroke: BrushStroke) -> None:
        """Paint a stroke onto the shared canvas."""
        self.canvas.add(stroke)
        self._log(
            "brush",
            _journal_extra={"centers": stroke.centers.tolist()},
            color=stroke.color,
            stamps=stroke.n_stamps,
            radius=stroke.radius,
        )

    def erase(self, color: str | None = None) -> None:
        """Clear the canvas (one color or all)."""
        self.canvas.clear(color)
        self._log("erase", color=color or "*")

    def set_time_window(self, window: TimeWindow) -> None:
        """Move the temporal range slider."""
        self.window = window
        self._log(
            "temporal",
            _journal_extra={
                "lo": window.lo, "hi": window.hi, "fractional": window.fractional
            },
            window=window.describe(),
        )

    # Queries ---------------------------------------------------------------
    def run_query(
        self, color: str = "red", *, deadline_s: float | None = None
    ) -> QueryResult:
        """Evaluate the canvas under the current window and layout.

        ``deadline_s`` forwards a per-query wall-clock budget to the
        engine: an over-budget query returns a degraded empty-partial
        result instead of blocking the interaction loop.

        The per-stage :class:`~repro.core.plan.trace.QueryTrace` is
        journaled alongside the usual counts, so a replayed or audited
        session shows *why* each query took the time it did (which
        stages ran, which were served from the stage cache).
        """
        result = self.engine.query(
            self.canvas, color, window=self.window, assignment=self._assignment,
            deadline_s=deadline_s,
        )
        detail: dict[str, Any] = dict(
            color=color,
            highlighted=result.n_highlighted,
            displayed=result.n_displayed,
            elapsed_s=result.elapsed_s,
        )
        if result.trace is not None:
            detail["trace"] = result.trace.describe()
            detail["stages_executed"] = result.trace.executed_stages()
            detail["cache_hits"] = result.trace.cache_hits
        self._log("query", **detail)
        return result

    def test_hypothesis(self, hypothesis: Hypothesis) -> Verdict:
        """Evaluate a declarative hypothesis under the current layout."""
        verdict = hypothesis.evaluate(self.engine, self._assignment)
        self._log(
            "hypothesis",
            statement=hypothesis.statement,
            verdict=verdict.kind.value,
            support=verdict.support,
        )
        return verdict

    # Bookkeeping ------------------------------------------------------------
    def _log(
        self, kind: str, _journal_extra: dict[str, Any] | None = None, **detail: Any
    ) -> None:
        self.events.append(SessionEvent(kind, detail))
        if self.journal is not None:
            record = dict(detail)
            if _journal_extra:
                record.update(_journal_extra)
            self.journal.append(kind, record)

    def event_counts(self) -> dict[str, int]:
        """Histogram of logged action kinds."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


def replay_session(
    journal_path: str | Path,
    dataset: TrajectoryDataset,
    viewport: Viewport,
    *,
    use_index: bool = True,
    journal_path_out: str | Path | None = None,
) -> ExplorationSession:
    """Rebuild a session from its event journal.

    Re-executes every journaled action against a fresh session over the
    same dataset/viewport: layout switches, paging, the standard
    grouping scheme, brush strokes (full geometry is journaled),
    erases, temporal-window moves and queries.  Custom group schemes
    and hypotheses are code, not data — those records are skipped, as
    with :func:`repro.core.snapshot.restore_session`.

    A torn final record (process died mid-append) is dropped silently —
    that is the crash the journal exists for.
    """
    records = SessionJournal.read(journal_path)
    layout_key = "3"
    start = 0
    if records and records[0]["kind"] == "layout":
        layout_key = records[0]["detail"]["key"]
        start = 1
    session = ExplorationSession(
        dataset,
        viewport,
        layout_key=layout_key,
        use_index=use_index,
        journal_path=journal_path_out,
    )
    for record in records[start:]:
        kind, detail = record["kind"], record["detail"]
        if kind == "layout":
            session.switch_layout(detail["key"])
        elif kind == "page":
            target = int(detail["page"])
            while session.page < target:
                before = session.page
                session.next_page()
                if session.page == before:
                    break  # clamped: dataset no longer reaches that page
            while session.page > target:
                session.prev_page()
        elif kind == "groups":
            if detail.get("scheme") == "fig3":
                session.enable_fig3_groups()
            # custom schemes are code; the caller re-applies them
        elif kind == "brush":
            session.brush(
                BrushStroke(
                    np.asarray(detail["centers"], dtype=np.float64),
                    float(detail["radius"]),
                    detail["color"],
                )
            )
        elif kind == "erase":
            color = detail.get("color", "*")
            session.erase(None if color == "*" else color)
        elif kind == "temporal":
            session.set_time_window(
                TimeWindow(
                    float(detail["lo"]), float(detail["hi"]), bool(detail["fractional"])
                )
            )
        elif kind == "query":
            session.run_query(detail.get("color", "red"))
        # hypothesis records carry code references; skipped on replay
    return session
