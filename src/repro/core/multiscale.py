"""Multi-scale visual queries (§VI-C).

"Coordinated brushing can still be employed to explore those clusters
in a similar manner ... a user can interactively 'zoom in' on a
particular cluster of interest and query the cluster at the
individual-trajectory level, enabling one to explore the dataset at
multiple scales."

A :class:`MultiscaleExplorer` holds a :class:`~repro.cluster.model.
ClusterModel` and two query engines: one over the cluster-average
dataset (the overview level) and, lazily per cluster, one over each
cluster's member trajectories (the zoomed level).  Both levels answer
the same :class:`~repro.core.canvas.BrushCanvas`, so a brush painted at
the overview carries down unchanged into the zoom.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.result import QueryResult
from repro.core.temporal import TimeWindow

__all__ = ["MultiscaleExplorer"]


class MultiscaleExplorer:
    """Two-level (overview / zoom) coordinated brushing.

    Parameters
    ----------
    model:
        A fitted cluster model.
    use_index:
        Whether the per-level engines build spatial indices.
    """

    def __init__(self, model: ClusterModel, *, use_index: bool = True) -> None:
        if len(model.averages) == 0:
            raise ValueError("cluster model has no non-empty clusters")
        self.model = model
        self.use_index = use_index
        self.overview_engine = CoordinatedBrushingEngine(
            model.averages, use_index=use_index
        )
        self._zoom_engines: dict[int, CoordinatedBrushingEngine] = {}

    # Overview level --------------------------------------------------------
    def query_overview(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
    ) -> QueryResult:
        """Brush the cluster averages (one cell per cluster)."""
        return self.overview_engine.query(canvas, color, window=window)

    def interesting_clusters(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
    ) -> np.ndarray:
        """Cluster indices whose *average* the brush highlights —
        the candidates the researcher would zoom into."""
        result = self.query_overview(canvas, color, window=window)
        hit_rows = result.highlighted_indices()
        # averages' traj_id is the cluster index
        return np.asarray(
            sorted(self.model.averages[int(r)].traj_id for r in hit_rows), dtype=np.int64
        )

    # Zoom level ----------------------------------------------------------------
    def zoom_engine(self, cluster: int) -> CoordinatedBrushingEngine:
        """The (cached) engine over one cluster's member trajectories."""
        if cluster not in self._zoom_engines:
            members = self.model.member_dataset(cluster)
            if len(members) == 0:
                raise ValueError(f"cluster {cluster} is empty")
            self._zoom_engines[cluster] = CoordinatedBrushingEngine(
                members, use_index=self.use_index
            )
        return self._zoom_engines[cluster]

    def query_cluster(
        self,
        cluster: int,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
    ) -> QueryResult:
        """Brush inside one zoomed cluster, individual-trajectory level."""
        return self.zoom_engine(cluster).query(canvas, color, window=window)

    # Two-level pipeline ----------------------------------------------------------
    def drill_down(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
        max_clusters: int | None = None,
    ) -> dict[int, QueryResult]:
        """Overview query, then zoom into every highlighted cluster.

        Returns per-cluster individual-level results.  ``max_clusters``
        caps the drill-down breadth (the researcher zooms a few, not
        all); the cap is applied in descending cluster-size order so
        the most data-rich candidates come first.
        """
        clusters = self.interesting_clusters(canvas, color, window=window)
        if max_clusters is not None and len(clusters) > max_clusters:
            sizes = self.model.cluster_sizes()[clusters]
            clusters = clusters[np.argsort(sizes)[::-1][:max_clusters]]
        return {
            int(c): self.query_cluster(int(c), canvas, color, window=window)
            for c in clusters
        }

    def support_estimate_error(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
        exact_engine: CoordinatedBrushingEngine | None = None,
    ) -> dict[str, float]:
        """How faithful is the cluster-level reading vs. the full data?

        Compares the member-weighted support implied by the overview
        highlighting against the exact support measured on the full
        dataset.  E9 reports this fidelity/granularity trade-off.
        """
        overview = self.query_overview(canvas, color, window=window)
        sizes = self.model.cluster_sizes()
        weighted_hits = 0
        total = int(sizes.sum())
        for row in range(len(self.model.averages)):
            cluster = self.model.averages[row].traj_id
            if overview.traj_mask[row]:
                weighted_hits += int(sizes[cluster])
        cluster_support = weighted_hits / max(1, total)
        engine = exact_engine or CoordinatedBrushingEngine(
            self.model.source, use_index=self.use_index
        )
        exact = engine.query(canvas, color, window=window)
        return {
            "cluster_level_support": cluster_support,
            "exact_support": exact.overall_support,
            "abs_error": abs(cluster_support - exact.overall_support),
        }
