"""Multi-query combination.

The canvas supports several brush colors at once — each an independent
query region.  The researcher composes them implicitly ("trajectories
that cross the center early AND exit west late"); this module makes the
composition explicit: combine per-color :class:`QueryResult` objects
with AND / OR / AND-NOT semantics at the trajectory level.

Segment masks do not generally compose (a conjunction is a property of
a whole trajectory, not of a single segment), so combined results carry
the operands' segment-mask union (AND/OR) or the kept operand's mask
(AND-NOT) for rendering, and the combined *trajectory* mask for reading
support.  Group breakdowns are dropped — recompute them by evaluating a
fresh query under the layout if needed.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import QueryResult

__all__ = ["combine_and", "combine_or", "combine_and_not"]


def _check_compatible(a: QueryResult, b: QueryResult) -> None:
    if a.traj_mask.shape != b.traj_mask.shape:
        raise ValueError(
            f"results cover different datasets: {a.traj_mask.shape} vs "
            f"{b.traj_mask.shape}"
        )
    if not np.array_equal(a.displayed, b.displayed):
        raise ValueError("results were computed under different layouts")


def combine_and(a: QueryResult, b: QueryResult) -> QueryResult:
    """Trajectories highlighted by *both* queries.

    Highlight time is the minimum of the operands' — a conservative
    bound on "time satisfying both".
    """
    _check_compatible(a, b)
    mask = a.traj_mask & b.traj_mask
    return QueryResult(
        color=f"({a.color} & {b.color})",
        segment_mask=a.segment_mask | b.segment_mask,
        traj_mask=mask,
        traj_highlight_time=np.where(
            mask, np.minimum(a.traj_highlight_time, b.traj_highlight_time), 0.0
        ),
        displayed=a.displayed,
        group_support={},
        elapsed_s=a.elapsed_s + b.elapsed_s,
    )


def combine_or(a: QueryResult, b: QueryResult) -> QueryResult:
    """Trajectories highlighted by *either* query."""
    _check_compatible(a, b)
    return QueryResult(
        color=f"({a.color} | {b.color})",
        segment_mask=a.segment_mask | b.segment_mask,
        traj_mask=a.traj_mask | b.traj_mask,
        traj_highlight_time=np.maximum(a.traj_highlight_time, b.traj_highlight_time),
        displayed=a.displayed,
        group_support={},
        elapsed_s=a.elapsed_s + b.elapsed_s,
    )


def combine_and_not(a: QueryResult, b: QueryResult) -> QueryResult:
    """Trajectories highlighted by ``a`` but *not* by ``b``.

    The exclusion pattern: "exited west but never lingered centrally".
    """
    _check_compatible(a, b)
    mask = a.traj_mask & ~b.traj_mask
    return QueryResult(
        color=f"({a.color} &! {b.color})",
        segment_mask=a.segment_mask,
        traj_mask=mask,
        traj_highlight_time=np.where(mask, a.traj_highlight_time, 0.0),
        displayed=a.displayed,
        group_support={},
        elapsed_s=a.elapsed_s + b.elapsed_s,
    )
