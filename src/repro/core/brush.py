"""Paintbrush strokes.

A stroke is what one drag of the circular paintbrush leaves behind: a
sequence of disc *stamps* (centers + one radius) in shared arena
coordinates.  The brushed region is the union of the stamps — a
"capsule chain" along the pointer path.  Hit-testing a trajectory
segment against a stroke asks whether the segment passes within
``radius`` of any stamp center, which
:func:`repro.util.geometry.point_segment_distance` answers for all
segments at once.

Stamps laid down closer than half a radius apart are redundant (their
capsules overlap almost entirely), so :func:`stroke_from_path`
decimates the pointer path accordingly — this is what keeps query cost
proportional to brushed *area*, not pointer polling rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_finite, check_positive, check_shape

__all__ = ["BrushStroke", "stroke_from_path", "stroke_from_rect"]


@dataclass(frozen=True)
class BrushStroke:
    """One brush stroke: disc stamps in arena coordinates.

    Attributes
    ----------
    centers:
        (K, 2) stamp centers, arena meters.
    radius:
        Stamp radius, arena meters.
    color:
        Highlight color name ("red", "green", "blue", ...); strokes of
        the same color merge into one query region on the canvas.
    """

    centers: np.ndarray
    radius: float
    color: str = "red"

    def __post_init__(self) -> None:
        centers = check_shape("centers", check_finite("centers", self.centers), (None, 2))
        if len(centers) == 0:
            raise ValueError("a stroke needs at least one stamp")
        centers = np.ascontiguousarray(centers, dtype=np.float64)
        centers.setflags(write=False)
        object.__setattr__(self, "centers", centers)
        check_positive("radius", self.radius)
        if not self.color:
            raise ValueError("color must be a non-empty string")

    @property
    def n_stamps(self) -> int:
        return len(self.centers)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) axis-aligned bounds of the brushed region."""
        return self.centers.min(axis=0) - self.radius, self.centers.max(axis=0) + self.radius

    def covers_points(self, points: np.ndarray) -> np.ndarray:
        """Mask of (N, 2) points inside the brushed region."""
        points = np.asarray(points, dtype=np.float64)
        # (N, K) distances; min over stamps
        d2 = (
            (points[:, None, 0] - self.centers[None, :, 0]) ** 2
            + (points[:, None, 1] - self.centers[None, :, 1]) ** 2
        )
        return (d2.min(axis=1) <= self.radius * self.radius)

    def area_estimate(self, samples: int = 4096, rng: np.random.Generator | None = None) -> float:
        """Monte-Carlo area of the stamp union (m^2), for diagnostics."""
        rng = rng or np.random.default_rng(0)
        lo, hi = self.bounding_box()
        pts = rng.uniform(lo, hi, size=(samples, 2))
        frac = float(self.covers_points(pts).mean())
        box_area = float(np.prod(hi - lo))
        return frac * box_area


def stroke_from_path(
    path: np.ndarray, radius: float, color: str = "red", *, min_spacing_factor: float = 0.5
) -> BrushStroke:
    """Build a stroke from a pointer drag path, decimating dense stamps.

    Consecutive path points closer than ``min_spacing_factor * radius``
    to the last *kept* stamp are dropped; endpoints are always kept.
    The union region changes by at most ``min_spacing_factor * radius``
    in Hausdorff distance — invisible at brush scale.
    """
    path = check_shape("path", check_finite("path", path), (None, 2))
    check_positive("radius", radius)
    if len(path) == 0:
        raise ValueError("path must contain at least one point")
    min_gap = min_spacing_factor * radius
    kept = [path[0]]
    for p in path[1:]:
        if np.linalg.norm(p - kept[-1]) >= min_gap:
            kept.append(p)
    if len(path) > 1 and not np.array_equal(kept[-1], path[-1]):
        kept.append(path[-1])
    return BrushStroke(np.asarray(kept), radius, color)


def stroke_from_rect(
    lo, hi, radius: float, color: str = "red"
) -> BrushStroke:
    """Cover the axis-aligned rectangle [lo, hi] with a stamp lattice.

    Convenient for the paper's region queries ("brush the left (west)
    part of the arena"): stamps on a grid of pitch ``radius`` so the
    union fully covers the rectangle (inflated by <= radius outside it).
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if np.any(hi < lo):
        raise ValueError(f"rect upper corner {hi} below lower corner {lo}")
    check_positive("radius", radius)
    nx = max(1, int(np.ceil((hi[0] - lo[0]) / radius)) + 1)
    ny = max(1, int(np.ceil((hi[1] - lo[1]) / radius)) + 1)
    xs = np.linspace(lo[0], hi[0], nx)
    ys = np.linspace(lo[1], hi[1], ny)
    gx, gy = np.meshgrid(xs, ys)
    centers = np.stack([gx.ravel(), gy.ravel()], axis=1)
    return BrushStroke(centers, radius, color)
