"""The temporal filter (§IV-C.2).

"A time-window can be specified, causing the visualization to display
segments of trajectories corresponding to insect movement during the
specified time window only."

Two window modes, both used in the study:

* **absolute** — [t0, t1] in seconds from release, identical for every
  trajectory;
* **fractional** — [f0, f1] of each trajectory's own duration, so
  "the beginning of the experiment" or "the last few seconds" means the
  same thing for a 15-second track and a 3-minute one.  This is the
  form the researcher actually used ("set the temporal filter to
  display the beginning of the experiment").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trajectory.dataset import PackedSegments, TrajectoryDataset
from repro.trajectory.model import Trajectory

__all__ = ["TimeWindow"]


@dataclass(frozen=True)
class TimeWindow:
    """A time window, absolute or per-trajectory fractional.

    Construct via :meth:`absolute` or :meth:`fraction`.
    """

    lo: float
    hi: float
    fractional: bool

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"window upper bound {self.hi} below lower bound {self.lo}")
        if self.fractional and not (0.0 <= self.lo and self.hi <= 1.0):
            raise ValueError("fractional window bounds must lie in [0, 1]")

    @classmethod
    def absolute(cls, t0: float, t1: float) -> "TimeWindow":
        """Window in seconds from release."""
        return cls(float(t0), float(t1), fractional=False)

    @classmethod
    def fraction(cls, f0: float, f1: float) -> "TimeWindow":
        """Window as fractions of each trajectory's duration."""
        return cls(float(f0), float(f1), fractional=True)

    @classmethod
    def all(cls) -> "TimeWindow":
        """The no-op window (entire experiment)."""
        return cls(0.0, 1.0, fractional=True)

    # Named conveniences matching the study's phrasing ------------------
    @classmethod
    def beginning(cls, frac: float = 0.2) -> "TimeWindow":
        """The first ``frac`` of each experiment."""
        return cls.fraction(0.0, frac)

    @classmethod
    def middle(cls, frac: float = 0.2) -> "TimeWindow":
        """The central ``frac`` of each experiment."""
        half = frac / 2.0
        return cls.fraction(0.5 - half, 0.5 + half)

    @classmethod
    def end(cls, frac: float = 0.2) -> "TimeWindow":
        """The final ``frac`` of each experiment."""
        return cls.fraction(1.0 - frac, 1.0)

    @property
    def is_everything(self) -> bool:
        return self.fractional and self.lo <= 0.0 and self.hi >= 1.0

    def cache_key(self) -> tuple:
        """Stable, hashable identity for stage-cache keys.

        Every no-op window canonicalizes to the same key, so
        ``TimeWindow.all()``, ``fraction(0, 1)`` and a passed-in
        equivalent all share cached temporal masks.
        """
        if self.is_everything:
            return ("*",)
        return ("frac" if self.fractional else "abs", self.lo, self.hi)

    # Mask computation ----------------------------------------------------
    def segment_mask(
        self, packed: PackedSegments, dataset: TrajectoryDataset
    ) -> np.ndarray:
        """(S,) mask over packed segments: segment overlaps the window.

        A segment [t0, t1] passes if its time span intersects the
        window; for fractional windows the bounds are scaled by the
        owning trajectory's start/duration via the packed ``owner``
        index (one fancy-indexing gather, no Python loop).
        """
        if self.is_everything:
            return np.ones(packed.n_segments, dtype=bool)
        if self.fractional:
            starts = np.fromiter(
                (float(t.times[0]) for t in dataset), dtype=np.float64, count=len(dataset)
            )
            durs = np.fromiter(
                (t.duration for t in dataset), dtype=np.float64, count=len(dataset)
            )
            lo = starts + self.lo * durs
            hi = starts + self.hi * durs
            w_lo = lo[packed.owner]
            w_hi = hi[packed.owner]
        else:
            w_lo = self.lo
            w_hi = self.hi
        return (packed.t1 >= w_lo) & (packed.t0 <= w_hi)

    def sample_mask(self, traj: Trajectory) -> np.ndarray:
        """(N,) mask over one trajectory's samples inside the window."""
        if self.fractional:
            t0 = float(traj.times[0])
            lo = t0 + self.lo * traj.duration
            hi = t0 + self.hi * traj.duration
        else:
            lo, hi = self.lo, self.hi
        return (traj.times >= lo) & (traj.times <= hi)

    def bounds_for(self, traj: Trajectory) -> tuple[float, float]:
        """Concrete (lo, hi) seconds for one trajectory."""
        if not self.fractional:
            return (self.lo, self.hi)
        t0 = float(traj.times[0])
        return (t0 + self.lo * traj.duration, t0 + self.hi * traj.duration)

    def describe(self) -> str:
        """Compact human-readable form (used in logs and reports)."""
        if self.is_everything:
            return "t=*"
        kind = "frac" if self.fractional else "s"
        return f"t=[{self.lo:g},{self.hi:g}]{kind}"
