"""The coordinated-brushing query engine.

One engine instance binds a dataset (through its packed segment view)
and optionally a spatial index; :meth:`query` evaluates a brush canvas
color under a time window across *every* trajectory at once:

1. temporal mask — which segments fall in the window (vectorized over
   the packed arrays, fractional windows resolved per owner);
2. spatial candidates — the index narrows the segment set to those near
   the brushed region (or all segments without an index);
3. brush mask — exact capsule hit-testing of candidates against the
   stamps;
4. aggregation — per-trajectory any-highlight flags and highlighted
   time via ``np.bitwise_or.reduceat`` / ``np.add.reduceat`` over the
   packed ownership ranges (no Python loop over trajectories);
5. group support — counts per group for the displayed subset.

This is the "scalable" in scalable visual queries: cost is a few
vectorized passes over flat arrays, independent of how many
small-multiple views display the result.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.canvas import BrushCanvas
from repro.core.result import GroupSupport, QueryResult
from repro.core.spatial_index import UniformGridIndex
from repro.core.temporal import TimeWindow
from repro.layout.cells import CellAssignment
from repro.resilience.health import DegradationReport
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["CoordinatedBrushingEngine"]


class CoordinatedBrushingEngine:
    """Evaluates visual queries over one dataset.

    Parameters
    ----------
    dataset:
        The trajectory collection to query.
    use_index:
        Build a :class:`UniformGridIndex` for sublinear brush testing.
        On by default; ablation A2 turns it off.
    index_res:
        Grid resolution of the index.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        use_index: bool = True,
        index_res: int = 64,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot build an engine over an empty dataset")
        self.dataset = dataset
        self.packed = dataset.packed()
        # Index construction is an acceleration, not a correctness
        # requirement: a failed build degrades the engine to the
        # brute-force path (recorded per query) instead of taking the
        # session down.
        self.index: UniformGridIndex | None = None
        self._index_error: str | None = None
        if use_index:
            try:
                self.index = UniformGridIndex(self.packed, index_res)
            except Exception as exc:
                self._index_error = repr(exc)
        # Per-trajectory segment-range bounds for reduceat aggregation.
        self._starts = self.packed.offsets[:-1]
        self._has_segments = self.packed.offsets[1:] > self.packed.offsets[:-1]

    # Aggregation helpers --------------------------------------------------
    def _per_traj_any(self, segment_mask: np.ndarray) -> np.ndarray:
        """(T,) any-highlight flag via logical reduceat over owner ranges."""
        out = np.zeros(len(self.dataset), dtype=bool)
        if segment_mask.any():
            red = np.bitwise_or.reduceat(segment_mask, self._starts)
            # reduceat on an empty range returns the element at the start
            # index of the *next* range; mask those out
            out = red & self._has_segments
        return out

    def _per_traj_time(self, segment_mask: np.ndarray) -> np.ndarray:
        """(T,) highlighted seconds via add.reduceat of segment dts."""
        dt = (self.packed.t1 - self.packed.t0) * segment_mask
        red = np.add.reduceat(dt, self._starts)
        return np.where(self._has_segments, red, 0.0)

    # Query ------------------------------------------------------------------
    def query(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
        assignment: CellAssignment | None = None,
    ) -> QueryResult:
        """Run one coordinated-brushing query.

        Parameters
        ----------
        canvas:
            The brush canvas; only strokes of ``color`` participate.
        color:
            Which brush color to evaluate.
        window:
            Optional temporal filter (default: entire experiment).
        assignment:
            Optional layout assignment restricting the *displayed* set
            and providing group structure.  The segment masks still
            cover the whole dataset (highlighting is a property of the
            data); support counts use only displayed trajectories, as
            on the real wall.
        """
        t_start = time.perf_counter()
        window = window or TimeWindow.all()
        n_traj = len(self.dataset)
        degradation = DegradationReport()

        # 1. temporal mask
        tmask = window.segment_mask(self.packed, self.dataset)

        # 2+3. spatial hit mask (candidates via index when present).
        # The index is one rung of the degradation ladder: if it
        # misbehaves mid-query the engine falls back to the exact
        # brute-force scan, records the event, and never raises.
        centers, radii = canvas.stamps_of(color)
        if len(centers) == 0:
            smask = np.zeros(self.packed.n_segments, dtype=bool)
        elif self.index is not None:
            try:
                cand = self.index.candidates_for_discs(centers, radii)
                # only candidates that also pass the time filter need testing
                cand = cand[tmask[cand]]
                smask = canvas.packed_hit_mask(color, self.packed, candidates=cand)
            except Exception as exc:
                degradation.record(
                    "index-failure",
                    scope="index",
                    action="degraded-brute-force",
                    detail=repr(exc),
                )
                smask = canvas.packed_hit_mask(color, self.packed)
        else:
            if self._index_error is not None:
                degradation.record(
                    "index-build-failure",
                    scope="index",
                    action="degraded-brute-force",
                    detail=self._index_error,
                )
            smask = canvas.packed_hit_mask(color, self.packed)

        segment_mask = smask & tmask

        # 4. per-trajectory aggregation
        traj_mask = self._per_traj_any(segment_mask)
        traj_time = self._per_traj_time(segment_mask)

        # 5. displayed subset + group support
        if assignment is None:
            displayed = np.ones(n_traj, dtype=bool)
        else:
            displayed = np.zeros(n_traj, dtype=bool)
            shown = assignment.displayed_indices()
            displayed[shown[shown < n_traj]] = True

        group_support: dict[str, GroupSupport] = {}
        if assignment is not None and assignment.groups is not None:
            for gi, spec in enumerate(assignment.groups):
                cells = np.flatnonzero(assignment.group_of_cell == gi)
                trajs = assignment.cell_to_traj[cells]
                trajs = trajs[trajs >= 0]
                n_disp = len(trajs)
                n_hi = int(traj_mask[trajs].sum())
                group_support[spec.name] = GroupSupport(spec.name, n_disp, n_hi)

        elapsed = time.perf_counter() - t_start
        return QueryResult(
            color=color,
            segment_mask=segment_mask,
            traj_mask=traj_mask,
            traj_highlight_time=traj_time,
            displayed=displayed,
            group_support=group_support,
            elapsed_s=elapsed,
            degraded=degradation.degraded,
            degradation=degradation if degradation.degraded else None,
        )

    def query_all_colors(
        self,
        canvas: BrushCanvas,
        *,
        window: TimeWindow | None = None,
        assignment: CellAssignment | None = None,
    ) -> dict[str, QueryResult]:
        """Evaluate every color on the canvas (multi-query sessions)."""
        return {
            color: self.query(canvas, color, window=window, assignment=assignment)
            for color in canvas.colors()
        }
