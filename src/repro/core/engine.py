"""The coordinated-brushing query engine.

One engine instance binds a dataset (through its packed segment view)
and optionally a spatial index; :meth:`query` evaluates a brush canvas
color under a time window across *every* trajectory at once.

Since the staged-pipeline refactor the engine is a thin façade over
the :mod:`repro.core.plan` machinery: a :class:`QueryPlanner` builds a
DAG of named stages

1. ``temporal_mask`` — which segments fall in the window (vectorized
   over the packed arrays, fractional windows resolved per owner);
2. ``spatial_candidates`` — the index narrows the segment set to those
   near the brushed region (skipped without an index);
3. ``brush_hit`` — exact capsule hit-testing against the stamps;
4. ``combine`` — spatial ∧ temporal segment mask;
5. ``aggregate`` — per-trajectory any-highlight flags and highlighted
   time via ``np.bitwise_or.reduceat`` / ``np.add.reduceat`` over the
   packed ownership ranges (no Python loop over trajectories);
6. ``group_support`` — counts per group for the displayed subset;

and a :class:`QueryExecutor` runs them through a keyed
:class:`StageCache`.  A slider-only change re-executes just
``temporal_mask → combine → aggregate``; a color-only change reuses
the temporal mask outright; :meth:`query_all_colors` computes the
temporal mask once for N colors.  Every query carries a
:class:`QueryTrace` (per-stage wall time, cardinality, cache
hit/miss) on its result.

An engine carrying a :class:`~repro.core.aggregate.SummaryPyramid`
(``use_aggregate=True``, or a prebuilt/attached pyramid) routes
through the aggregate-first plan instead: supernodes are tri-stated
from summary statistics (``agg_temporal → agg_spatial → agg_brush →
classify``) and only inconclusive cells drill down to the exact
per-segment kernels (``drilldown``) — bit-identical results, cold cost
proportional to the brushed region rather than the dataset.

This is the "scalable" in scalable visual queries: the cold path is a
few vectorized passes over flat arrays (or over supernode summaries),
and the warm path touches only the stages whose inputs actually
changed.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.core.aggregate.pyramid import (
    DEFAULT_LEVELS,
    DEFAULT_RES,
    DEFAULT_TBUCKETS,
    SummaryPyramid,
)
from repro.core.canvas import BrushCanvas
from repro.core.plan.cache import ShardedStageCache, StageCache
from repro.core.plan.executor import Deadline, QueryExecutor
from repro.core.plan.planner import QueryPlan, QueryPlanner
from repro.core.plan.spec import QuerySpec
from repro.core.plan.trace import QueryTrace
from repro.core.result import QueryResult
from repro.core.spatial_index import UniformGridIndex
from repro.core.temporal import TimeWindow
from repro.layout.cells import CellAssignment
from repro.resilience.health import DegradationReport
from repro.trajectory.dataset import TrajectoryDataset

__all__ = ["CoordinatedBrushingEngine"]


class CoordinatedBrushingEngine:
    """Evaluates visual queries over one dataset.

    Parameters
    ----------
    dataset:
        The trajectory collection to query.
    use_index:
        Build a :class:`UniformGridIndex` for sublinear brush testing.
        On by default; ablation A2 turns it off.
    index_res:
        Grid resolution of the index.
    cache_capacity:
        Stage-cache size (number of retained stage outputs).
    index:
        A prebuilt :class:`UniformGridIndex` over this dataset's packed
        view to adopt instead of building one — the shared-memory
        attach path (:mod:`repro.store`) passes the index rebuilt from
        shared cell tables here, skipping the counting sort entirely.
    cache:
        An existing :class:`StageCache` (or thread-safe
        :class:`ShardedStageCache`) to adopt instead of building a
        private one.  The rollover path (:mod:`repro.store.ingest`)
        hands each successor-epoch engine the *same* cache: keys embed
        the dataset epoch and store token, so old-epoch entries are
        unreachable by new-epoch queries (and age out via LRU) while
        still serving any session pinned to the old epoch.
    use_aggregate:
        Build a :class:`SummaryPyramid` and route queries through the
        aggregate-first plan.  Off by default on the base engine (the
        legacy per-segment route); the multi-tenant
        :class:`~repro.store.service.SharedQueryEngine` turns it on.
        Like the index, the pyramid is an acceleration: a failed build
        degrades to the legacy route instead of failing construction.
    pyramid:
        A prebuilt :class:`SummaryPyramid` over this dataset's packed
        view to adopt instead of building one — the shared-memory
        attach path passes the pyramid rebuilt from shared arena tables
        here.  Passing one implies ``use_aggregate=True``.
    aggregate_res, aggregate_tbuckets, aggregate_levels:
        Pyramid geometry when building one (leaf grid resolution, time
        buckets per cell, coarsening ladder).

    Thread safety: an engine whose ``cache`` is a
    :class:`ShardedStageCache` is safe for concurrent ``query`` calls —
    the dataset, packed view, and index are immutable after
    construction and queries keep all per-call state on the stack.
    This is the multi-tenant service's lock-free read path; the plain
    single-user default (private :class:`StageCache`) stays
    single-threaded.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        *,
        use_index: bool = True,
        index_res: int = 64,
        cache_capacity: int = 128,
        index: UniformGridIndex | None = None,
        cache: StageCache | ShardedStageCache | None = None,
        use_aggregate: bool = False,
        pyramid: SummaryPyramid | None = None,
        aggregate_res: int = DEFAULT_RES,
        aggregate_tbuckets: int = DEFAULT_TBUCKETS,
        aggregate_levels: tuple[int, ...] = DEFAULT_LEVELS,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot build an engine over an empty dataset")
        self.dataset = dataset
        self.packed = dataset.packed()
        # Index construction is an acceleration, not a correctness
        # requirement: a failed build degrades the engine to the
        # brute-force path (recorded per query) instead of taking the
        # session down.
        self.index: UniformGridIndex | None = None
        self._index_error: str | None = None
        self._use_index = use_index
        if index is not None:
            if index.packed is not self.packed:
                raise ValueError(
                    "prebuilt index was not built over this dataset's packed view"
                )
            self.index = index
            self._use_index = True
        elif use_index:
            try:
                self.index = UniformGridIndex(self.packed, index_res)
            except Exception as exc:
                self._index_error = repr(exc)
        # The summary pyramid follows the same contract as the index:
        # an acceleration whose build failure degrades the engine to the
        # legacy per-segment route rather than failing construction.
        self.pyramid: SummaryPyramid | None = None
        self._pyramid_error: str | None = None
        self._use_aggregate = use_aggregate or pyramid is not None
        if pyramid is not None:
            if pyramid.packed is not self.packed:
                raise ValueError(
                    "prebuilt pyramid was not built over this dataset's "
                    "packed view"
                )
            self.pyramid = pyramid
        elif use_aggregate:
            try:
                self.pyramid = SummaryPyramid.build(
                    self.packed,
                    dataset,
                    res=aggregate_res,
                    n_tbuckets=aggregate_tbuckets,
                    levels=aggregate_levels,
                )
            except Exception as exc:
                self._pyramid_error = repr(exc)
        self.cache = cache if cache is not None else StageCache(cache_capacity)
        self.planner = QueryPlanner()
        self.executor = QueryExecutor(
            dataset, self.packed, self.index, self.cache,
            index_error=self._index_error,
            pyramid=self.pyramid,
        )

    # Aggregation helpers (kept as public-ish API; executor owns the
    # kernels) -----------------------------------------------------------
    def _per_traj_any(self, segment_mask: np.ndarray) -> np.ndarray:
        """(T,) any-highlight flag via logical reduceat over owner ranges."""
        return self.executor._per_traj_any(segment_mask)

    def _per_traj_time(self, segment_mask: np.ndarray) -> np.ndarray:
        """(T,) highlighted seconds via add.reduceat of segment dts."""
        return self.executor._per_traj_time(segment_mask)

    # Planning -----------------------------------------------------------
    def _index_token(self) -> tuple | None:
        if self.index is None:
            return None
        return getattr(self.index, "cache_token", ("anon-index", id(self.index)))

    def _pyramid_token(self) -> tuple | None:
        if self.pyramid is None:
            return None
        return self.pyramid.cache_token

    def plan(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
        assignment: CellAssignment | None = None,
    ) -> QueryPlan:
        """Build (without executing) the stage plan for a query —
        introspection for tests, tools, and benchmarks."""
        window = window or TimeWindow.all()
        spec = QuerySpec.capture(
            self.dataset, canvas, color, window, assignment,
            use_index=self._use_index,
            use_aggregate=self._use_aggregate,
        )
        return self.planner.plan(
            spec,
            index_token=self._index_token(),
            pyramid_token=self._pyramid_token(),
        )

    # Query ------------------------------------------------------------------
    def query(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
        assignment: CellAssignment | None = None,
        deadline_s: float | None = None,
    ) -> QueryResult:
        """Run one coordinated-brushing query.

        Parameters
        ----------
        canvas:
            The brush canvas; only strokes of ``color`` participate.
        color:
            Which brush color to evaluate.
        window:
            Optional temporal filter (default: entire experiment).
        assignment:
            Optional layout assignment restricting the *displayed* set
            and providing group structure.  The segment masks still
            cover the whole dataset (highlighting is a property of the
            data); support counts use only displayed trajectories, as
            on the real wall.
        deadline_s:
            Wall-clock budget for this query (``None`` = unbounded).
            The budget starts now — planning counts against it — and is
            enforced at stage boundaries: on expiry the remaining
            stages are synthesized as empty partials and the result
            comes back ``degraded`` (never cached) instead of raising.
        """
        t_plan = time.perf_counter()
        deadline = Deadline.after(deadline_s) if deadline_s is not None else None
        window = window or TimeWindow.all()
        spec = QuerySpec.capture(
            self.dataset, canvas, color, window, assignment,
            use_index=self._use_index,
            deadline_s=deadline_s,
            use_aggregate=self._use_aggregate,
        )
        plan = self.planner.plan(
            spec,
            index_token=self._index_token(),
            pyramid_token=self._pyramid_token(),
        )
        trace = QueryTrace(strategy=plan.strategy)
        trace.plan_s = time.perf_counter() - t_plan

        t_exec = time.perf_counter()
        degradation = DegradationReport()
        # index/index_error travel as per-run arguments (tests and the
        # degradation ladder may swap self.index between queries, and
        # concurrent lock-free queries must never mutate the shared
        # executor to communicate it)
        outputs = self.executor.run(
            plan, canvas, window, assignment, trace, degradation,
            deadline=deadline,
            index=self.index, index_error=self._index_error,
            pyramid=self.pyramid,
        )
        traj_mask, traj_time = outputs["aggregate"]

        n_traj = len(self.dataset)
        if assignment is None:
            displayed = np.ones(n_traj, dtype=bool)
        else:
            displayed = np.zeros(n_traj, dtype=bool)
            shown = assignment.displayed_indices()
            displayed[shown[shown < n_traj]] = True

        # execute_s also covers result assembly so elapsed_s == total_s
        # keeps "plan + execute" an exhaustive account of the query
        trace.execute_s = time.perf_counter() - t_exec
        result = QueryResult(
            color=color,
            segment_mask=outputs[plan.mask_stage],
            traj_mask=traj_mask,
            traj_highlight_time=traj_time,
            displayed=displayed,
            group_support=outputs.get("group_support") or {},
            elapsed_s=trace.total_s,
            degraded=degradation.degraded,
            degradation=degradation if degradation.degraded else None,
            trace=trace,
        )
        obs.counter_add("query.count", 1, strategy=plan.strategy)
        obs.observe("query.seconds", trace.total_s, strategy=plan.strategy)
        if degradation.degraded:
            obs.counter_add("query.degraded", 1, strategy=plan.strategy)
        return result

    def query_all_colors(
        self,
        canvas: BrushCanvas,
        *,
        window: TimeWindow | None = None,
        assignment: CellAssignment | None = None,
        deadline_s: float | None = None,
    ) -> dict[str, QueryResult]:
        """Evaluate every color on the canvas (multi-query sessions).

        The temporal mask is computed once and shared across all N
        colors through the stage cache (it depends on the window and
        dataset only) — per-trace, at most one ``temporal_mask``
        execution appears as a cache miss.  ``deadline_s`` is a
        *per-color* budget (each color is one query).
        """
        return {
            color: self.query(
                canvas, color, window=window, assignment=assignment,
                deadline_s=deadline_s,
            )
            for color in canvas.colors()
        }

    # Cache management ---------------------------------------------------
    def cache_stats(self) -> dict[str, float]:
        """Stage-cache counters: hits, misses, evictions, hit_rate."""
        s = self.cache.stats
        return {
            "entries": len(self.cache),
            "hits": s.hits,
            "misses": s.misses,
            "evictions": s.evictions,
            "invalidations": s.invalidations,
            "hit_rate": s.hit_rate,
        }

    def invalidate_cache(self) -> None:
        """Drop every cached stage output (epoch keys make this a
        hygiene operation, never a correctness requirement)."""
        self.cache.clear()
