"""The hierarchical spatio-temporal summary pyramid.

One :class:`SummaryPyramid` summarizes a dataset's packed segment view
into ``res × res`` spatial grid cells × ``n_tbuckets`` time buckets
(**supernodes**, SOM-style per §VI-C of the paper).  Per supernode it
keeps sufficient statistics the aggregate-first planner classifies
against without touching raw segments:

* segment membership as a CSR table (``entries``/``offsets``) plus the
  inverse ``node_of`` map — all nodes of one spatial cell are adjacent
  in node space, so "the segments of these cells" is a gather over
  contiguous ranges;
* a spatial bounding box over the member segments' full extents (a
  segment is binned by midpoint but may overhang its cell; the bbox
  accounts for it, which is what makes bbox-based pruning rigorous);
* temporal extents, absolute (min/max of ``t0``/``t1``) **and**
  fractional (min/max of ``(t - start) / duration`` of the owning
  trajectory) so both window modes classify in O(nodes);
* a per-spatial-cell trajectory bitset (``uint64`` words) answering
  "which trajectories could this region touch" without a segment scan;
* per-level coarsened bounding boxes (the *pyramid*): a brush query
  descends coarse → fine, discarding all-out regions wholesale before
  any per-cell work.

Everything is a flat numpy table so the shared arena can pack the
pyramid as 16B-aligned arrays at publish time; :meth:`from_tables`
adopts those (read-only, zero-copy) views on attach without rebuilding.

Exactness contract: the pyramid itself never decides a boundary case.
Classification (see :mod:`~repro.core.aggregate.kernels`) claims
all-in/all-out only with an epsilon margin; everything else drills
down to the *exact* legacy kernels over the member segments.  The
fractional temporal statistics are therefore advisory (their rounding
differs from the legacy ``start + f * duration`` form), while
``traj_start``/``traj_dur`` are computed with the exact expressions
:meth:`TimeWindow.segment_mask` uses, so drill-down refinement is
bit-identical to the legacy temporal stage.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.trajectory.dataset import PackedSegments, TrajectoryDataset

__all__ = ["SummaryPyramid"]

#: Default spatial resolution of the leaf grid (matches the spatial index).
DEFAULT_RES = 64
#: Default number of fractional time buckets per cell.
DEFAULT_TBUCKETS = 8
#: Default coarsening ladder (coarsest first, last level == leaf res).
DEFAULT_LEVELS = (8, 16, 32, 64)


class SummaryPyramid:
    """Immutable supernode statistics over one packed segment view.

    Build with :meth:`build` (vectorized, one counting sort) or adopt
    shared-arena tables with :meth:`from_tables`.  All arrays are
    read-only after construction — a pyramid is published into epoch
    snapshots and read lock-free by concurrent sessions, exactly like
    the packed view and spatial index it summarizes.

    Attributes
    ----------
    packed:
        The summarized segment view (identity is part of the
        correctness contract: classifying against one epoch's pyramid
        and drilling into another epoch's segments is a bug the engine
        guards against).
    res / n_tbuckets / levels:
        Grid resolution, time-bucket count, coarsening ladder.
    node_of:
        (S,) int32 supernode id per segment row
        (``node = (cy * res + cx) * n_tbuckets + tbucket``).
    entries / offsets:
        CSR over nodes: node ``n`` owns segment rows
        ``entries[offsets[n]:offsets[n+1]]``.
    bbox:
        (n_nodes, 4) ``[xmin, ymin, xmax, ymax]`` over member segment
        extents (``+inf``/``-inf`` sentinels for empty nodes).
    tstats:
        (n_nodes, 8) temporal stats ``[t0min, t0max, t1min, t1max,
        g0min, g0max, g1min, g1max]`` where ``g = (t - start) / dur``
        of the owning trajectory (NaN when a duration is non-positive,
        which forces the node inconclusive).
    bits:
        (res*res, n_words) uint64 per-cell trajectory bitsets.
    level_bbox / level_offsets:
        Concatenated per-level cell bboxes, coarsest first; level ``i``
        spans rows ``level_offsets[i]:level_offsets[i+1]`` and the last
        level is the leaf grid itself.
    traj_start / traj_dur:
        (T,) per-trajectory start time and duration, computed with the
        exact expressions the legacy temporal stage uses.
    lo / cell_size:
        Grid geometry (like the spatial index's).
    """

    __slots__ = (
        "packed",
        "res",
        "n_tbuckets",
        "levels",
        "lo",
        "cell_size",
        "node_of",
        "entries",
        "offsets",
        "bbox",
        "tstats",
        "bits",
        "level_bbox",
        "level_offsets",
        "traj_start",
        "traj_dur",
        "spatial_eps",
        "_cell_of_rows",
    )

    # Construction --------------------------------------------------------
    @classmethod
    def build(
        cls,
        packed: PackedSegments,
        dataset: TrajectoryDataset,
        *,
        res: int = DEFAULT_RES,
        n_tbuckets: int = DEFAULT_TBUCKETS,
        levels: tuple[int, ...] = DEFAULT_LEVELS,
    ) -> "SummaryPyramid":
        """Summarize ``packed`` into a fresh pyramid (one pass, no
        Python loop over segments)."""
        t_build = time.perf_counter()
        _validate_shape(res, n_tbuckets, levels)
        if packed.n_segments == 0:
            raise ValueError("cannot summarize an empty segment set")
        if len(dataset) == 0:
            raise ValueError("cannot summarize an empty dataset")

        self = cls.__new__(cls)
        self.packed = packed
        self.res = int(res)
        self.n_tbuckets = int(n_tbuckets)
        self.levels = tuple(int(v) for v in levels)

        # grid geometry over segment endpoint extents (same padding as
        # the spatial index, so boundary points land strictly inside)
        seg_lo = np.minimum(packed.a, packed.b)
        seg_hi = np.maximum(packed.a, packed.b)
        lo_pt = seg_lo.min(axis=0)
        hi_pt = seg_hi.max(axis=0)
        span = np.maximum(hi_pt - lo_pt, 1e-12)
        self.lo = lo_pt - 1e-9 * span
        self.cell_size = (span * (1.0 + 2e-9)) / res
        self.spatial_eps = float(1e-9 * span.max())

        # exact per-trajectory start/duration — the same expressions
        # TimeWindow.segment_mask evaluates, so drill-down refinement
        # reproduces the legacy temporal predicate bit for bit
        n_traj = len(dataset)
        self.traj_start = np.fromiter(
            (float(t.times[0]) for t in dataset), dtype=np.float64, count=n_traj
        )
        self.traj_dur = np.fromiter(
            (t.duration for t in dataset), dtype=np.float64, count=n_traj
        )

        # bin each segment: spatial cell by midpoint, time bucket by the
        # fractional midpoint of its span within the owning trajectory
        mid = 0.5 * (packed.a + packed.b)
        cells2 = np.floor((mid - self.lo) / self.cell_size).astype(np.int64)
        np.clip(cells2, 0, res - 1, out=cells2)
        cell = cells2[:, 1] * res + cells2[:, 0]

        starts_of = self.traj_start[packed.owner]
        durs_of = self.traj_dur[packed.owner]
        tmid = 0.5 * (packed.t0 + packed.t1)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = (tmid - starts_of) / durs_of
        tb = np.zeros(packed.n_segments, dtype=np.int64)
        good = np.isfinite(frac)
        np.floor(frac * n_tbuckets, out=frac, where=good)
        tb[good] = frac[good].astype(np.int64)
        np.clip(tb, 0, n_tbuckets - 1, out=tb)

        node = cell * n_tbuckets + tb
        n_nodes = res * res * n_tbuckets
        self.node_of = node.astype(np.int32)

        # CSR over nodes via one stable counting sort
        order = np.argsort(node, kind="stable")
        self.entries = order.astype(np.int64)
        counts = np.bincount(node, minlength=n_nodes)
        self.offsets = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        has = counts > 0
        occ_starts = self.offsets[:-1][has]

        def _stat(arr: np.ndarray, op: np.ufunc, empty: float) -> np.ndarray:
            # Reduce over occupied nodes only: consecutive occupied
            # starts tile the sorted positions exactly (empty nodes are
            # zero-width in CSR) and the final run extends to the end
            # of the array.  Clamping all offsets into range instead
            # would hand reduceat a start == stop pair for the last
            # occupied node, silently dropping its final member.
            out = np.full(n_nodes, empty, dtype=np.float64)
            out[has] = op.reduceat(arr[order], occ_starts)
            return out

        # per-node bbox over full segment extents (not just midpoints)
        self.bbox = np.column_stack(
            [
                _stat(seg_lo[:, 0], np.minimum, np.inf),
                _stat(seg_lo[:, 1], np.minimum, np.inf),
                _stat(seg_hi[:, 0], np.maximum, -np.inf),
                _stat(seg_hi[:, 1], np.maximum, -np.inf),
            ]
        )

        # temporal stats: absolute extents are exact; fractional ones
        # carry division rounding and are only ever used with margins
        with np.errstate(divide="ignore", invalid="ignore"):
            g0 = (packed.t0 - starts_of) / durs_of
            g1 = (packed.t1 - starts_of) / durs_of
        bad = ~(np.isfinite(g0) & np.isfinite(g1))
        if bad.any():
            g0 = np.where(bad, np.nan, g0)
            g1 = np.where(bad, np.nan, g1)
        self.tstats = np.column_stack(
            [
                _stat(packed.t0, np.minimum, np.inf),
                _stat(packed.t0, np.maximum, -np.inf),
                _stat(packed.t1, np.minimum, np.inf),
                _stat(packed.t1, np.maximum, -np.inf),
                _stat(g0, np.minimum, np.inf),
                _stat(g0, np.maximum, -np.inf),
                _stat(g1, np.minimum, np.inf),
                _stat(g1, np.maximum, -np.inf),
            ]
        )

        # per-cell trajectory bitsets (cells, not nodes: at 100x scale
        # per-node bitsets would be n_tbuckets times larger for no
        # classification gain)
        n_cells = res * res
        n_words = (n_traj + 63) // 64
        bits = np.zeros((n_cells, n_words), dtype=np.uint64)
        pair = np.unique(cell * np.int64(n_traj) + packed.owner)
        p_cell = pair // n_traj
        p_owner = pair % n_traj
        np.bitwise_or.at(
            bits,
            (p_cell, p_owner >> 6),
            np.uint64(1) << (p_owner.astype(np.uint64) & np.uint64(63)),
        )
        self.bits = bits

        # the pyramid proper: leaf cell bboxes coarsened per level
        cell_bbox = np.column_stack(
            [
                self.bbox[:, 0].reshape(n_cells, n_tbuckets).min(axis=1),
                self.bbox[:, 1].reshape(n_cells, n_tbuckets).min(axis=1),
                self.bbox[:, 2].reshape(n_cells, n_tbuckets).max(axis=1),
                self.bbox[:, 3].reshape(n_cells, n_tbuckets).max(axis=1),
            ]
        )
        level_parts: list[np.ndarray] = []
        for lv in self.levels:
            if lv == res:
                level_parts.append(cell_bbox)
                continue
            f = res // lv
            grid = cell_bbox.reshape(res, res, 4)
            tiled = grid.reshape(lv, f, lv, f, 4)
            coarse = np.empty((lv, lv, 4), dtype=np.float64)
            coarse[..., 0] = tiled[..., 0].min(axis=(1, 3))
            coarse[..., 1] = tiled[..., 1].min(axis=(1, 3))
            coarse[..., 2] = tiled[..., 2].max(axis=(1, 3))
            coarse[..., 3] = tiled[..., 3].max(axis=(1, 3))
            level_parts.append(coarse.reshape(lv * lv, 4))
        self.level_bbox = np.concatenate(level_parts, axis=0)
        self.level_offsets = np.zeros(len(self.levels) + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((lv * lv for lv in self.levels), dtype=np.int64),
            out=self.level_offsets[1:],
        )

        self._cell_of_rows = None
        self._freeze()
        obs.observe(
            "service.aggregate.build_seconds", time.perf_counter() - t_build
        )
        return self

    @classmethod
    def from_tables(
        cls,
        packed: PackedSegments,
        *,
        res: int,
        n_tbuckets: int,
        levels: tuple[int, ...],
        lo: np.ndarray,
        cell_size: np.ndarray,
        node_of: np.ndarray,
        entries: np.ndarray,
        offsets: np.ndarray,
        bbox: np.ndarray,
        tstats: np.ndarray,
        bits: np.ndarray,
        level_bbox: np.ndarray,
        traj_start: np.ndarray,
        traj_dur: np.ndarray,
    ) -> "SummaryPyramid":
        """Adopt pre-built pyramid tables without re-summarizing.

        The zero-copy rebuild path for shared-memory attachment
        (:mod:`repro.store`): the tables are taken as-is — typically
        views into a shared block — validated for mutual consistency,
        and marked read-only, so attaching a published pyramid costs
        O(1) instead of a counting sort over every segment.
        """
        _validate_shape(res, n_tbuckets, levels)
        n_nodes = res * res * n_tbuckets
        if len(offsets) != n_nodes + 1:
            raise ValueError(
                f"offsets has {len(offsets)} entries, expected {n_nodes + 1}"
            )
        if int(offsets[-1]) != packed.n_segments or len(entries) != packed.n_segments:
            raise ValueError("pyramid CSR does not cover every segment exactly once")
        if len(node_of) != packed.n_segments:
            raise ValueError("node_of does not match the segment count")
        if bbox.shape != (n_nodes, 4) or tstats.shape != (n_nodes, 8):
            raise ValueError("per-node stat tables have the wrong shape")
        total_level = int(sum(lv * lv for lv in levels))
        if level_bbox.shape != (total_level, 4):
            raise ValueError("level bbox table does not match the level ladder")
        if len(traj_start) != len(traj_dur):
            raise ValueError("trajectory time tables disagree on length")
        self = cls.__new__(cls)
        self.packed = packed
        self.res = int(res)
        self.n_tbuckets = int(n_tbuckets)
        self.levels = tuple(int(v) for v in levels)
        self.lo = np.asarray(lo, dtype=np.float64)
        self.cell_size = np.asarray(cell_size, dtype=np.float64)
        self.spatial_eps = float(1e-9 * (self.cell_size * self.res).max())
        self.node_of = node_of
        self.entries = entries
        self.offsets = offsets
        self.bbox = bbox
        self.tstats = tstats
        self.bits = bits
        self.level_bbox = level_bbox
        self.traj_start = traj_start
        self.traj_dur = traj_dur
        self.level_offsets = np.zeros(len(self.levels) + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((lv * lv for lv in self.levels), dtype=np.int64),
            out=self.level_offsets[1:],
        )
        self._cell_of_rows = None
        self._freeze()
        return self

    def _freeze(self) -> None:
        for arr in (
            self.lo,
            self.cell_size,
            self.node_of,
            self.entries,
            self.offsets,
            self.bbox,
            self.tstats,
            self.bits,
            self.level_bbox,
            self.level_offsets,
            self.traj_start,
            self.traj_dur,
        ):
            arr.setflags(write=False)

    # Introspection -------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total supernodes (``res * res * n_tbuckets``)."""
        return self.res * self.res * self.n_tbuckets

    @property
    def n_cells(self) -> int:
        """Spatial leaf cells (``res * res``)."""
        return self.res * self.res

    @property
    def n_words(self) -> int:
        """uint64 words per cell bitset."""
        return int(self.bits.shape[1])

    @property
    def node_counts(self) -> np.ndarray:
        """(n_nodes,) member segment count per supernode."""
        return np.diff(self.offsets)

    @property
    def cache_token(self) -> tuple[str, int, int, int, int]:
        """Identity of this pyramid build for query-plan cache keys — a
        rebuilt (or differently parameterized) pyramid must invalidate
        cached aggregate stages, exactly like the index token."""
        return (
            "pyr",
            id(self),
            self.res,
            self.n_tbuckets,
            self.packed.n_segments,
        )

    @property
    def nbytes(self) -> int:
        """Total bytes of the pyramid tables."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "node_of",
                "entries",
                "offsets",
                "bbox",
                "tstats",
                "bits",
                "level_bbox",
                "traj_start",
                "traj_dur",
            )
        )

    def __repr__(self) -> str:
        return (
            f"SummaryPyramid({self.res}x{self.res}x{self.n_tbuckets}, "
            f"levels={self.levels}, {self.packed.n_segments} segs, "
            f"{self.nbytes}B)"
        )

    # Lookups -------------------------------------------------------------
    def level_bboxes(self, level_index: int) -> np.ndarray:
        """(L*L, 4) cell bboxes of one coarsening level."""
        lo, hi = self.level_offsets[level_index], self.level_offsets[level_index + 1]
        return self.level_bbox[lo:hi]

    def cell_of_rows(self) -> np.ndarray:
        """(S,) spatial leaf cell of each segment row (cached)."""
        if self._cell_of_rows is None:
            cells = self.node_of.astype(np.int64) // self.n_tbuckets
            cells.setflags(write=False)
            self._cell_of_rows = cells
        return self._cell_of_rows

    def rows_in_cells(self, cells: np.ndarray) -> np.ndarray:
        """Segment rows of every supernode in the given spatial cells.

        All time buckets of one cell are adjacent in node space, so
        each cell contributes **one contiguous CSR range** — the gather
        is a vectorized multi-range slice, no per-segment Python loop.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if len(cells) == 0:
            return np.empty(0, dtype=np.int64)
        b = self.n_tbuckets
        starts = self.offsets[cells * b]
        stops = self.offsets[(cells + 1) * b]
        return self.entries[_multi_range_indices(starts, stops)]

    def trajectories_in_cells(self, cells: np.ndarray) -> np.ndarray:
        """(T,) bool — trajectories with any segment in the given cells,
        answered from the per-cell bitsets (no segment scan)."""
        n_traj = len(self.traj_start)
        out = np.zeros(n_traj, dtype=bool)
        cells = np.asarray(cells, dtype=np.int64)
        if len(cells) == 0:
            return out
        words = np.bitwise_or.reduce(self.bits[cells], axis=0)
        expanded = (
            words[:, None] >> np.arange(64, dtype=np.uint64)[None, :]
        ) & np.uint64(1)
        out[:] = expanded.ravel()[:n_traj].astype(bool)
        return out


def _multi_range_indices(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[i], stops[i])`` without a Python loop."""
    lens = stops - starts
    keep = lens > 0
    if not keep.all():
        starts, stops, lens = starts[keep], stops[keep], lens[keep]
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    if len(starts) > 1:
        boundaries = np.cumsum(lens)[:-1]
        steps[boundaries] = starts[1:] - stops[:-1] + 1
    return np.cumsum(steps)


def _validate_shape(res: int, n_tbuckets: int, levels: tuple[int, ...]) -> None:
    if res < 1:
        raise ValueError("res must be >= 1")
    if n_tbuckets < 1:
        raise ValueError("n_tbuckets must be >= 1")
    if not levels or levels[-1] != res:
        raise ValueError("levels must end at the leaf resolution")
    if list(levels) != sorted(set(levels)):
        raise ValueError("levels must be strictly increasing")
    for lv in levels:
        if lv < 1 or res % lv:
            raise ValueError(f"level {lv} does not divide the leaf res {res}")
