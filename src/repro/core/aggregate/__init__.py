"""Aggregate-first query planning (§VI-C scalability, Dataopsy direction).

The per-segment query plan scans every packed segment on a cold stage.
This package answers the same queries from a precomputed **summary
pyramid** instead: per grid-cell × time-bucket *supernodes* carrying
sufficient statistics (segment counts, bounding boxes, temporal
extents, per-trajectory bitsets, per-level spatial coarsening).  A
query tri-states each supernode as all-in / all-out / inconclusive and
drills down to raw segments only where the aggregate cannot decide —
the classification is deliberately conservative (epsilon margins route
every boundary case to the exact per-segment kernels), which is what
makes aggregate-first results **bit-identical** to the legacy plan.

Layout:

* :mod:`~repro.core.aggregate.pyramid` — :class:`SummaryPyramid`
  (build / zero-copy adoption of shared-arena tables).
* :mod:`~repro.core.aggregate.kernels` — tri-state classification and
  the vectorized drill-down kernels.
"""

from repro.core.aggregate.kernels import (
    IN,
    MAYBE,
    OUT,
    brush_hit_cells,
    brush_hit_rows,
    brush_hit_rows_scalar,
    classify_spatial,
    classify_temporal,
    refine_temporal_rows,
)
from repro.core.aggregate.pyramid import SummaryPyramid

__all__ = [
    "SummaryPyramid",
    "OUT",
    "MAYBE",
    "IN",
    "classify_temporal",
    "classify_spatial",
    "brush_hit_cells",
    "brush_hit_rows",
    "brush_hit_rows_scalar",
    "refine_temporal_rows",
]
