"""Tri-state classification and drill-down kernels.

The aggregate-first stages call these against a
:class:`~repro.core.aggregate.pyramid.SummaryPyramid`:

* :func:`classify_temporal` / :func:`classify_spatial` tri-state
  supernodes / spatial cells as :data:`OUT` / :data:`MAYBE` /
  :data:`IN` from the summary statistics alone;
* :func:`brush_hit_rows` and :func:`refine_temporal_rows` are the
  drill-down kernels — **exact**, elementwise-identical to the legacy
  per-segment stages, run only over the rows of inconclusive cells.

Parity argument (the whole point).  All-in/all-out is only ever
claimed with a margin:

* spatially, a cell is OUT only when every stamp's distance to the
  cell's bbox exceeds ``radius + eps``, and IN only when some stamp
  covers the entire bbox with ``radius - eps`` to spare.  Member
  segments lie inside the bbox, and the legacy capsule test's rounding
  is orders of magnitude below ``eps``, so the legacy kernel provably
  agrees on every member segment;
* temporally, absolute windows classify on exact min/max statistics
  (pure comparisons, no arithmetic — no margin needed), while
  fractional windows use margins around the rounded ``(t - start) /
  dur`` statistics and leave every boundary node inconclusive.

Inconclusive work is then decided by the exact kernels below, which
evaluate the very same float expressions the legacy stages evaluate —
so the final segment mask is bit-identical to the legacy plan's, by
construction, for every query.
"""

from __future__ import annotations

import numpy as np

from repro.core.temporal import TimeWindow
from repro.trajectory.dataset import PackedSegments
from repro.util.geometry import point_segment_distance

from repro.core.aggregate.pyramid import SummaryPyramid

__all__ = [
    "OUT",
    "MAYBE",
    "IN",
    "TEMPORAL_EPS",
    "classify_temporal",
    "classify_spatial",
    "brush_hit_cells",
    "brush_hit_mask",
    "brush_hit_rows",
    "brush_hit_rows_scalar",
    "refine_temporal_rows",
]

#: Tri-state codes, ordered so ``min(spatial, temporal)`` combines them.
OUT, MAYBE, IN = 0, 1, 2

#: Margin on fractional temporal statistics.  The rounding error of
#: ``(t - start) / dur`` versus the legacy ``t >= start + f * dur`` form
#: is ~1e-15 at study-like time scales; 1e-9 dwarfs it while leaving a
#: vanishingly thin inconclusive band for the exact refinement to decide.
TEMPORAL_EPS = 1e-9


def classify_temporal(
    pyramid: SummaryPyramid, window: TimeWindow, *, eps: float = TEMPORAL_EPS
) -> np.ndarray:
    """(n_nodes,) int8 tri-state of every supernode against a window.

    Empty supernodes classify OUT (they contribute no segments either
    way).  NaN fractional statistics (non-positive durations) compare
    False on every test and land on MAYBE — the exact refinement then
    evaluates whatever the legacy predicate evaluates.
    """
    n = pyramid.n_nodes
    if window.is_everything:
        cls = np.full(n, IN, dtype=np.int8)
        cls[pyramid.node_counts == 0] = OUT
        return cls
    ts = pyramid.tstats
    if window.fractional:
        all_in = (ts[:, 6] >= window.lo + eps) & (ts[:, 5] <= window.hi - eps)
        all_out = (ts[:, 7] < window.lo - eps) | (ts[:, 4] > window.hi + eps)
    else:
        # exact min/max comparisons: no arithmetic, no margin needed
        all_in = (ts[:, 2] >= window.lo) & (ts[:, 1] <= window.hi)
        all_out = (ts[:, 3] < window.lo) | (ts[:, 0] > window.hi)
    cls = np.full(n, MAYBE, dtype=np.int8)
    cls[all_in] = IN
    cls[all_out] = OUT  # empty nodes satisfy both; OUT wins
    return cls


def classify_spatial(
    pyramid: SummaryPyramid,
    centers: np.ndarray,
    radii: np.ndarray,
    *,
    eps: float | None = None,
) -> np.ndarray:
    """(n_cells,) int8 tri-state of every leaf cell against brush discs.

    Descends the coarsening ladder: a coarse cell whose bbox is farther
    than ``radius + eps`` from every stamp is discarded with all its
    descendants (the bulk of the grid, for a localized brush).  At the
    leaf, surviving cells upgrade to IN when some stamp's disc covers
    the whole cell bbox with margin — their member segments then need
    no capsule test at all.
    """
    centers = np.asarray(centers, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    margin = pyramid.spatial_eps if eps is None else float(eps)
    cls = np.zeros(pyramid.n_cells, dtype=np.int8)
    if len(centers) == 0:
        return cls

    levels = pyramid.levels
    active = np.arange(levels[0] * levels[0], dtype=np.int64)
    for li, lv in enumerate(levels):
        bb = pyramid.level_bboxes(li)[active]
        near = _disc_near_bbox(bb, centers, radii + margin)
        active = active[near]
        if len(active) == 0:
            return cls
        if li + 1 < len(levels):
            nxt = levels[li + 1]
            f = nxt // lv
            offs = np.arange(f, dtype=np.int64)
            cy, cx = active // lv, active % lv
            ccy = (cy[:, None] * f + offs[None, :])[:, :, None]
            ccx = (cx[:, None] * f + offs[None, :])[:, None, :]
            active = (ccy * nxt + ccx).reshape(-1)

    cls[active] = MAYBE
    bb = pyramid.level_bboxes(len(levels) - 1)[active]
    covered = _disc_covers_bbox(bb, centers, radii - margin)
    cls[active[covered]] = IN
    return cls


def _disc_near_bbox(
    bb: np.ndarray, centers: np.ndarray, reach: np.ndarray
) -> np.ndarray:
    """(N,) bool: some disc's reach touches the bbox (min-distance test).

    Empty-cell sentinel bboxes (``+inf``/``-inf``) yield infinite
    distances and are pruned for free.
    """
    dx = np.maximum(
        np.maximum(bb[None, :, 0] - centers[:, 0, None], 0.0),
        centers[:, 0, None] - bb[None, :, 2],
    )
    dy = np.maximum(
        np.maximum(bb[None, :, 1] - centers[:, 1, None], 0.0),
        centers[:, 1, None] - bb[None, :, 3],
    )
    d2 = dx * dx + dy * dy
    return (d2 <= (reach[:, None] * reach[:, None])).any(axis=0)


def _disc_covers_bbox(
    bb: np.ndarray, centers: np.ndarray, reach: np.ndarray
) -> np.ndarray:
    """(N,) bool: some single disc contains the whole bbox (max-corner
    distance test).  Discs whose shrunken reach is non-positive never
    cover anything."""
    mdx = np.maximum(
        np.abs(centers[:, 0, None] - bb[None, :, 0]),
        np.abs(centers[:, 0, None] - bb[None, :, 2]),
    )
    mdy = np.maximum(
        np.abs(centers[:, 1, None] - bb[None, :, 1]),
        np.abs(centers[:, 1, None] - bb[None, :, 3]),
    )
    md2 = mdx * mdx + mdy * mdy
    ok = (md2 <= (reach[:, None] * reach[:, None])) & (reach[:, None] > 0.0)
    return ok.any(axis=0)


# reprolint: exempt=RL011 — boundary-atomic stage kernel: the loop is
# bounded by the brush stamp count (not dataset size) and deadline
# checks sit at the enclosing stage boundary (RL008 bans mid-stage
# checks)
def brush_hit_rows(
    centers: np.ndarray,
    radii: np.ndarray,
    packed: PackedSegments,
    rows: np.ndarray,
    *,
    chunk: int = 262_144,
) -> np.ndarray:
    """Exact capsule hit-test over a row subset, fully vectorized.

    Elementwise-identical to
    :meth:`~repro.core.canvas.BrushCanvas.segment_hit_mask` — the same
    ``point_segment_distance`` kernel, the same ``d <= radius``
    comparison — restricted to ``rows``, so drill-down refinement over
    inconclusive cells reproduces the legacy stage bit for bit without
    rescanning the dataset (and without any per-segment Python loop).

    Stamps are processed one at a time behind a conservative bbox
    lower-bound prefilter: the point-to-segment-bbox distance never
    exceeds the true capsule distance, so any (row, stamp) pair whose
    bound clears ``radius`` by more than an epsilon margin cannot hit
    and is skipped without running the exact kernel.  Pairs inside the
    margin — where float rounding could matter — always fall through
    to the exact test, and rows already hit by an earlier stamp drop
    out of later passes; the result is decided by the identical float
    expression in every case.  On drill-down workloads (rows clustered
    in a stamp's boundary cells, most stamps far away) this cuts the
    exact-kernel evaluations by one to two orders of magnitude.
    """
    del chunk  # kept for API stability; pruning replaced the chunking
    rows = np.asarray(rows, dtype=np.int64)
    out = np.zeros(len(rows), dtype=bool)
    if len(centers) == 0 or len(rows) == 0:
        return out
    a = packed.a[rows]
    b = packed.b[rows]
    seg_lo = np.minimum(a, b)
    seg_hi = np.maximum(a, b)
    scale = max(
        float(np.abs(seg_lo).max(initial=0.0)),
        float(np.abs(seg_hi).max(initial=0.0)),
        float(np.abs(centers).max(initial=0.0)),
        float(radii.max(initial=0.0)),
    )
    margin = 1e-9 * scale
    for j in range(len(centers)):
        pending = np.flatnonzero(~out)
        if not len(pending):
            break
        cx, cy = centers[j]
        reach = radii[j] + margin
        dx = np.maximum(
            np.maximum(seg_lo[pending, 0] - cx, cx - seg_hi[pending, 0]), 0.0
        )
        dy = np.maximum(
            np.maximum(seg_lo[pending, 1] - cy, cy - seg_hi[pending, 1]), 0.0
        )
        near = pending[dx * dx + dy * dy <= reach * reach]
        if not len(near):
            continue
        d = point_segment_distance(centers[j], a[near], b[near])
        out[near] = d <= radii[j]
    return out


# reprolint: exempt=RL011 — boundary-atomic stage kernel: deadline checks
# happen between stages (RL008 bans mid-stage checks), and the per-cell
# loop is bounded by the drill-down cell budget upstream
def brush_hit_cells(
    pyramid: SummaryPyramid,
    centers: np.ndarray,
    radii: np.ndarray,
    packed: PackedSegments,
    cells: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact capsule hit-test over every member row of the given cells.

    Returns ``(rows, hits)``: the member rows (as
    :meth:`SummaryPyramid.rows_in_cells` orders them) and their exact
    hit mask — elementwise-identical to :func:`brush_hit_rows` over the
    same rows, with one more pruning tier in front: a stamp whose
    distance lower bound to a cell's member bbox clears ``radius +
    spatial_eps`` skips that cell's rows wholesale (member segments lie
    inside the bbox, so none can hit).  Surviving rows still pass the
    per-row bbox bound before the exact kernel decides.  This is the
    drill-down workhorse: inconclusive cells hug each stamp's boundary,
    so per stamp the candidate set shrinks from "all inconclusive rows"
    to "rows of the few cells on *this* stamp's rim".
    """
    from repro.core.aggregate.pyramid import _multi_range_indices

    cells = np.asarray(cells, dtype=np.int64)
    rows = pyramid.rows_in_cells(cells)
    out = np.zeros(len(rows), dtype=bool)
    if len(centers) == 0 or len(rows) == 0:
        return rows, out
    # member-extent bbox per cell (leaf level of the coarsening ladder;
    # empty cells carry ±inf sentinels and never test near)
    bb = pyramid.level_bboxes(len(pyramid.levels) - 1)[cells]
    tb = pyramid.n_tbuckets
    lens = pyramid.offsets[(cells + 1) * tb] - pyramid.offsets[cells * tb]
    pos_offsets = np.zeros(len(cells) + 1, dtype=np.int64)
    np.cumsum(lens, out=pos_offsets[1:])
    a = packed.a[rows]
    b = packed.b[rows]
    seg_lo = np.minimum(a, b)
    seg_hi = np.maximum(a, b)
    margin = pyramid.spatial_eps
    for j in range(len(centers)):
        cx, cy = centers[j]
        reach = radii[j] + margin
        dxc = np.maximum(np.maximum(bb[:, 0] - cx, cx - bb[:, 2]), 0.0)
        dyc = np.maximum(np.maximum(bb[:, 1] - cy, cy - bb[:, 3]), 0.0)
        near = np.flatnonzero(dxc * dxc + dyc * dyc <= reach * reach)
        if not len(near):
            continue
        cand = _multi_range_indices(pos_offsets[near], pos_offsets[near + 1])
        cand = cand[~out[cand]]
        if not len(cand):
            continue
        dx = np.maximum(
            np.maximum(seg_lo[cand, 0] - cx, cx - seg_hi[cand, 0]), 0.0
        )
        dy = np.maximum(
            np.maximum(seg_lo[cand, 1] - cy, cy - seg_hi[cand, 1]), 0.0
        )
        cand = cand[dx * dx + dy * dy <= reach * reach]
        if not len(cand):
            continue
        d = point_segment_distance(centers[j], a[cand], b[cand])
        out[cand] = d <= radii[j]
    return rows, out


def brush_hit_mask(
    centers: np.ndarray,
    radii: np.ndarray,
    packed: PackedSegments,
    candidates: np.ndarray | None = None,
) -> np.ndarray:
    """Full-length exact hit mask over packed segments.

    The index-backed ``brush_hit`` stage kernel: with ``candidates``
    (rows from :meth:`UniformGridIndex.candidates_for_discs`) only
    those rows run the exact capsule test via :func:`brush_hit_rows`;
    all other rows are False by the index's conservativeness.  Without
    candidates every row is tested.  Either way the verdict per row is
    the same float expression the legacy
    :meth:`~repro.core.canvas.BrushCanvas.segment_hit_mask` evaluates,
    so the stage output stays bit-identical to the scalar oracle.
    """
    out = np.zeros(packed.n_segments, dtype=bool)
    if len(centers) == 0:
        return out
    if candidates is None:
        rows = np.arange(packed.n_segments, dtype=np.int64)
        out[:] = brush_hit_rows(centers, radii, packed, rows)
        return out
    candidates = np.asarray(candidates, dtype=np.int64)
    if len(candidates):
        out[candidates] = brush_hit_rows(centers, radii, packed, candidates)
    return out


def brush_hit_rows_scalar(
    centers: np.ndarray,
    radii: np.ndarray,
    packed: PackedSegments,
    rows: np.ndarray,
) -> np.ndarray:
    """Scalar reference for :func:`brush_hit_rows` (tests only).

    One segment × one stamp at a time through the same distance kernel
    — the micro-parity oracle for the vectorized path.
    """
    rows = np.asarray(rows, dtype=np.int64)
    out = np.zeros(len(rows), dtype=bool)
    for i, r in enumerate(rows):
        for c, rad in zip(centers, radii):
            if float(point_segment_distance(c, packed.a[r], packed.b[r])) <= rad:
                out[i] = True
                break
    return out


def refine_temporal_rows(
    pyramid: SummaryPyramid,
    packed: PackedSegments,
    window: TimeWindow,
    rows: np.ndarray,
) -> np.ndarray:
    """Exact temporal predicate over a row subset.

    Evaluates precisely the expressions
    :meth:`~repro.core.temporal.TimeWindow.segment_mask` evaluates —
    per-trajectory bounds as ``start + f * dur`` over the pyramid's
    exact ``traj_start``/``traj_dur`` tables, then the overlap
    comparison — gathered down to ``rows``, so inconclusive supernodes
    resolve bit-identically to the legacy temporal stage (without the
    legacy stage's per-trajectory Python iteration).
    """
    rows = np.asarray(rows, dtype=np.int64)
    if window.is_everything:
        return np.ones(len(rows), dtype=bool)
    if window.fractional:
        lo_arr = pyramid.traj_start + window.lo * pyramid.traj_dur
        hi_arr = pyramid.traj_start + window.hi * pyramid.traj_dur
        own = packed.owner[rows]
        w_lo = lo_arr[own]
        w_hi = hi_arr[own]
    else:
        w_lo = window.lo
        w_hi = window.hi
    return (packed.t1[rows] >= w_lo) & (packed.t0[rows] <= w_hi)
