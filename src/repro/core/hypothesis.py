"""Declarative hypotheses as visual queries.

§VI-B: "in many cases, a query corresponds to a hypothesis."  A
:class:`Hypothesis` captures that correspondence explicitly: a natural-
language statement, the visual query that tests it (brush strokes +
time window), the target group the researcher reads the answer off, and
a support threshold (the paper's informal criterion was a *majority* of
the target group highlighted).  Evaluating a hypothesis runs the query
and returns a :class:`Verdict`.

The sensemaking layer (:mod:`repro.sensemaking`) logs these objects as
the researcher's externalized theories; the analyst simulator replays
the pilot study's hypothesis sequence through them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.brush import BrushStroke
from repro.core.canvas import BrushCanvas
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.result import QueryResult
from repro.core.temporal import TimeWindow
from repro.layout.cells import CellAssignment
from repro.trajectory.filters import MetaFilter

__all__ = ["Hypothesis", "Verdict", "VerdictKind"]


class VerdictKind(enum.Enum):
    """Outcome of weighing a hypothesis against the data."""

    SUPPORTED = "supported"
    REFUTED = "refuted"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class Verdict:
    """A hypothesis evaluation outcome.

    Attributes
    ----------
    kind:
        Supported / refuted / inconclusive.
    support:
        Measured support fraction in the target population.
    threshold:
        The support level the hypothesis demanded.
    result:
        The underlying query result (for drill-down and rendering).
    """

    kind: VerdictKind
    support: float
    threshold: float
    result: QueryResult
    comparison_support: float | None = None

    @property
    def supported(self) -> bool:
        return self.kind is VerdictKind.SUPPORTED

    def __str__(self) -> str:
        if self.comparison_support is not None:
            return (
                f"{self.kind.value} (target {self.support:.0%} vs "
                f"complement {self.comparison_support:.0%})"
            )
        return f"{self.kind.value} (support {self.support:.0%} vs threshold {self.threshold:.0%})"


@dataclass(frozen=True)
class Hypothesis:
    """A hypothesis expressed as a visual query.

    Attributes
    ----------
    statement:
        Natural-language form, as the researcher voiced it.
    strokes:
        The brush strokes encoding the query region(s).
    window:
        The temporal filter to combine with the brush.
    target_group:
        Group whose support fraction answers the hypothesis; ``None``
        reads support over all displayed trajectories.
    target_filter:
        Alternative/additional target selection by metadata (e.g.
        seed-droppers), intersected with the displayed set and with the
        target group when both are given.
    threshold:
        Required support fraction (default: majority).
    min_population:
        Below this many displayed target trajectories the verdict is
        INCONCLUSIVE regardless of support (tiny bins prove nothing).
    min_highlight_s:
        A trajectory counts as satisfying the query only if its
        highlighted time reaches this many seconds — the "spend more
        time there" reading the stereo view affords (a long
        near-perpendicular highlighted run is a long time, §V-B).
    contrast:
        When True, the verdict compares the target population's support
        against the *complement* population's (displayed, non-target):
        supported iff target exceeds complement by ``contrast_margin``.
        This is the comparative form of the seed-drop hypothesis.
    contrast_margin:
        Required support advantage in contrast mode.
    """

    statement: str
    strokes: tuple[BrushStroke, ...]
    window: TimeWindow = field(default_factory=TimeWindow.all)
    target_group: str | None = None
    target_filter: MetaFilter | None = None
    threshold: float = 0.5
    min_population: int = 5
    min_highlight_s: float = 0.0
    contrast: bool = False
    contrast_margin: float = 0.1

    def __post_init__(self) -> None:
        if not self.statement:
            raise ValueError("a hypothesis needs a statement")
        if not self.strokes:
            raise ValueError("a hypothesis needs at least one brush stroke")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if self.min_highlight_s < 0:
            raise ValueError("min_highlight_s must be >= 0")
        if self.contrast and self.contrast_margin < 0:
            raise ValueError("contrast_margin must be >= 0")
        if self.contrast and self.target_group is None and self.target_filter is None:
            raise ValueError("contrast mode needs a target group or filter")
        colors = {s.color for s in self.strokes}
        if len(colors) != 1:
            raise ValueError(
                f"one hypothesis = one query color; got {sorted(colors)}"
            )

    @property
    def color(self) -> str:
        return self.strokes[0].color

    def build_canvas(self) -> BrushCanvas:
        """A fresh canvas holding only this hypothesis's strokes."""
        canvas = BrushCanvas()
        for s in self.strokes:
            canvas.add(s)
        return canvas

    def evaluate(
        self,
        engine: CoordinatedBrushingEngine,
        assignment: CellAssignment | None = None,
    ) -> Verdict:
        """Run the visual query and judge the outcome.

        With a ``target_group`` the support is read from that group's
        bin (requires a grouped assignment); otherwise from the overall
        displayed population.
        """
        canvas = self.build_canvas()
        result = engine.query(
            canvas, self.color, window=self.window, assignment=assignment
        )
        # a trajectory "satisfies" the query: highlighted, and for at
        # least min_highlight_s of trajectory time when required
        satisfies = result.traj_mask.copy()
        if self.min_highlight_s > 0.0:
            satisfies &= result.traj_highlight_time >= self.min_highlight_s

        # target population: displayed, group-restricted, filter-restricted
        target = result.displayed.copy()
        if self.target_group is not None:
            if (
                assignment is None
                or assignment.groups is None
                or self.target_group not in result.group_support
            ):
                raise KeyError(
                    f"hypothesis targets group {self.target_group!r} but the "
                    f"assignment defines {sorted(result.group_support)}"
                )
            # membership = displayed in that group's bin, exactly what
            # the researcher reads off the wall
            in_group = np.zeros(len(target), dtype=bool)
            for gi, spec in enumerate(assignment.groups):
                if spec.name != self.target_group:
                    continue
                cells = np.flatnonzero(assignment.group_of_cell == gi)
                trajs = assignment.cell_to_traj[cells]
                in_group[trajs[trajs >= 0]] = True
            target &= in_group
        if self.target_filter is not None:
            matches = np.fromiter(
                (bool(self.target_filter(t)) for t in engine.dataset),
                dtype=bool,
                count=len(engine.dataset),
            )
            target &= matches

        population = int(target.sum())
        support = float(satisfies[target].mean()) if population else 0.0

        comparison_support: float | None = None
        if self.contrast:
            complement = result.displayed & ~target
            n_comp = int(complement.sum())
            comparison_support = (
                float(satisfies[complement].mean()) if n_comp else 0.0
            )
            if population < self.min_population or n_comp < self.min_population:
                kind = VerdictKind.INCONCLUSIVE
            elif support >= comparison_support + self.contrast_margin:
                kind = VerdictKind.SUPPORTED
            else:
                kind = VerdictKind.REFUTED
        else:
            if population < self.min_population:
                kind = VerdictKind.INCONCLUSIVE
            elif support >= self.threshold:
                kind = VerdictKind.SUPPORTED
            else:
                kind = VerdictKind.REFUTED
        return Verdict(
            kind=kind,
            support=support,
            threshold=self.threshold,
            result=result,
            comparison_support=comparison_support,
        )
