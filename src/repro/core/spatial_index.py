"""Uniform-grid spatial index over packed segments.

Brush hit-testing is a segments-vs-discs proximity query.  Testing
every segment against every stamp is O(S*K); at study scale (~300k
segments) that is already interactive, but the §VI-C workloads reach
tens of millions of segments.  The index bins segment bounding boxes
into a uniform grid over the arena so a brush query only tests the
segments in grid cells its stamps touch — typically a few percent of
the dataset for localized brushes (quantified by ablation A2).

The bin structure is CSR-like (one int array of segment rows + one
offset array per cell), built fully vectorized with a counting sort.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.dataset import PackedSegments

__all__ = ["CellBitsets", "UniformGridIndex"]


class CellBitsets:
    """Lazily-built per-cell segment bitsets over a grid index.

    ``candidates_for_discs`` has to union the member rows of every grid
    cell a brush touches and de-duplicate them (a segment registers in
    each cell its bbox overlaps).  The CSR route does that with a
    Python loop over cells plus ``np.unique`` over the concatenated
    entries — O(E log E) per query with E re-gathered every time.  A
    packed bitset (one ``uint64`` word per 64 segments) turns the union
    into word-wise OR over cached masks: build once per cell on first
    touch, then every repeat brush over the same neighbourhood is pure
    vector arithmetic.

    The cache lives on the index (and the index lives on the immutable
    :class:`~repro.store.snapshot.EpochSnapshot` via
    ``snapshot.bitsets``), so it is valid for the epoch's lifetime by
    construction.  Lazy insertion races under concurrent sessions are
    benign: both writers compute identical words for the same cell
    (the index is immutable) and dict assignment is atomic under the
    GIL, so the loser merely overwrites equal bytes.

    ``budget_bytes`` caps the resident mask bytes; once exhausted,
    masks are still computed for the caller but no longer cached —
    correctness never depends on the cache.

    Holds the index's CSR arrays, never the index object itself: the
    index memoizes its cache as ``index._bitsets``, and a back-pointer
    would close a reference cycle that keeps shared-store views alive
    past a client's ``close()`` (the store leak checks would trip on
    the unreleased mapping).
    """

    __slots__ = (
        "_entries", "_offsets", "_n_segments", "_n_words",
        "_cells", "_budget_bytes", "_cached_bytes",
    )

    def __init__(self, index: "UniformGridIndex", *, budget_bytes: int = 32 << 20) -> None:
        self._entries = index._entries
        self._offsets = index._offsets
        self._n_segments = index.packed.n_segments
        self._n_words = (self._n_segments + 63) // 64
        self._cells: dict[int, np.ndarray] = {}
        self._budget_bytes = int(budget_bytes)
        self._cached_bytes = 0

    @property
    def n_cached(self) -> int:
        """Cells whose bitset is currently resident."""
        return len(self._cells)

    @property
    def cached_bytes(self) -> int:
        """Bytes of resident bitset words (bounded by the budget)."""
        return self._cached_bytes

    def words_of(self, cell: int) -> np.ndarray:
        """The packed ``uint64`` bitset of one flat cell id (cached
        after the first build while the byte budget allows)."""
        words = self._cells.get(cell)
        if words is None:
            rows = self._entries[self._offsets[cell] : self._offsets[cell + 1]]
            words = np.zeros(self._n_words, dtype=np.uint64)
            if len(rows):
                np.bitwise_or.at(
                    words, rows >> 6, np.uint64(1) << (rows & 63).astype(np.uint64)
                )
            words.setflags(write=False)
            if self._cached_bytes + words.nbytes <= self._budget_bytes:
                self._cells[cell] = words
                self._cached_bytes += words.nbytes
        return words

    # reprolint: exempt=RL011 — boundary-atomic index probe (same
    # contract as candidates_for_discs below): the loop is bounded
    # by the touched-cell count of one brush, not dataset size, and
    # deadline checks sit at the enclosing stage boundary
    def union_mask(self, cells: np.ndarray) -> np.ndarray:
        """(n_segments,) bool union of the member sets of ``cells``."""
        words = np.zeros(self._n_words, dtype=np.uint64)
        for cell in cells:
            np.bitwise_or(words, self.words_of(int(cell)), out=words)
        return np.unpackbits(words.view(np.uint8), bitorder="little")[
            : self._n_segments
        ].astype(bool)


class UniformGridIndex:
    """A ``res`` x ``res`` uniform grid over the segments' bounding box.

    Each segment is registered in every cell its axis-aligned bounding
    box overlaps (segments are short relative to cells at sensible
    resolutions, so the duplication factor stays near 1).
    """

    def __init__(self, packed: PackedSegments, res: int = 64) -> None:
        if res < 1:
            raise ValueError("res must be >= 1")
        if packed.n_segments == 0:
            raise ValueError("cannot index an empty segment set")
        self.res = int(res)
        self.packed = packed

        lo = np.minimum(packed.a, packed.b).min(axis=0)
        hi = np.maximum(packed.a, packed.b).max(axis=0)
        span = np.maximum(hi - lo, 1e-12)
        # pad so boundary points land strictly inside
        self.lo = lo - 1e-9 * span
        self.cell_size = (span * (1.0 + 2e-9)) / res

        # integer cell ranges per segment (inclusive)
        lo_cells = self._cell_of(np.minimum(packed.a, packed.b))
        hi_cells = self._cell_of(np.maximum(packed.a, packed.b))
        spans = (hi_cells - lo_cells + 1).prod(axis=1)
        total = int(spans.sum())

        # expand each segment id into all covered cells, vectorized by
        # span size classes (the vast majority cover a single cell)
        seg_ids = np.empty(total, dtype=np.int64)
        cell_ids = np.empty(total, dtype=np.int64)
        cursor = 0
        max_span = int(spans.max())
        for sx in range(1, int((hi_cells[:, 0] - lo_cells[:, 0] + 1).max()) + 1):
            for sy in range(1, int((hi_cells[:, 1] - lo_cells[:, 1] + 1).max()) + 1):
                sel = (
                    (hi_cells[:, 0] - lo_cells[:, 0] + 1 == sx)
                    & (hi_cells[:, 1] - lo_cells[:, 1] + 1 == sy)
                )
                if not sel.any():
                    continue
                rows = np.flatnonzero(sel)
                base = lo_cells[rows]
                # all (dx, dy) offsets of this span class
                dx, dy = np.meshgrid(np.arange(sx), np.arange(sy), indexing="ij")
                offs = np.stack([dx.ravel(), dy.ravel()], axis=1)  # (sx*sy, 2)
                cells = base[:, None, :] + offs[None, :, :]  # (R, sx*sy, 2)
                flat = cells[..., 1] * res + cells[..., 0]
                count = rows.size * sx * sy
                seg_ids[cursor : cursor + count] = np.repeat(rows, sx * sy)
                cell_ids[cursor : cursor + count] = flat.ravel()
                cursor += count
        assert cursor == total, (cursor, total)
        del max_span

        order = np.argsort(cell_ids, kind="stable")
        self._entries = seg_ids[order]
        sorted_cells = cell_ids[order]
        counts = np.bincount(sorted_cells, minlength=res * res)
        self._offsets = np.zeros(res * res + 1, dtype=np.int64)
        np.cumsum(counts, out=self._offsets[1:])

    @classmethod
    def from_tables(
        cls,
        packed: PackedSegments,
        *,
        res: int,
        lo: np.ndarray,
        cell_size: np.ndarray,
        entries: np.ndarray,
        offsets: np.ndarray,
    ) -> "UniformGridIndex":
        """Adopt pre-built CSR cell tables without re-binning.

        The zero-copy rebuild path for shared-memory attachment
        (:mod:`repro.store`): ``entries``/``offsets`` are taken as-is
        (typically views into a shared block) together with the grid
        geometry captured at build time, so attaching a store costs
        O(1) instead of a counting sort over every segment.
        """
        if res < 1:
            raise ValueError("res must be >= 1")
        if len(offsets) != res * res + 1:
            raise ValueError(
                f"offsets has {len(offsets)} entries, expected {res * res + 1}"
            )
        if len(entries) != int(offsets[-1]):
            raise ValueError(
                f"entries has {len(entries)} rows, offsets end at {offsets[-1]}"
            )
        index = cls.__new__(cls)
        index.res = int(res)
        index.packed = packed
        index.lo = np.asarray(lo, dtype=np.float64)
        index.cell_size = np.asarray(cell_size, dtype=np.float64)
        index._entries = entries
        index._offsets = offsets
        return index

    # Internals -----------------------------------------------------------
    def _cell_of(self, points: np.ndarray) -> np.ndarray:
        """Integer grid cell of (N, 2) points, clipped into the grid."""
        cells = np.floor((points - self.lo) / self.cell_size).astype(np.int64)
        np.clip(cells, 0, self.res - 1, out=cells)
        return cells

    @property
    def n_entries(self) -> int:
        """Total (segment, cell) registrations (>= n_segments)."""
        return len(self._entries)

    @property
    def cache_token(self) -> tuple:
        """Identity of this index build for query-plan cache keys: a
        rebuilt (or differently parameterized) index must invalidate
        cached candidate sets."""
        return (id(self), self.res, self.packed.n_segments, self.n_entries)

    @property
    def duplication_factor(self) -> float:
        """Mean cells per segment; near 1 at sane resolutions."""
        return self.n_entries / self.packed.n_segments

    def cell_entries(self, cx: int, cy: int) -> np.ndarray:
        """Segment rows registered in grid cell (cx, cy)."""
        if not (0 <= cx < self.res and 0 <= cy < self.res):
            raise IndexError(f"cell ({cx}, {cy}) outside {self.res}x{self.res} grid")
        flat = cy * self.res + cx
        return self._entries[self._offsets[flat] : self._offsets[flat + 1]]

    def bitsets(self) -> CellBitsets:
        """This index build's lazy :class:`CellBitsets` cache (memoized).

        A racing first call under concurrent sessions is benign: both
        threads build an empty cache over the same immutable tables and
        attribute assignment is atomic under the GIL — the loser's
        cache is simply dropped before it cached anything.
        """
        cache: CellBitsets | None = getattr(self, "_bitsets", None)
        if cache is None:
            cache = CellBitsets(self)
            self._bitsets = cache
        return cache

    # Queries --------------------------------------------------------------
    # reprolint: exempt=RL011 — boundary-atomic index probe: runs
    # inside one pipeline stage whose deadline check sits at the
    # stage boundary (RL008); the loop is bounded by the brush disc
    # count, not dataset size
    def touched_cells_for_discs(
        self, centers: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """Sorted flat ids of grid cells any disc's bounding box
        overlaps (conservative: the cell rectangle per disc)."""
        centers = np.asarray(centers, dtype=np.float64)
        radii = np.asarray(radii, dtype=np.float64)
        if centers.ndim != 2 or centers.shape[1] != 2:
            raise ValueError(f"centers must be (K, 2), got {centers.shape}")
        if len(radii) != len(centers):
            raise ValueError("radii must match centers")
        if len(centers) == 0:
            return np.empty(0, dtype=np.int64)
        lo_cells = self._cell_of(centers - radii[:, None])
        hi_cells = self._cell_of(centers + radii[:, None])
        touched = np.zeros((self.res, self.res), dtype=bool)
        for (cx0, cy0), (cx1, cy1) in zip(lo_cells, hi_cells):
            touched[cy0 : cy1 + 1, cx0 : cx1 + 1] = True
        return np.flatnonzero(touched.ravel())

    def candidates_for_discs(self, centers: np.ndarray, radii: np.ndarray) -> np.ndarray:
        """Unique segment rows whose cells a set of discs may touch.

        Conservative (never misses a hit): each disc selects the cell
        rectangle covering its bounding box.  The member union is a
        word-wise OR over the per-cell :class:`CellBitsets` masks —
        ``flatnonzero`` of a boolean union mask yields exactly the
        sorted-unique rows the CSR gather produced, so the rewrite is
        pinned bit-identical to :meth:`candidates_for_discs_scalar` by
        the property suite.
        """
        cells = self.touched_cells_for_discs(centers, radii)
        if len(cells) == 0:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(self.bitsets().union_mask(cells))

    # reprolint: exempt=RL011 — boundary-atomic index probe: see
    # touched_cells_for_discs; retained as the scalar parity oracle
    def candidates_for_discs_scalar(
        self, centers: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """CSR gather-and-unique reference for :meth:`candidates_for_discs`
        (tests pin the bitset path to this oracle)."""
        cells = self.touched_cells_for_discs(centers, radii)
        if len(cells) == 0:
            return np.empty(0, dtype=np.int64)
        chunks = [
            self._entries[self._offsets[c] : self._offsets[c + 1]] for c in cells
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))

    def candidate_fraction(self, centers: np.ndarray, radii: np.ndarray) -> float:
        """Fraction of the dataset's segments a query must test —
        the selectivity number ablation A2 reports."""
        cand = self.candidates_for_discs(centers, radii)
        return len(cand) / self.packed.n_segments
