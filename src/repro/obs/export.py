"""Telemetry exporters: Prometheus text exposition and JSONL logs.

Both formats are rendered by **pure functions** over immutable
snapshots so golden-file tests can pin every byte:

* :func:`render_prometheus` — the Prometheus/OpenMetrics text format
  (``# TYPE`` headers, ``_total`` counters, ``_bucket``/``_sum``/
  ``_count`` histogram triplets with cumulative ``le`` buckets,
  escaped label values, deterministic ordering).
* :func:`render_jsonl_snapshot` / :func:`render_jsonl_event` — one
  JSON object per line with sorted keys and compact separators, the
  schema the :class:`JsonlExporter` appends to disk.

:class:`JsonlExporter` is the only impure piece: it appends rendered
lines through :func:`repro.util.fileio.append_text` (append is the
crash-tolerant log discipline; a torn final line is recoverable, a
torn rewrite is not).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping

from repro.obs.metrics import LabelTuple, Snapshot
from repro.util.fileio import append_text

__all__ = [
    "render_prometheus",
    "render_jsonl_snapshot",
    "render_jsonl_event",
    "JsonlExporter",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    """Prometheus-legal metric name: dots become underscores."""
    base = _NAME_OK.sub("_", name)
    return f"{prefix}_{base}" if prefix else base


def _escape_label_value(value: str) -> str:
    """Backslash-escape per the exposition format spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: LabelTuple, extra: tuple[tuple[str, str], ...] = ()) -> str:
    """Rendered ``{k="v",...}`` block ('' when empty); sorted, escaped."""
    pairs = tuple(sorted(labels + extra))
    if not pairs:
        return ""
    inner = ",".join(
        f'{_NAME_OK.sub("_", k)}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Stable numeric rendering: integral floats print as integers."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Snapshot, *, prefix: str = "repro") -> str:
    """The Prometheus text exposition of one snapshot.

    Deterministic: metric families sorted by name, series sorted by
    label tuple, histogram buckets cumulative and ascending with a
    final ``+Inf`` bucket equal to ``_count``.
    """
    lines: list[str] = []

    by_family: dict[str, list[LabelTuple]] = {}
    for name, labels in sorted(snapshot.counters):
        by_family.setdefault(name, []).append(labels)
    for name in sorted(by_family):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        for labels in by_family[name]:
            value = snapshot.counters[(name, labels)]
            lines.append(f"{metric}{_label_str(labels)} {_fmt(value)}")

    by_family = {}
    for name, labels in sorted(snapshot.gauges):
        by_family.setdefault(name, []).append(labels)
    for name in sorted(by_family):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        for labels in by_family[name]:
            value = snapshot.gauges[(name, labels)]
            lines.append(f"{metric}{_label_str(labels)} {_fmt(value)}")

    by_family = {}
    for name, labels in sorted(snapshot.histograms):
        by_family.setdefault(name, []).append(labels)
    for name in sorted(by_family):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        for labels in by_family[name]:
            hist = snapshot.histograms[(name, labels)]
            cum = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cum += count
                le = (("le", _fmt(bound)),)
                lines.append(f"{metric}_bucket{_label_str(labels, le)} {cum}")
            inf = (("le", "+Inf"),)
            lines.append(f"{metric}_bucket{_label_str(labels, inf)} {hist.count}")
            lines.append(f"{metric}_sum{_label_str(labels)} {_fmt(hist.sum)}")
            lines.append(f"{metric}_count{_label_str(labels)} {hist.count}")

    return "\n".join(lines) + ("\n" if lines else "")


def _series(labels: LabelTuple) -> dict[str, str]:
    return {k: v for k, v in labels}


def render_jsonl_snapshot(snapshot: Snapshot, *, ts: float | None = None) -> str:
    """One snapshot as a single JSON line (sorted keys, compact).

    ``ts`` is caller-provided so renders are reproducible; the live
    exporter stamps wall-clock time, golden tests pass a constant.
    """
    doc: dict[str, Any] = {
        "type": "snapshot",
        "ts": ts,
        "counters": [
            {"name": n, "labels": _series(ls), "value": snapshot.counters[(n, ls)]}
            for n, ls in sorted(snapshot.counters)
        ],
        "gauges": [
            {"name": n, "labels": _series(ls), "value": snapshot.gauges[(n, ls)]}
            for n, ls in sorted(snapshot.gauges)
        ],
        "histograms": [
            {
                "name": n,
                "labels": _series(ls),
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "sum": h.sum,
                "count": h.count,
            }
            for (n, ls), h in (
                ((n, ls), snapshot.histograms[(n, ls)])
                for n, ls in sorted(snapshot.histograms)
            )
        ],
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def render_jsonl_event(event: Mapping[str, Any]) -> str:
    """One discrete event (span end, fault) as a stable JSON line."""
    return json.dumps(dict(event), sort_keys=True, separators=(",", ":"), default=str)


class JsonlExporter:
    """Appends rendered telemetry lines to an on-disk JSONL log.

    Suitable as a registry ``event_sink`` (span-end events) and as a
    periodic snapshot dumper.  Each line is flushed on return; the
    append-only discipline means a crash tears at most the final line.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def write_event(self, event: Mapping[str, Any], *, ts: float | None = None) -> None:
        """Append one event line (optionally stamping ``ts``)."""
        doc = dict(event)
        if ts is not None:
            doc["ts"] = ts
        append_text(self.path, render_jsonl_event(doc) + "\n")

    def write_snapshot(self, snapshot: Snapshot, *, ts: float | None = None) -> None:
        """Append one full-snapshot line."""
        append_text(self.path, render_jsonl_snapshot(snapshot, ts=ts) + "\n")
