"""``repro.obs`` — the unified telemetry plane.

One process-local metrics registry + span API that every layer emits
into (query pipeline, store service, worker pools, resilience ladder,
interaction loop) and that tests, benchmarks, and status views read
back out.  Design rules, in priority order:

1. **Off is free.**  Telemetry defaults to the no-op
   :class:`~repro.obs.metrics.NullRegistry`; every facade helper
   checks one ``enabled`` attribute and returns.  ``span()`` under a
   disabled registry returns the shared :data:`~repro.obs.spans.
   NULL_SPAN` — identity-stable, zero allocation.
2. **Emits never raise.**  All facade helpers swallow registry/sink
   failures; instrumented hot paths cannot be taken down by their own
   telemetry.  Reprolint rule RL007 enforces that code outside this
   package uses only these guarded helpers (and uses spans only as
   context managers).
3. **No locks on the hot path.**  See :mod:`repro.obs.metrics` —
   per-thread shards, one lock-guarded merge at snapshot time.

Quick start::

    from repro import obs

    obs.enable()                                 # live registry
    ... run queries ...
    snap = obs.telemetry_snapshot()
    print(snap.counter_total("query.count"))
    print(obs.render_prometheus(snap))           # scrape-ready text
    obs.disable()                                # back to no-op

The metric name catalogue and span taxonomy live in DESIGN.md §10.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.export import (
    JsonlExporter,
    render_jsonl_event,
    render_jsonl_snapshot,
    render_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    NULL_REGISTRY,
    HistogramSnapshot,
    MetricsRegistry,
    NullRegistry,
    Snapshot,
    labels_key,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, StageSpan

if TYPE_CHECKING:
    from repro.core.plan.trace import QueryTrace

__all__ = [
    # registry types & exporters
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY", "Snapshot",
    "HistogramSnapshot", "DEFAULT_BOUNDS", "labels_key",
    "JsonlExporter", "render_prometheus", "render_jsonl_snapshot",
    "render_jsonl_event",
    # spans
    "Span", "NullSpan", "NULL_SPAN", "StageSpan",
    # facade
    "get_registry", "set_registry", "enable", "disable", "enabled",
    "counter_add", "gauge_set", "observe", "emit_event", "span",
    "stage_span", "telemetry_snapshot",
]

#: Union alias for annotations: anything installable as the registry.
Registry = MetricsRegistry | NullRegistry

#: The installed registry; module-global so every emit site shares it.
_active: Registry = NULL_REGISTRY


# Lifecycle ---------------------------------------------------------------

def get_registry() -> Registry:
    """The currently installed registry (the no-op one by default)."""
    return _active


def set_registry(registry: Registry) -> Registry:
    """Install ``registry`` as the process registry; returns the old one."""
    global _active
    previous = _active
    _active = registry
    return previous


def enable(*, event_log: "str | Path | None" = None) -> MetricsRegistry:
    """Install (and return) a fresh live :class:`MetricsRegistry`.

    ``event_log`` attaches a :class:`JsonlExporter` sink so span-end
    events stream to disk as they happen.
    """
    sink = JsonlExporter(event_log) if event_log is not None else None
    registry = MetricsRegistry(event_sink=sink)
    set_registry(registry)
    return registry


def disable() -> None:
    """Return the process to the free no-op registry."""
    set_registry(NULL_REGISTRY)


def enabled() -> bool:
    """Is a live registry installed?"""
    return _active.enabled


# Guarded emit helpers ----------------------------------------------------
#
# These are the only sanctioned emission surface outside repro.obs
# (reprolint RL007).  Each checks the enabled flag first and swallows
# every exception: telemetry is an observer, never a failure mode.

def counter_add(name: str, value: float = 1.0, **labels: object) -> None:
    """Add to a counter (no-op and allocation-light when disabled)."""
    registry = _active
    if not registry.enabled:
        return
    try:
        registry.counter_add(name, value, labels or None)
    except Exception:
        pass


def gauge_set(name: str, value: float, **labels: object) -> None:
    """Set a gauge to its latest value."""
    registry = _active
    if not registry.enabled:
        return
    try:
        registry.gauge_set(name, value, labels or None)
    except Exception:
        pass


def observe(name: str, value: float, **labels: object) -> None:
    """Record one histogram observation."""
    registry = _active
    if not registry.enabled:
        return
    try:
        registry.observe(name, value, labels or None)
    except Exception:
        pass


def emit_event(event: Mapping[str, Any]) -> None:
    """Forward one discrete event to the registry's sink, if any."""
    registry = _active
    if not registry.enabled:
        return
    try:
        registry.emit_event(event)
    except Exception:
        pass


# Spans -------------------------------------------------------------------

def span(name: str, attrs: Mapping[str, object] | None = None) -> "Span | NullSpan":
    """A timed section: ``with obs.span("stage.brush_hit"): ...``.

    Disabled fast path: returns the shared :data:`NULL_SPAN` — the
    same object every call, so "telemetry off" allocates nothing here.
    """
    registry = _active
    if not registry.enabled:
        return NULL_SPAN
    return Span(name, registry, attrs)


def stage_span(trace: "QueryTrace", stage: str) -> StageSpan:
    """The query executor's per-stage span.

    Always a live object (the trace must be back-filled even with
    telemetry off — traces are part of the query result, not of the
    metrics plane); registry emission inside it is guarded and skipped
    when disabled.
    """
    return StageSpan(trace, stage, _active)


# Introspection -----------------------------------------------------------

def telemetry_snapshot() -> Snapshot:
    """Snapshot of the installed registry (empty when disabled)."""
    return _active.snapshot()
