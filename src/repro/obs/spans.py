"""Span tracing: timed sections that feed the metrics plane.

Two span flavors, both context managers (the only sanctioned form —
reprolint RL007 flags bare span calls):

* :func:`repro.obs.span` — a generic timed section.  Its duration
  lands in the ``span.seconds`` histogram (labelled by span name) and,
  when an event sink is configured, a discrete span-end event is
  forwarded to it.  With telemetry disabled the facade hands back the
  shared :data:`NULL_SPAN` — no allocation, no clock reads.
* :class:`StageSpan` — the query-pipeline bridge.  It subsumes the
  hand-rolled timing the executor used to do: entering starts the
  clock, the executor annotates cardinality/cache/taint facts on the
  span, and exiting **back-fills the** :class:`~repro.core.plan.trace.
  QueryTrace` with exactly the :class:`StageRecord` the pre-telemetry
  code built — plus per-stage histogram/counter emission when a live
  registry is installed.  A stage that raises records nothing, which
  is also the pre-telemetry behavior.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:
    from repro.core.plan.trace import QueryTrace

__all__ = ["Span", "NullSpan", "NULL_SPAN", "StageSpan"]


class NullSpan:
    """The span that does nothing; one shared instance per process.

    Identity is the contract: ``span(a) is span(b)`` whenever telemetry
    is disabled, so the fast path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def annotate(self, **attrs: object) -> "NullSpan":
        """No-op (matches :meth:`Span.annotate`)."""
        return self

    @property
    def elapsed_s(self) -> float:
        return 0.0


#: The one process-wide no-op span.
NULL_SPAN = NullSpan()


class Span:
    """A timed section bound to a live registry.

    Built by :func:`repro.obs.span`; not intended for direct
    construction.  On exit the duration is recorded into the
    ``span.seconds`` histogram under the span's name (plus any
    annotations) and a span-end event is forwarded to the registry's
    event sink.  Emission is guarded: a failing sink or registry can
    never raise into the traced section.
    """

    __slots__ = ("name", "attrs", "registry", "t0", "elapsed_s")

    def __init__(
        self, name: str, registry: Any, attrs: Mapping[str, object] | None = None
    ) -> None:
        self.name = name
        self.registry = registry
        self.attrs: dict[str, object] = dict(attrs) if attrs else {}
        self.t0 = 0.0
        self.elapsed_s = 0.0

    def annotate(self, **attrs: object) -> "Span":
        """Attach label/attribute pairs mid-flight; returns self."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.elapsed_s = time.perf_counter() - self.t0
        try:
            labels = {"name": self.name, **{k: str(v) for k, v in self.attrs.items()}}
            self.registry.observe("span.seconds", self.elapsed_s, labels)
            if self.registry.event_sink is not None:
                self.registry.emit_event(
                    {
                        "type": "span",
                        "name": self.name,
                        "seconds": self.elapsed_s,
                        "error": exc_type.__name__ if exc_type is not None else None,
                        "attrs": {k: str(v) for k, v in self.attrs.items()},
                    }
                )
        except Exception:
            pass  # telemetry must never take the traced section down
        return None


class StageSpan:
    """One query-pipeline stage's span; back-fills the query trace.

    The executor sets the annotation fields (``n_in``, ``n_out``,
    ``cache_hit``, ``degraded``, ``detail``) inside the ``with`` block;
    ``__exit__`` appends the equivalent ``StageRecord`` to the bound
    trace and — only when a live registry is installed — emits the
    per-stage latency histogram and hit/miss/taint counters.

    Cache hits record ``elapsed_s == 0.0`` exactly, matching the
    pre-telemetry trace contract ("near zero on a cache hit" renders
    as ``hit`` in :meth:`StageRecord.describe`).
    """

    __slots__ = (
        "trace", "stage", "registry", "t0", "elapsed_s",
        "n_in", "n_out", "cache_hit", "degraded", "detail",
    )

    def __init__(self, trace: "QueryTrace", stage: str, registry: Any) -> None:
        self.trace = trace
        self.stage = stage
        self.registry = registry
        self.t0 = 0.0
        self.elapsed_s = 0.0
        self.n_in = 0
        self.n_out = 0
        self.cache_hit = False
        self.degraded = False
        self.detail = ""

    def __enter__(self) -> "StageSpan":
        self.t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None:
            # a raising stage records nothing (pre-telemetry behavior)
            return None
        from repro.core.plan.trace import StageRecord  # lazy: avoids import cycle

        self.elapsed_s = 0.0 if self.cache_hit else time.perf_counter() - self.t0
        self.trace.record(
            StageRecord(
                stage=self.stage,
                elapsed_s=self.elapsed_s,
                n_in=self.n_in,
                n_out=self.n_out,
                cache_hit=self.cache_hit,
                degraded=self.degraded,
                detail=self.detail,
            )
        )
        registry = self.registry
        if registry.enabled:
            try:
                # pre-canonical label tuple: skips dict build + sort on
                # every stage of every query (see labels_key)
                labels = (("stage", self.stage),)
                registry.observe("query.stage.seconds", self.elapsed_s, labels)
                if self.cache_hit:
                    registry.counter_add("query.stage.cache_hits", 1.0, labels)
                else:
                    registry.counter_add("query.stage.cache_misses", 1.0, labels)
                if self.degraded:
                    registry.counter_add("query.stage.taints", 1.0, labels)
            except Exception:
                pass  # guarded emit: never raise into the query path
        return None
