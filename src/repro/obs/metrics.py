"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is built for hot paths shared by many threads (the
multi-session service drives one engine from N sessions):

* **No locks on the hot path.**  Every thread owns a private *shard*
  (plain dicts reached through ``threading.local``); an increment is a
  dict update on data no other thread touches.  The registry lock is
  taken only on the cold paths — shard creation, histogram-bound
  declaration, and :meth:`MetricsRegistry.snapshot`.
* **Mergeable snapshots.**  :meth:`snapshot` folds all shards into one
  immutable :class:`Snapshot`; snapshots from different registries
  (processes, benchmark runs) merge commutatively and associatively
  with counts conserved — the property suite pins this.
* **Off is free.**  :data:`NULL_REGISTRY` is a no-op object with the
  same surface; a disabled process pays one attribute check per emit
  and allocates nothing on the span fast path.

Instruments are addressed by ``(name, labels)`` where labels are a
sorted tuple of ``(key, value)`` string pairs — the same identity the
Prometheus exposition renders.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_BOUNDS",
    "LabelTuple",
    "MetricKey",
    "HistogramSnapshot",
    "Snapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "labels_key",
]

#: Sorted ``((key, value), ...)`` form of a label set.
LabelTuple = tuple[tuple[str, str], ...]
#: Instrument identity: metric name plus its label tuple.
MetricKey = tuple[str, LabelTuple]

#: Default histogram bucket upper bounds, tuned for seconds-scale
#: latencies from ~50µs (warm cache-hit stages) to tens of seconds.
DEFAULT_BOUNDS: tuple[float, ...] = (
    5e-05, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def labels_key(labels: "Mapping[str, object] | LabelTuple | None") -> LabelTuple:
    """Canonical sorted tuple form of a label set.

    A tuple argument is assumed already canonical (sorted ``(key,
    value)`` string pairs) and passes through untouched — the hot-path
    escape hatch that lets per-stage spans skip dict building and
    sorting on every emit.
    """
    if not labels:
        return ()
    if isinstance(labels, tuple):
        return labels
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _HistCell:
    """One histogram instrument inside one thread's shard."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot: +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left: a value equal to a bound lands in that bound's
        # bucket — Prometheus `le` (less-or-equal) semantics
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class _Shard:
    """One thread's private instrument cells (never shared)."""

    __slots__ = ("counters", "hists")

    def __init__(self) -> None:
        self.counters: dict[MetricKey, float] = {}
        self.hists: dict[MetricKey, _HistCell] = {}


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable, mergeable state of one histogram instrument.

    ``counts`` has ``len(bounds) + 1`` entries; the final entry is the
    overflow (``+Inf``) bucket.  ``sum(counts) == count`` always.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int

    @classmethod
    def empty(cls, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> "HistogramSnapshot":
        return cls(bounds=bounds, counts=(0,) * (len(bounds) + 1), sum=0.0, count=0)

    @classmethod
    def of(
        cls,
        values: Iterable[float],
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> "HistogramSnapshot":
        """Snapshot of a value collection (test/property helper)."""
        cell = _HistCell(bounds)
        for v in values:
            cell.observe(float(v))
        return cls(
            bounds=bounds, counts=tuple(cell.counts), sum=cell.total, count=cell.count
        )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise sum; commutative, associative, count-conserving.

        Merging histograms observed with different bucket boundaries is
        a programming error and raises.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
        )

    def quantile(self, q: float) -> float:
        """Conservative quantile estimate (bucket upper bound).

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q * count`` — monotone non-decreasing in ``q``
        and in the observed data.  The overflow bucket reports the
        largest finite bound (there is no tighter upper bound to give).
        Empty histograms return 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank and (cum > 0 if rank == 0 else True):
                return self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
        return self.bounds[-1]


@dataclass(frozen=True)
class Snapshot:
    """One coherent, immutable view of every instrument's state."""

    counters: dict[MetricKey, float] = field(default_factory=dict)
    gauges: dict[MetricKey, float] = field(default_factory=dict)
    histograms: dict[MetricKey, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Combine two snapshots (cross-thread already done; this is
        for cross-registry/cross-process aggregation).

        Counters and histogram buckets add; gauges are last-write-wins
        with ``other`` (the right operand) taken as newer.
        """
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0.0) + value
        gauges = {**self.gauges, **other.gauges}
        hists = dict(self.histograms)
        for key, h in other.histograms.items():
            mine = hists.get(key)
            hists[key] = h if mine is None else mine.merge(h)
        return Snapshot(counters=counters, gauges=gauges, histograms=hists)

    # Convenience accessors (tests, status views) ------------------------
    def counter_total(self, name: str) -> float:
        """Sum of one counter family across all label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def counter(self, name: str, /, **labels: object) -> float:
        """One counter cell's value (0.0 when never incremented)."""
        return self.counters.get((name, labels_key(labels)), 0.0)

    def gauge(self, name: str, /, **labels: object) -> float | None:
        """One gauge's last-set value (None when never set)."""
        return self.gauges.get((name, labels_key(labels)))

    def histogram(self, name: str, /, **labels: object) -> HistogramSnapshot | None:
        """One histogram cell (None when never observed).

        ``name`` is positional-only so a label literally called
        ``name`` (the ``span.seconds`` convention) stays addressable.
        """
        return self.histograms.get((name, labels_key(labels)))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready nested form (stable ordering) for status views."""

        def render_key(key: MetricKey) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        return {
            "counters": {render_key(k): self.counters[k] for k in sorted(self.counters)},
            "gauges": {render_key(k): self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                render_key(k): {
                    "count": h.count,
                    "sum": h.sum,
                    "p50": h.quantile(0.5),
                    "p95": h.quantile(0.95),
                }
                for k, h in ((k, self.histograms[k]) for k in sorted(self.histograms))
            },
        }


class MetricsRegistry:
    """Thread-sharded instrument store with lock-free emission.

    Parameters
    ----------
    event_sink:
        Optional object with a ``write_event(dict)`` method (e.g.
        :class:`repro.obs.export.JsonlExporter`); span ends and other
        discrete events are forwarded to it.  Sink failures are
        swallowed by the facade's guards, never raised into hot paths.
    """

    #: Enabled registries emit; the facade checks this one attribute
    #: before doing any work.
    enabled: bool = True

    def __init__(self, *, event_sink: Any | None = None) -> None:
        self._lock = threading.Lock()
        self._shards: list[_Shard] = []
        self._local = threading.local()
        self._gauges: dict[MetricKey, float] = {}
        self._hist_bounds: dict[str, tuple[float, ...]] = {}
        self.event_sink = event_sink

    # Cold paths ---------------------------------------------------------
    def _shard(self) -> _Shard:
        shard: _Shard | None = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def declare_histogram(self, name: str, bounds: Iterable[float]) -> None:
        """Fix non-default bucket bounds for one histogram name.

        Must be called before the first ``observe`` of ``name`` in any
        thread; later observations in every thread use these bounds.
        """
        bt = tuple(sorted(float(b) for b in bounds))
        if not bt:
            raise ValueError("histogram needs at least one bucket bound")
        with self._lock:
            self._hist_bounds[name] = bt

    # Hot paths (no locks) ----------------------------------------------
    def counter_add(
        self,
        name: str,
        value: float = 1.0,
        labels: "Mapping[str, object] | LabelTuple | None" = None,
    ) -> None:
        """Add ``value`` to one counter cell (monotone by convention)."""
        counters = self._shard().counters
        key = (name, labels_key(labels))
        counters[key] = counters.get(key, 0.0) + value

    def gauge_set(
        self,
        name: str,
        value: float,
        labels: "Mapping[str, object] | LabelTuple | None" = None,
    ) -> None:
        """Set a gauge to its latest value (last write wins)."""
        # single dict store: atomic under the GIL, no shard needed
        self._gauges[(name, labels_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: "Mapping[str, object] | LabelTuple | None" = None,
    ) -> None:
        """Record one observation into a fixed-bucket histogram."""
        hists = self._shard().hists
        key = (name, labels_key(labels))
        cell = hists.get(key)
        if cell is None:
            bounds = self._hist_bounds.get(name, DEFAULT_BOUNDS)
            cell = hists[key] = _HistCell(bounds)
        cell.observe(float(value))

    def emit_event(self, event: Mapping[str, Any]) -> None:
        """Forward one discrete event to the configured sink, if any."""
        sink = self.event_sink
        if sink is not None:
            sink.write_event(event)

    # Aggregation --------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """Lock-guarded merge of every thread's shard plus gauges.

        The one place cross-thread aggregation happens; emission never
        waits on it (writers touch only their own shard).
        """
        with self._lock:
            shards = list(self._shards)
            gauges = dict(self._gauges)
        counters: dict[MetricKey, float] = {}
        hists: dict[MetricKey, HistogramSnapshot] = {}
        for shard in shards:
            # dict()/list() copies are C-level and atomic under the GIL;
            # the owning thread may insert new cells mid-snapshot and
            # this merge must not see a resizing dict
            for key, value in dict(shard.counters).items():
                counters[key] = counters.get(key, 0.0) + value
            for key, cell in dict(shard.hists).items():
                snap = HistogramSnapshot(
                    bounds=cell.bounds,
                    counts=tuple(cell.counts),
                    sum=cell.total,
                    count=cell.count,
                )
                mine = hists.get(key)
                hists[key] = snap if mine is None else mine.merge(snap)
        return Snapshot(counters=counters, gauges=gauges, histograms=hists)

    def reset(self) -> None:
        """Drop every instrument (benchmarks and tests between phases).

        Threads keep their shard objects; the cells are cleared in
        place so in-flight emitters continue into empty dicts.
        """
        with self._lock:
            for shard in self._shards:
                shard.counters.clear()
                shard.hists.clear()
            self._gauges.clear()

    def __repr__(self) -> str:
        with self._lock:
            n = len(self._shards)
        return f"MetricsRegistry(shards={n}, enabled={self.enabled})"


class NullRegistry:
    """The disabled registry: same surface, does nothing, costs nothing.

    A single module-level instance (:data:`NULL_REGISTRY`) backs every
    disabled process; the facade's emit helpers check ``enabled`` and
    return before building labels, so the hot-path cost of "telemetry
    off" is one attribute load and one branch.
    """

    enabled: bool = False
    event_sink: Any | None = None

    def counter_add(
        self,
        name: str,
        value: float = 1.0,
        labels: "Mapping[str, object] | LabelTuple | None" = None,
    ) -> None:
        """No-op."""

    def gauge_set(
        self,
        name: str,
        value: float,
        labels: "Mapping[str, object] | LabelTuple | None" = None,
    ) -> None:
        """No-op."""

    def observe(
        self,
        name: str,
        value: float,
        labels: "Mapping[str, object] | LabelTuple | None" = None,
    ) -> None:
        """No-op."""

    def emit_event(self, event: Mapping[str, Any]) -> None:
        """No-op."""

    def declare_histogram(self, name: str, bounds: Iterable[float]) -> None:
        """No-op."""

    def snapshot(self) -> Snapshot:
        """Always-empty snapshot."""
        return Snapshot()

    def reset(self) -> None:
        """No-op."""

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The process-wide disabled registry (telemetry's default state).
NULL_REGISTRY = NullRegistry()
