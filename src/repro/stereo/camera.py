"""Stereo camera model.

A :class:`StereoCamera` describes the viewing situation of the study:
a viewer with interocular distance ``eye_separation`` standing
``viewer_distance`` meters from the display plane (the paper's desk was
~3 m from the wall).  Each eye's orthographic projection is a
horizontal shear proportional to depth; the shear factor is
``(eye_separation / 2) / viewer_distance``, which makes the rendered
disparity reproduce (to first order) the physical parallax a real point
at that depth would cast — see :mod:`repro.stereo.parallax` for the
exact relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = ["Eye", "StereoCamera"]


class Eye(IntEnum):
    """Which eye a view is rendered for; values are shear signs."""

    LEFT = -1
    RIGHT = 1


@dataclass(frozen=True)
class StereoCamera:
    """Viewing geometry for sheared-orthographic stereo.

    Attributes
    ----------
    eye_separation:
        Interocular distance in meters (population mean ~0.065).
    viewer_distance:
        Viewer-to-display distance in meters (the study: ~3 m).
    """

    eye_separation: float = 0.065
    viewer_distance: float = 3.0

    def __post_init__(self) -> None:
        if self.eye_separation <= 0:
            raise ValueError("eye_separation must be positive")
        if self.viewer_distance <= 0:
            raise ValueError("viewer_distance must be positive")

    @property
    def shear(self) -> float:
        """Per-eye horizontal shear per meter of depth (unsigned)."""
        return (self.eye_separation / 2.0) / self.viewer_distance

    def eye_offset(self, eye: Eye) -> float:
        """Signed horizontal eye position relative to the cyclopean axis.

        The left eye sits at -separation/2; its view of near content
        shifts *right*, hence the opposite-signed shear below.
        """
        return eye.value * (self.eye_separation / 2.0)

    def project_points(self, points_xyz: np.ndarray, eye: Eye) -> np.ndarray:
        """Sheared-orthographic projection of (..., 3) points to (..., 2).

        ``z`` is depth in meters *in front of* the display plane
        (positive toward the viewer).  The projected x is
        ``x - sign(eye) * shear * z``: content in front of the screen
        shifts left in the right eye and right in the left eye
        (crossed disparity), matching physical stereo.
        """
        points_xyz = np.asarray(points_xyz, dtype=np.float64)
        if points_xyz.shape[-1] != 3:
            raise ValueError(f"expected (..., 3) points, got {points_xyz.shape}")
        out = np.empty(points_xyz.shape[:-1] + (2,), dtype=np.float64)
        out[..., 0] = points_xyz[..., 0] - eye.value * self.shear * points_xyz[..., 2]
        out[..., 1] = points_xyz[..., 1]
        return out

    def rendered_parallax(self, z: np.ndarray | float) -> np.ndarray:
        """Screen disparity (left-eye x minus right-eye x) produced by
        the shear projection for depth ``z``: ``eye_separation * z /
        viewer_distance``.  Positive for in-front (crossed) content."""
        return (self.eye_separation / self.viewer_distance) * np.asarray(z, dtype=np.float64)
