"""Stereoscopic space-time-cube geometry.

The paper renders each trajectory as a space-time cube (§IV-C.1,
Fig. 4): the display plane carries XY movement, and time extends along
+Z, out of the display toward the viewer, so a stationary ant shows as
a segment perpendicular to the screen.  Rendering is orthographic (to
avoid perspective distortion) with per-eye horizontal shear providing
stereo disparity; a pair of ergonomic sliders (§IV-C.2) repositions the
depth range and (de)exaggerates the time scale to keep binocular
parallax inside the comfort zone.

This subpackage implements that geometry exactly: per-eye projections,
screen-parallax computation, the comfort model, and the slider state.
"""

from repro.stereo.camera import Eye, StereoCamera
from repro.stereo.projection import SpaceTimeProjection
from repro.stereo.parallax import screen_parallax, parallax_visual_angle_deg
from repro.stereo.comfort import ComfortModel, ComfortReport
from repro.stereo.controls import ErgonomicControls

__all__ = [
    "Eye",
    "StereoCamera",
    "SpaceTimeProjection",
    "screen_parallax",
    "parallax_visual_angle_deg",
    "ComfortModel",
    "ComfortReport",
    "ErgonomicControls",
]
