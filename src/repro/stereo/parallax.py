"""Screen parallax computation.

Physical stereo: a point floating ``z`` meters in front of a display
viewed from ``d`` meters by eyes ``e`` apart casts a screen disparity

    p(z) = e * z / (d - z)          (exact, thin-ray model)

positive (crossed) in front of the screen, negative (uncrossed) behind.
The sheared-orthographic renderer produces ``p_r(z) = e * z / d`` — the
first-order Taylor expansion — so rendered and physical parallax agree
to O((z/d)^2); at the study's depth budget (|z| <= 0.2 m at d = 3 m)
the relative error is under 7 %.  The comfort model consumes the exact
form.
"""

from __future__ import annotations

import numpy as np

from repro.util.units import rad_to_deg

__all__ = ["screen_parallax", "parallax_visual_angle_deg", "depth_for_parallax"]


def screen_parallax(
    z: np.ndarray | float, eye_separation: float = 0.065, viewer_distance: float = 3.0
) -> np.ndarray:
    """Exact physical screen parallax (meters) for depth ``z`` (meters,
    + in front of the display).  Vectorized; requires z < viewer_distance."""
    z = np.asarray(z, dtype=np.float64)
    if np.any(z >= viewer_distance):
        raise ValueError("depth must be strictly less than viewer distance")
    return eye_separation * z / (viewer_distance - z)


def parallax_visual_angle_deg(
    z: np.ndarray | float, eye_separation: float = 0.065, viewer_distance: float = 3.0
) -> np.ndarray:
    """Binocular disparity as a visual angle (degrees).

    The angular difference between the vergence demanded by the virtual
    point and the vergence of the screen plane:

        eta(z) = 2*atan(e / (2*(d - z))) - 2*atan(e / (2*d))

    This is the quantity the stereoscopic-comfort literature bounds
    (roughly +/- 1 degree; Lambooij et al. 2007, the paper's [26]).
    Positive for in-front (crossed) content.
    """
    z = np.asarray(z, dtype=np.float64)
    if np.any(z >= viewer_distance):
        raise ValueError("depth must be strictly less than viewer distance")
    e2 = eye_separation / 2.0
    eta = 2.0 * (np.arctan2(e2, viewer_distance - z) - np.arctan2(e2, viewer_distance))
    return rad_to_deg(eta)


def depth_for_parallax(
    angle_deg: float, eye_separation: float = 0.065, viewer_distance: float = 3.0
) -> float:
    """Invert :func:`parallax_visual_angle_deg`: the depth that produces
    a given disparity angle.  Used to size the comfort-zone depth budget."""
    base = np.arctan2(eye_separation / 2.0, viewer_distance)
    target = np.deg2rad(angle_deg) / 2.0 + base
    if not 0 < target < np.pi / 2:
        raise ValueError(f"angle {angle_deg} deg is unreachable at this geometry")
    return float(viewer_distance - (eye_separation / 2.0) / np.tan(target))
