"""Space-time-cube projection.

Maps trajectory samples (x, y, t) to display-space 3D points
(x, y, z): XY stays on the display plane (via the cell's
:class:`~repro.display.coords.CoordinateMapper`) and time becomes depth
out of the display, ``z = depth_offset + time_scale * (t - t0)``.

Both ``depth_offset`` and ``time_scale`` are the paper's ergonomic
sliders (§IV-C.2): the offset pushes the whole trajectory in front of /
behind / through the display surface, the scale (de)exaggerates the
temporal axis.  The projection then renders per-eye 2D views through a
:class:`~repro.stereo.camera.StereoCamera`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.display.coords import CoordinateMapper
from repro.stereo.camera import Eye, StereoCamera
from repro.trajectory.model import Trajectory

__all__ = ["SpaceTimeProjection"]


@dataclass(frozen=True)
class SpaceTimeProjection:
    """Projects trajectories into per-eye display coordinates.

    Attributes
    ----------
    camera:
        The stereo viewing geometry.
    time_scale:
        Meters of depth per second of trajectory time (exaggeration
        slider).  The paper's 3-minute maximum at the default 1 mm/s
        spans 0.18 m of depth.
    depth_offset:
        Depth (meters, + toward viewer) of the t = t0 plane (position
        slider).  0 puts the start of every trajectory on the display
        surface, as in Fig. 4 ("a cylinder starting at the display
        surface, extending out to float in front of the display").
    """

    camera: StereoCamera = field(default_factory=StereoCamera)
    time_scale: float = 0.001
    depth_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.time_scale < 0:
            raise ValueError("time_scale must be >= 0")

    def depth_of(self, times: np.ndarray, t0: float | None = None) -> np.ndarray:
        """Depth coordinate of timestamps (seconds)."""
        times = np.asarray(times, dtype=np.float64)
        base = float(times.flat[0]) if t0 is None else float(t0)
        return self.depth_offset + self.time_scale * (times - base)

    def to_display_3d(
        self, traj: Trajectory, mapper: CoordinateMapper
    ) -> np.ndarray:
        """(N, 3) display-space points: wall-meter XY plus depth Z."""
        xy = mapper.arena_to_wall(traj.positions)
        z = self.depth_of(traj.times, float(traj.times[0]))
        out = np.empty((traj.n_samples, 3), dtype=np.float64)
        out[:, :2] = xy
        out[:, 2] = z
        return out

    def project(
        self, traj: Trajectory, mapper: CoordinateMapper, eye: Eye
    ) -> np.ndarray:
        """(N, 2) wall-meter screen positions of one eye's view."""
        return self.camera.project_points(self.to_display_3d(traj, mapper), eye)

    def stereo_pair(
        self, traj: Trajectory, mapper: CoordinateMapper
    ) -> tuple[np.ndarray, np.ndarray]:
        """(left, right) per-eye projected polylines."""
        pts = self.to_display_3d(traj, mapper)
        return (
            self.camera.project_points(pts, Eye.LEFT),
            self.camera.project_points(pts, Eye.RIGHT),
        )

    def depth_range(self, traj: Trajectory) -> tuple[float, float]:
        """(z_min, z_max) the trajectory occupies under this projection."""
        z = self.depth_of(traj.times, float(traj.times[0]))
        return float(z.min()), float(z.max())

    def apparent_motion_ratio(self, traj: Trajectory) -> np.ndarray:
        """Per-segment ratio of depth extent to XY extent (arena meters
        scaled by time_scale vs. spatial step).

        Large values flag near-perpendicular segments — the visual
        signature of a *stationary* ant that the §V-B seed-drop query
        reads off the stereo view.
        """
        dxy = np.linalg.norm(np.diff(traj.positions, axis=0), axis=1)
        dz = self.time_scale * np.diff(traj.times)
        return np.divide(dz, dxy, out=np.full_like(dz, np.inf), where=dxy > 0)

    def with_controls(self, *, time_scale: float | None = None,
                      depth_offset: float | None = None) -> "SpaceTimeProjection":
        """Copy with updated slider values."""
        return SpaceTimeProjection(
            camera=self.camera,
            time_scale=self.time_scale if time_scale is None else time_scale,
            depth_offset=self.depth_offset if depth_offset is None else depth_offset,
        )
