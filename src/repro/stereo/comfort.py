"""Stereoscopic comfort model.

§IV-C.2: "Prolonged viewing of stereoscopic images has been known to
cause discomfort ... mainly due to excessive binocular parallax and
accommodation-convergence conflict."  The model below quantifies both
for a depth interval, so the ergonomic sliders can be validated (E7):

* **disparity angle** — binocular parallax as a visual angle, bounded
  by ``limit_deg`` (default 1 degree, the customary comfort zone);
* **AC conflict** — the diopter mismatch between accommodation (always
  at the screen) and convergence (at the virtual depth),
  ``|1/(d - z) - 1/d|``, bounded by ``ac_limit_diopters``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stereo.parallax import depth_for_parallax, parallax_visual_angle_deg

__all__ = ["ComfortModel", "ComfortReport"]


@dataclass(frozen=True)
class ComfortReport:
    """Comfort assessment of a depth interval.

    Attributes
    ----------
    max_disparity_deg:
        Largest absolute disparity angle over the interval.
    max_ac_conflict_diopters:
        Largest accommodation-convergence mismatch.
    comfortable:
        True iff both quantities are within their limits.
    fraction_comfortable:
        Fraction of the (uniformly sampled) depth interval inside the
        comfort zone — the E7 sweep series.
    """

    max_disparity_deg: float
    max_ac_conflict_diopters: float
    comfortable: bool
    fraction_comfortable: float


@dataclass(frozen=True)
class ComfortModel:
    """Comfort limits for a given viewing geometry."""

    eye_separation: float = 0.065
    viewer_distance: float = 3.0
    limit_deg: float = 1.0
    ac_limit_diopters: float = 0.25

    def __post_init__(self) -> None:
        if self.limit_deg <= 0 or self.ac_limit_diopters <= 0:
            raise ValueError("comfort limits must be positive")
        if self.viewer_distance <= 0 or self.eye_separation <= 0:
            raise ValueError("viewing geometry must be positive")

    def disparity_deg(self, z: np.ndarray | float) -> np.ndarray:
        """Disparity angle (degrees) at depths ``z``."""
        return parallax_visual_angle_deg(z, self.eye_separation, self.viewer_distance)

    def ac_conflict(self, z: np.ndarray | float) -> np.ndarray:
        """Accommodation-convergence conflict (diopters) at depths ``z``."""
        z = np.asarray(z, dtype=np.float64)
        if np.any(z >= self.viewer_distance):
            raise ValueError("depth must be less than viewer distance")
        return np.abs(1.0 / (self.viewer_distance - z) - 1.0 / self.viewer_distance)

    def depth_in_comfort(self, z: np.ndarray | float) -> np.ndarray:
        """Mask of depths inside the comfort zone."""
        z = np.asarray(z, dtype=np.float64)
        return (np.abs(self.disparity_deg(z)) <= self.limit_deg) & (
            self.ac_conflict(z) <= self.ac_limit_diopters
        )

    def comfort_depth_budget(self) -> tuple[float, float]:
        """The (z_behind, z_front) comfortable depth interval, meters.

        The near bound comes from whichever constraint (disparity or AC
        conflict) binds first; the far (behind-screen) bound likewise.
        """
        front_disp = depth_for_parallax(self.limit_deg, self.eye_separation, self.viewer_distance)
        behind_disp = depth_for_parallax(-self.limit_deg, self.eye_separation, self.viewer_distance)
        # AC bound: |1/(d-z) - 1/d| = L  =>  z = d - 1/(1/d +/- L)
        d, L = self.viewer_distance, self.ac_limit_diopters
        front_ac = d - 1.0 / (1.0 / d + L)
        behind_ac = d - 1.0 / max(1.0 / d - L, 1e-9)
        return (max(behind_disp, behind_ac), min(front_disp, front_ac))

    def assess(self, z_min: float, z_max: float, samples: int = 256) -> ComfortReport:
        """Assess a depth interval [z_min, z_max]."""
        if z_max < z_min:
            raise ValueError("z_max must be >= z_min")
        z = np.linspace(z_min, z_max, samples)
        disp = np.abs(self.disparity_deg(z))
        ac = self.ac_conflict(z)
        ok = (disp <= self.limit_deg) & (ac <= self.ac_limit_diopters)
        return ComfortReport(
            max_disparity_deg=float(disp.max()),
            max_ac_conflict_diopters=float(ac.max()),
            comfortable=bool(ok.all()),
            fraction_comfortable=float(ok.mean()),
        )
