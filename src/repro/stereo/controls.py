"""Ergonomic stereo controls.

The two sliders of §IV-C.2 as stateful application controls:

* the **depth slider** positions trajectories in front of, behind, or
  through the display surface (``depth_offset``);
* the **exaggeration slider** scales the temporal axis (``time_scale``).

:meth:`ErgonomicControls.fit_to_comfort` solves the inverse problem the
user solved by hand: given the longest displayed trajectory, choose the
largest time exaggeration (and centering offset) that keeps the whole
depth range inside the comfort zone — "control the maximum amount of
binocular parallax and keep it within a comfortable range while
maintaining sufficient depth cues".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stereo.comfort import ComfortModel
from repro.stereo.projection import SpaceTimeProjection

__all__ = ["ErgonomicControls"]


@dataclass
class ErgonomicControls:
    """Mutable slider state feeding a :class:`SpaceTimeProjection`.

    Attributes
    ----------
    comfort:
        The comfort model used for validation/fitting.
    time_scale:
        Current exaggeration slider value (m of depth per second).
    depth_offset:
        Current depth slider value (m; + toward the viewer).
    """

    comfort: ComfortModel = field(default_factory=ComfortModel)
    time_scale: float = 0.001
    depth_offset: float = 0.0

    def projection(self) -> SpaceTimeProjection:
        """A projection snapshot of the current slider state."""
        from repro.stereo.camera import StereoCamera

        camera = StereoCamera(
            eye_separation=self.comfort.eye_separation,
            viewer_distance=self.comfort.viewer_distance,
        )
        return SpaceTimeProjection(
            camera=camera, time_scale=self.time_scale, depth_offset=self.depth_offset
        )

    def set_depth(self, depth_offset: float) -> None:
        """Move the depth slider."""
        self.depth_offset = float(depth_offset)

    def set_exaggeration(self, time_scale: float) -> None:
        """Move the exaggeration slider."""
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.time_scale = float(time_scale)

    def depth_range_for(self, max_duration_s: float) -> tuple[float, float]:
        """Depth interval occupied by a trajectory of ``max_duration_s``."""
        return (self.depth_offset, self.depth_offset + self.time_scale * max_duration_s)

    def is_comfortable(self, max_duration_s: float) -> bool:
        """Whether the current settings keep that depth range comfortable."""
        z0, z1 = self.depth_range_for(max_duration_s)
        return self.comfort.assess(min(z0, z1), max(z0, z1)).comfortable

    def fit_to_comfort(self, max_duration_s: float, *, center: bool = True) -> None:
        """Choose the largest comfortable exaggeration for a duration.

        With ``center=True`` the depth range spans the *whole*
        comfortable interval, behind-screen included (the uncrossed
        side of the budget is far more forgiving, so this buys a much
        larger exaggeration); otherwise trajectories start at the
        surface and float forward, as in Fig. 4.
        """
        if max_duration_s <= 0:
            raise ValueError("max_duration_s must be positive")
        z_behind, z_front = self.comfort.comfort_depth_budget()
        if center:
            budget = z_front - z_behind
            self.time_scale = budget / max_duration_s
            self.depth_offset = z_behind
        else:
            self.time_scale = z_front / max_duration_s
            self.depth_offset = 0.0
