"""Inline suppression comments.

Two forms, mirroring the linters developers already know:

* ``# reprolint: disable=RL002`` on (or immediately above) an offending
  line suppresses the named rules for that line;
* ``# reprolint: disable-file=RL006`` anywhere in the file suppresses
  the named rules for the whole file.

``disable=all`` works in both forms.  Suppressed findings are not
dropped silently — the runner reports their count and the JSON report
carries them in full, so a suppression audit is one ``jq`` away.
"""

from __future__ import annotations

import re

from repro.tools.reprolint.model import Finding

__all__ = ["SuppressionIndex"]

_LINE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\s]+)")


def _parse_rules(blob: str) -> set[str]:
    return {part.strip().upper() for part in blob.split(",") if part.strip()}


class SuppressionIndex:
    """Per-file index of suppression comments, built once per lint."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _FILE_RE.search(text)
            if match:
                self._file_wide |= _parse_rules(match.group(1))
                continue
            match = _LINE_RE.search(text)
            if match:
                self._by_line[lineno] = _parse_rules(match.group(1))

    def is_suppressed(self, finding: Finding) -> bool:
        """True when a comment covers this finding.

        A line comment covers its own line and the line directly below
        it (so a suppression can sit above a long statement without
        sharing its line).
        """
        if self._covers(self._file_wide, finding.rule):
            return True
        for lineno in (finding.line, finding.line - 1):
            rules = self._by_line.get(lineno)
            if rules is not None and self._covers(rules, finding.rule):
                return True
        return False

    @staticmethod
    def _covers(rules: set[str], rule: str) -> bool:
        return "ALL" in rules or rule.upper() in rules

    def __bool__(self) -> bool:
        return bool(self._by_line or self._file_wide)
