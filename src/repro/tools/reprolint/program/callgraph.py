"""Conservative call graph with method-receiver heuristics.

Edges connect project functions; calls that cannot be pinned to a
project definition are recorded as *external* calls under their
canonical (alias-resolved) name so sink rules still see them.

Receiver resolution, in decreasing confidence:

1. ``self.m()`` / ``super().m()`` — mro lookup in the enclosing class.
2. ``self.attr.m()`` — the attribute's inferred class (harvested from
   ``self.attr = Ctor()`` / annotations), then mro lookup.
3. ``var.m()`` — local type inference: parameter annotations,
   ``var = Ctor()``, ``var = self.attr``, ``var = f()`` via ``f``'s
   return annotation, ``var: T`` annotations.
4. ``mod.f()`` / ``Class.m()`` — canonical name resolved through the
   import map against the project indexes.
5. Bounded method-name fallback: an unknown receiver calling ``.m()``
   links to *every* project method named ``m`` when there are at most
   ``fallback_max`` of them (edges marked ``heuristic=True``).  More
   candidates than that and the call stays external — a documented
   soundness hole in exchange for a usable signal-to-noise ratio.

Calls inside nested functions/lambdas are attributed to the enclosing
definition (conservative: the closure usually runs within it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Iterator

from repro.tools.reprolint.program.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    ProjectSymbols,
    annotation_names,
)

__all__ = ["CallSite", "Edge", "CallGraph", "build_call_graph"]

#: receiver-unknown fallback links to ≤ this many same-named methods
FALLBACK_MAX = 4

#: builtin container/str method names never resolved by name fallback —
#: an unknown receiver calling `.append()` is a list long before it is
#: a project method that happens to share the name
_FALLBACK_EXCLUDE = frozenset(
    {
        "append", "appendleft", "extend", "insert", "remove", "pop",
        "popleft", "clear", "sort", "reverse", "copy", "count", "index",
        "add", "discard", "update", "get", "setdefault", "keys",
        "values", "items", "join", "split", "rsplit", "strip", "lstrip",
        "rstrip", "startswith", "endswith", "format", "replace",
        "encode", "decode", "upper", "lower", "title",
    }
)


@dataclass(frozen=True)
class CallSite:
    """Where a call happens and what the source spelled it as."""

    path: str
    line: int
    callee_repr: str


@dataclass(frozen=True)
class Edge:
    """``caller`` qualname → ``callee`` qualname at ``site``."""

    caller: str
    callee: str
    site: CallSite
    heuristic: bool = False


class CallGraph:
    """Adjacency over function qualnames plus external-call records."""

    def __init__(self) -> None:
        self.edges_from: dict[str, list[Edge]] = {}
        #: caller qualname → [(canonical external name, site), ...]
        self.external_calls: dict[str, list[tuple[str, CallSite]]] = {}

    def add_edge(self, edge: Edge) -> None:
        """Record one project-internal caller → callee edge."""
        self.edges_from.setdefault(edge.caller, []).append(edge)

    def add_external(self, caller: str, name: str, site: CallSite) -> None:
        """Record a call that resolves outside the project (e.g. os.fsync)."""
        self.external_calls.setdefault(caller, []).append((name, site))

    def callees(self, qualname: str) -> list[Edge]:
        """Outgoing edges of a function, empty when it calls nothing."""
        return self.edges_from.get(qualname, [])

    def reachable_from(self, roots: list[str]) -> dict[str, list[Edge]]:
        """BFS closure: reached qualname → shortest edge path from a root."""
        paths: dict[str, list[Edge]] = {r: [] for r in roots}
        queue = list(roots)
        while queue:
            cur = queue.pop(0)
            for edge in self.callees(cur):
                if edge.callee not in paths:
                    paths[edge.callee] = paths[cur] + [edge]
                    queue.append(edge.callee)
        return paths

    def dump(self) -> dict[str, Any]:
        """JSON-ready form (the ``--callgraph-dump`` CI artifact)."""
        return {
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "path": e.site.path,
                    "line": e.site.line,
                    "call": e.site.callee_repr,
                    "heuristic": e.heuristic,
                }
                for edges in self.edges_from.values()
                for e in sorted(edges, key=lambda e: (e.callee, e.site.line))
            ],
            "external": [
                {"caller": caller, "callee": name, "path": s.path, "line": s.line}
                for caller, calls in sorted(self.external_calls.items())
                for name, s in sorted(calls, key=lambda c: (c[0], c[1].line))
            ],
        }


def _dotted(node: ast.AST) -> str | None:
    """Pure Name/Attribute chain as a dotted string, else ``None``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _is_super_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


class _FunctionScope:
    """Receiver-type context for resolving calls inside one function."""

    def __init__(
        self,
        fn: FunctionInfo,
        mod: ModuleSymbols,
        project: ProjectSymbols,
    ) -> None:
        self.fn = fn
        self.mod = mod
        self.project = project
        self.cls: ClassInfo | None = (
            project.class_index.get(fn.cls) if fn.cls else None
        )
        self.locals: dict[str, ClassInfo] = {}
        self._seed_params()
        self._infer_assignments()

    def _resolve_raw_class(self, raws: tuple[str, ...]) -> ClassInfo | None:
        for raw in raws:
            ci = self.project.resolve_class(raw, within=self.mod)
            if ci is not None:
                return ci
        return None

    def _seed_params(self) -> None:
        for name, raws in self.fn.param_types.items():
            ci = self._resolve_raw_class(raws)
            if ci is not None:
                self.locals[name] = ci

    def _infer_assignments(self) -> None:
        for node in ast.walk(self.fn.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.annotation is not None:
                if isinstance(node.target, ast.Name):
                    ci = self._resolve_raw_class(annotation_names(node.annotation))
                    if ci is not None:
                        self.locals[node.target.id] = ci
                continue
            if not isinstance(target, ast.Name) or value is None:
                continue
            ci = self.expr_class(value)
            if ci is not None:
                self.locals[target.id] = ci

    def expr_class(self, expr: ast.expr) -> ClassInfo | None:
        """Best-effort class of an expression's value."""
        if isinstance(expr, ast.Name):
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base: ClassInfo | None
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                base = self.cls
            else:
                base = self.expr_class(expr.value)
            if base is not None:
                return self.project.attr_class(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            targets, _ = self.resolve_call(expr)
            for t in targets:
                if t.name == "__init__" and t.cls:
                    return self.project.class_index.get(t.cls)
                ci = self._resolve_raw_class(t.return_types)
                if ci is not None:
                    return ci
            # Ctor with no __init__ of its own
            dotted = _dotted(expr.func)
            if dotted is not None:
                ci = self.project.resolve_class(dotted, within=self.mod)
                if ci is not None:
                    return ci
            return None
        return None

    def resolve_call(
        self, call: ast.Call
    ) -> tuple[list[FunctionInfo], bool]:
        """Project targets of ``call`` plus a heuristic flag."""
        func = call.func
        # super().m(...)
        if isinstance(func, ast.Attribute) and _is_super_call(func.value):
            if self.cls is not None:
                for step in self.project.mro(self.cls)[1:]:
                    if func.attr in step.methods:
                        return [step.methods[func.attr]], False
            return [], False
        dotted = _dotted(func)
        if dotted is None:
            # chained receiver like f(x).m() — fall back on the method name
            if isinstance(func, ast.Attribute):
                return self._name_fallback(func.attr)
            return [], False
        parts = dotted.split(".")
        # self.m() / self.attr.m()
        if parts[0] == "self" and self.cls is not None:
            if len(parts) == 2:
                hit = self.project.lookup_method(self.cls, parts[1])
                return ([hit], False) if hit else self._name_fallback(parts[1])
            if len(parts) == 3:
                owner = self.project.attr_class(self.cls, parts[1])
                if owner is not None:
                    hit = self.project.lookup_method(owner, parts[2])
                    if hit is not None:
                        return [hit], False
                return self._name_fallback(parts[2])
            return self._name_fallback(parts[-1])
        # local variable receiver: var.m() / var.attr.m()
        if parts[0] in self.locals:
            owner = self.locals[parts[0]]
            for attr in parts[1:-1]:
                nxt = self.project.attr_class(owner, attr)
                if nxt is None:
                    return self._name_fallback(parts[-1])
                owner = nxt
            hit = self.project.lookup_method(owner, parts[-1])
            return ([hit], False) if hit else self._name_fallback(parts[-1])
        # bare function / class in this module
        if len(parts) == 1:
            if parts[0] in self.mod.functions:
                return [self.mod.functions[parts[0]]], False
            ci = self.project.resolve_class(parts[0], within=self.mod)
            if ci is not None:
                ctor = self.project.lookup_method(ci, "__init__")
                return ([ctor], False) if ctor else ([], False)
        # canonical dotted resolution: mod.f / pkg.mod.Class.m / Class.m
        canonical = self.mod.resolve(dotted)
        hit = self.project.resolve_function(canonical)
        if hit is not None:
            return [hit], False
        # Class referenced through an import: Ctor() under an alias
        ci = self.project.resolve_class(canonical, within=self.mod)
        if ci is not None:
            ctor = self.project.lookup_method(ci, "__init__")
            return ([ctor], False) if ctor else ([], False)
        if len(parts) > 1:
            return self._name_fallback(parts[-1])
        return [], False

    def _name_fallback(self, method: str) -> tuple[list[FunctionInfo], bool]:
        if method.startswith("__") and method.endswith("__"):
            return [], False
        if method in _FALLBACK_EXCLUDE:
            return [], False
        candidates = self.project.methods_by_name.get(method, [])
        if 1 <= len(candidates) <= FALLBACK_MAX:
            return list(candidates), True
        return [], False


def _iter_calls(fn: FunctionInfo) -> Iterator[ast.Call]:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            yield node


def build_call_graph(project: ProjectSymbols) -> CallGraph:
    """Resolve every call site in every project function into edges."""
    graph = CallGraph()
    for fn in project.iter_functions():
        mod = project.modules[fn.module]
        scope = _FunctionScope(fn, mod, project)
        for call in _iter_calls(fn):
            dotted = _dotted(call.func)
            repr_ = dotted or (
                f"?.{call.func.attr}"
                if isinstance(call.func, ast.Attribute)
                else "?"
            )
            site = CallSite(path=fn.path, line=call.lineno, callee_repr=repr_)
            targets, heuristic = scope.resolve_call(call)
            if targets:
                for target in targets:
                    if target is None:
                        continue
                    graph.add_edge(
                        Edge(
                            caller=fn.qualname,
                            callee=target.qualname,
                            site=site,
                            heuristic=heuristic,
                        )
                    )
            elif dotted is not None:
                graph.add_external(fn.qualname, mod.resolve(dotted), site)
    return graph
