"""Whole-program analysis layer for reprolint.

Per-file AST checks cannot see that ``SessionView.run_query`` reaches a
lock three calls away, that two values mixed in one expression came from
different epoch pins, or that a deadline parameter was dropped one hop
into the call tree.  This package supplies the missing machinery:

* :mod:`symbols` — a project-wide symbol table: import-alias →
  canonical-name resolution, class/method/function indexes, base-class
  (mro) resolution, attribute- and local-variable type inference.
* :mod:`callgraph` — a conservative call graph over those symbols with
  method-receiver heuristics and BFS chain reconstruction.
* :mod:`dataflow` — a small forward taint framework with per-function
  summaries (param→return flows, param-combine sites).
* :mod:`analysis` — the :class:`ProgramAnalysis` facade handed to
  :class:`~repro.tools.reprolint.base.ProgramChecker` rules, plus
  content-hash interface summaries driving the incremental cache.

Everything here is stdlib-``ast`` only, like the rest of reprolint.
"""

from __future__ import annotations

from repro.tools.reprolint.program.analysis import ProgramAnalysis
from repro.tools.reprolint.program.callgraph import CallGraph, CallSite, Edge
from repro.tools.reprolint.program.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    ProjectSymbols,
)

__all__ = [
    "ProgramAnalysis",
    "CallGraph",
    "CallSite",
    "Edge",
    "ClassInfo",
    "FunctionInfo",
    "ModuleSymbols",
    "ProjectSymbols",
]
