"""Project-wide symbol table: canonical names, classes, and types.

The per-file rules' historic blind spot is dotted-*string* matching:
``from threading import RLock as _L`` or ``import repro.store.shm as s``
rename the thing being matched.  :class:`ModuleSymbols` closes that hole
by recording every import binding and resolving any dotted name seen in
the module back to its canonical form (``_L`` → ``threading.RLock``,
``s.create_block`` → ``repro.store.shm.create_block``).

:class:`ProjectSymbols` stitches the per-module tables into project
indexes — functions and classes by qualified name, methods by bare name,
base-class (mro) chains — and adds the type inference the call graph
needs: class attribute types harvested from ``self.x = Ctor()`` /
``self.x: T`` sites and annotation parsing that understands string
annotations, ``Optional[T]``/``Union``, and PEP 604 unions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleSymbols",
    "ProjectSymbols",
    "annotation_names",
    "exempt_rules_for_line",
]

_EXEMPT_MARK = "# reprolint: exempt="


def exempt_rules_for_line(lines: list[str], lineno: int) -> frozenset[str]:
    """Rules a ``# reprolint: exempt=RLxxx[,RLyyy]`` marker waives for the
    definition at 1-based ``lineno``.  The marker may sit on the def line
    itself or anywhere in the contiguous comment block directly above it
    (so a multi-line rationale can follow the rule list)."""
    found: set[str] = set()

    def harvest(idx: int) -> None:
        if 0 <= idx < len(lines) and _EXEMPT_MARK in lines[idx]:
            spec = lines[idx].split(_EXEMPT_MARK, 1)[1]
            # the rule list ends at whitespace so a rationale can follow
            spec = spec.split()[0] if spec.split() else ""
            found.update(r.strip().upper() for r in spec.split(",") if r.strip())

    harvest(lineno - 1)
    idx = lineno - 2
    while 0 <= idx < len(lines) and lines[idx].lstrip().startswith("#"):
        harvest(idx)
        idx -= 1
    return frozenset(found)


def annotation_names(node: ast.AST | None) -> tuple[str, ...]:
    """Dotted names an annotation could denote, unions flattened.

    ``"DatasetService"`` (string annotation) → ``("DatasetService",)``;
    ``StageCache | None`` → ``("StageCache",)``; ``Optional[Deadline]``
    → ``("Deadline",)``.  Unresolvable shapes yield ``()``.
    """
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            inner = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ()
        return annotation_names(inner)
    if isinstance(node, ast.Name):
        return () if node.id == "None" else (node.id,)
    if isinstance(node, ast.Attribute):
        parts: list[str] = []
        cur: ast.AST = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            return (".".join(reversed(parts)),)
        return ()
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return annotation_names(node.left) + annotation_names(node.right)
    if isinstance(node, ast.Subscript):
        head = annotation_names(node.value)
        if head and head[0].rsplit(".", 1)[-1] in ("Optional", "Union"):
            elts = (
                node.slice.elts
                if isinstance(node.slice, ast.Tuple)
                else [node.slice]
            )
            out: tuple[str, ...] = ()
            for elt in elts:
                out += annotation_names(elt)
            return out
        # list[Segment], dict[str, X] … — the container is the type
        return head
    return ()


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str  #: ``module.[Class.]name``
    module: str
    path: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  #: enclosing class qualname, if a method
    params: tuple[str, ...] = ()
    #: param name → raw annotation names (unresolved)
    param_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: raw annotation names of the return type
    return_types: tuple[str, ...] = ()
    exempt: frozenset[str] = frozenset()

    @property
    def display(self) -> str:
        return self.qualname


@dataclass
class ClassInfo:
    """One class definition with its methods and inferred attr types."""

    name: str
    qualname: str
    module: str
    path: str
    lineno: int
    node: ast.ClassDef
    #: raw dotted base names as written (resolved via module imports)
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: self-attribute name → raw annotation/ctor names
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _all_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.arg]:
    a = node.args
    yield from a.posonlyargs
    yield from a.args
    if a.vararg:
        yield a.vararg
    yield from a.kwonlyargs
    if a.kwarg:
        yield a.kwarg


class ModuleSymbols:
    """Symbol table for one module: imports, functions, classes.

    ``resolve`` is the alias killer: it rewrites the leading segment of
    any dotted name through the import map, so rule logic compares
    canonical names instead of whatever the file happened to call them.
    """

    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        #: local binding → canonical dotted name
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    # construction -----------------------------------------------------------

    @classmethod
    def from_source(
        cls, source: str, path: str, module: str, tree: ast.Module | None = None
    ) -> "ModuleSymbols":
        if tree is None:
            tree = ast.parse(source, filename=path)
        self = cls(module, path)
        lines = source.splitlines()
        self._collect_imports(tree)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(stmt, lines, cls_qual=None)
                self.functions[info.name] = info
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = self._class_info(stmt, lines)
        return self

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    pkg_parts = self.module.split(".")
                    pkg_parts = pkg_parts[: len(pkg_parts) - node.level] or []
                    base = ".".join(pkg_parts + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    def _function_info(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        lines: list[str],
        cls_qual: str | None,
    ) -> FunctionInfo:
        params = tuple(a.arg for a in _all_params(node))
        param_types = {
            a.arg: annotation_names(a.annotation)
            for a in _all_params(node)
            if a.annotation is not None
        }
        owner = cls_qual or self.module
        return FunctionInfo(
            name=node.name,
            qualname=f"{owner}.{node.name}",
            module=self.module,
            path=self.path,
            lineno=node.lineno,
            node=node,
            cls=cls_qual,
            params=params,
            param_types=param_types,
            return_types=annotation_names(node.returns),
            exempt=exempt_rules_for_line(lines, node.lineno),
        )

    def _class_info(self, node: ast.ClassDef, lines: list[str]) -> ClassInfo:
        qual = f"{self.module}.{node.name}"
        info = ClassInfo(
            name=node.name,
            qualname=qual,
            module=self.module,
            path=self.path,
            lineno=node.lineno,
            node=node,
            bases=tuple(
                name for b in node.bases for name in annotation_names(b)
            ),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._function_info(
                    stmt, lines, cls_qual=qual
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.attr_types[stmt.target.id] = annotation_names(stmt.annotation)
        # harvest self.x = … / self.x: T from method bodies
        for method in info.methods.values():
            for sub in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and sub.annotation is not None
                    ):
                        info.attr_types.setdefault(
                            target.attr, annotation_names(sub.annotation)
                        )
                        continue
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and value is not None
                ):
                    inferred = self._value_type_names(value, method)
                    if inferred:
                        info.attr_types.setdefault(target.attr, inferred)
        return info

    def _value_type_names(
        self, value: ast.expr, method: FunctionInfo
    ) -> tuple[str, ...]:
        """Raw type names for the RHS of a ``self.x = value`` assignment."""
        if isinstance(value, ast.Call):
            # self.x = Ctor(...) — the callee name doubles as the type
            names: list[str] = []
            cur: ast.AST = value.func
            while isinstance(cur, ast.Attribute):
                names.append(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                names.append(cur.id)
                return (".".join(reversed(names)),)
            return ()
        if isinstance(value, ast.Name) and value.id in method.param_types:
            # self.x = param — propagate the param's annotation
            return method.param_types[value.id]
        return ()

    # resolution -------------------------------------------------------------

    def resolve(self, dotted: str) -> str:
        """Canonicalize ``dotted`` through this module's import map."""
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every function and method defined in this module."""
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()


class ProjectSymbols:
    """All modules' symbols plus the project-level indexes."""

    def __init__(self, modules: dict[str, ModuleSymbols]) -> None:
        self.modules = modules
        self.function_index: dict[str, FunctionInfo] = {}
        self.class_index: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        for mod in modules.values():
            for fn in mod.functions.values():
                self.function_index[fn.qualname] = fn
            for ci in mod.classes.values():
                self.class_index[ci.qualname] = ci
                self.classes_by_name.setdefault(ci.name, []).append(ci)
                for m in ci.methods.values():
                    self.function_index[m.qualname] = m
                    self.methods_by_name.setdefault(m.name, []).append(m)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every function and method across the whole project."""
        for mod in self.modules.values():
            yield from mod.iter_functions()

    def resolve_class(
        self, raw: str, within: ModuleSymbols | None = None
    ) -> ClassInfo | None:
        """Class named by ``raw`` (possibly aliased / bare) or ``None``.

        Tries: canonical form via ``within``'s imports, the raw name as a
        qualname, then a unique bare-name match — ambiguity returns
        ``None`` (conservative: no guessing between same-named classes).
        """
        candidates = [raw]
        if within is not None:
            candidates.insert(0, within.resolve(raw))
            if "." not in raw and raw in within.classes:
                return within.classes[raw]
        for cand in candidates:
            if cand in self.class_index:
                return self.class_index[cand]
        bare = raw.rsplit(".", 1)[-1]
        same = self.classes_by_name.get(bare, [])
        if len(same) == 1:
            return same[0]
        return None

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """The class plus its resolvable bases, breadth-first."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        queue = [cls]
        while queue:
            cur = queue.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            out.append(cur)
            mod = self.modules.get(cur.module)
            for base in cur.bases:
                resolved = self.resolve_class(base, within=mod)
                if resolved is not None:
                    queue.append(resolved)
        return out

    def lookup_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """``name`` resolved through ``cls``'s mro, or ``None``."""
        for step in self.mro(cls):
            if name in step.methods:
                return step.methods[name]
        return None

    def attr_class(
        self, cls: ClassInfo, attr: str
    ) -> ClassInfo | None:
        """The class an instance attribute holds, walking the mro."""
        for step in self.mro(cls):
            if attr in step.attr_types:
                mod = self.modules.get(step.module)
                for raw in step.attr_types[attr]:
                    resolved = self.resolve_class(raw, within=mod)
                    if resolved is not None:
                        return resolved
        return None

    def resolve_function(self, canonical: str) -> FunctionInfo | None:
        """FunctionInfo for a canonical dotted name, trying both
        ``module.func`` and ``module.Class.method`` shapes."""
        hit = self.function_index.get(canonical)
        if hit is not None:
            return hit
        if "." in canonical:
            owner, name = canonical.rsplit(".", 1)
            ci = self.class_index.get(owner)
            if ci is not None:
                return self.lookup_method(ci, name)
        return None
