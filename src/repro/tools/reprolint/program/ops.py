"""Side-effect operation scanning shared by RL003 and RL009.

``scan_ops`` classifies the operations inside one function body that a
declared-lock-free path must never reach: lock acquisition (``with
self._lock`` / ``.acquire()``), blocking calls (``sleep``, ``fsync``,
``open``), shared-memory lifecycle (create/unlink), and mutation of a
service's atomically-published ``_active`` snapshot.

Lock detection resolves through the symbol table instead of matching
the literal attribute name ``_lock``: any attribute assigned from a
(possibly aliased) ``threading.Lock``/``RLock``/… constructor counts,
which closes the ``from threading import RLock as _L`` blind spot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.tools.reprolint.program.symbols import (
    ClassInfo,
    ModuleSymbols,
)

__all__ = ["Op", "scan_ops", "lock_attrs_of_class", "LOCK_TYPES"]

#: canonical constructor names that produce a mutex-like object
LOCK_TYPES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: canonical callables that block the calling thread
BLOCKING_CALLS = frozenset({"time.sleep", "os.fsync", "os.fdatasync", "open"})

_SHM_CREATE_SUFFIXES = ("create_block",)
_SHM_CTOR_SUFFIXES = ("SharedBlock", "SharedMemory")


@dataclass(frozen=True)
class Op:
    """One side-effecting operation at one location."""

    kind: str  #: "lock" | "blocking" | "shm-create" | "shm-unlink" | "active-write"
    path: str
    line: int
    detail: str


def lock_attrs_of_class(cls: ClassInfo, mod: ModuleSymbols) -> frozenset[str]:
    """Instance attributes of ``cls`` holding a lock, alias-resolved."""
    out = set()
    for attr, raws in cls.attr_types.items():
        for raw in raws:
            if mod.resolve(raw) in LOCK_TYPES:
                out.add(attr)
    return frozenset(out)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _looks_like_lock(expr: ast.expr, lock_attrs: frozenset[str]) -> str | None:
    """Dotted repr when ``expr`` denotes a lock object, else ``None``."""
    target = expr
    if isinstance(target, ast.Subscript):  # self._locks[i]
        target = target.value
    dotted = _dotted(target)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    if last in lock_attrs or "lock" in last.lower() or "mutex" in last.lower():
        return dotted
    return None


def scan_ops(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
    path: str,
    mod: ModuleSymbols,
    lock_attrs: frozenset[str],
) -> list[Op]:
    """All lock/blocking/shm/active-write operations in one body."""
    ops: list[Op] = []
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                ctx = item.context_expr
                expr = ctx.func if isinstance(ctx, ast.Call) else ctx
                lockish = _looks_like_lock(expr, lock_attrs)
                if lockish:
                    ops.append(
                        Op("lock", path, node.lineno, f"with {lockish}")
                    )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            canonical = mod.resolve(dotted)
            last = canonical.rsplit(".", 1)[-1]
            if (
                last == "acquire"
                and isinstance(node.func, ast.Attribute)
                and _looks_like_lock(node.func.value, lock_attrs)
            ):
                ops.append(Op("lock", path, node.lineno, f"{dotted}()"))
            elif canonical in BLOCKING_CALLS or last in ("sleep", "fsync"):
                ops.append(Op("blocking", path, node.lineno, f"{canonical}()"))
            elif last == "open" and isinstance(node.func, ast.Attribute):
                ops.append(Op("blocking", path, node.lineno, f"{dotted}()"))
            elif last.endswith(_SHM_CREATE_SUFFIXES):
                ops.append(Op("shm-create", path, node.lineno, f"{canonical}()"))
            elif last in _SHM_CTOR_SUFFIXES and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value
                for kw in node.keywords
            ):
                ops.append(
                    Op("shm-create", path, node.lineno, f"{canonical}(create=True)")
                )
            elif last == "unlink":
                ops.append(Op("shm-unlink", path, node.lineno, f"{dotted}()"))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "_active":
                    ops.append(
                        Op(
                            "active-write",
                            path,
                            node.lineno,
                            f"{_dotted(target) or target.attr} = …",
                        )
                    )
    return ops
