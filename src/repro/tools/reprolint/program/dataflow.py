"""Small forward dataflow/taint framework with function summaries.

Built for RL010 (epoch provenance) but rule-agnostic: the rule supplies
a *seed* predicate (which calls mint a new taint tag — e.g. epoch pin
sites) and receives *mix* callbacks (sites where values carrying two or
more distinct tags meet in one operation).

Scope and approximations, by design:

* Flow-sensitive per function, statements walked in source order, one
  pass — loops are not iterated to fixpoint.
* Only simple-name bindings are tracked; tags die on attribute/subscript
  stores.  Attribute *loads* propagate the base object's tags, except
  attributes the rule declares identity-stripping (``.epoch``).
* Comparisons never mix — ``snap.epoch == self.epoch`` is the legitimate
  staleness probe, not cross-epoch data flow.
* Interprocedural flow via per-function summaries: which params reach
  the return value, and which param *pairs* the body combines.  Applied
  at call sites so a helper that merges rows from two different pins
  fires with the callee's combine site in the chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from repro.tools.reprolint.program.callgraph import _FunctionScope
from repro.tools.reprolint.program.symbols import (
    FunctionInfo,
    ProjectSymbols,
)

__all__ = ["Tag", "Hop", "Mix", "Summary", "TaintAnalysis"]


@dataclass(frozen=True)
class Hop:
    """One step of a rendered taint chain."""

    path: str
    line: int
    note: str


@dataclass(frozen=True)
class Tag:
    """One taint origin (a seed site, or a synthetic parameter tag)."""

    ident: str
    path: str
    line: int
    note: str


#: tag → provenance chain from its seed to here
Env = dict[str, dict[Tag, tuple[Hop, ...]]]
TagChains = dict[Tag, tuple[Hop, ...]]


@dataclass
class Mix:
    """Two-plus distinct tags meeting in one operation."""

    path: str
    line: int
    note: str
    tags: TagChains


@dataclass
class Summary:
    """Interprocedural digest of one function."""

    #: parameter indices whose tags reach a return value
    returns_params: set[int] = field(default_factory=set)
    #: (param_i, param_j, line) pairs the body combines
    combines: list[tuple[int, int, int]] = field(default_factory=list)


def _merge(into: TagChains, more: TagChains) -> TagChains:
    for tag, chain in more.items():
        into.setdefault(tag, chain)
    return into


class TaintAnalysis:
    """Run the taint pass over every function in a project."""

    def __init__(
        self,
        project: ProjectSymbols,
        *,
        seed_for_call: Callable[[ast.Call, _FunctionScope], Tag | None],
        strip_attrs: tuple[str, ...] = (),
    ) -> None:
        self.project = project
        self.seed_for_call = seed_for_call
        self.strip_attrs = strip_attrs
        self.mixes: list[Mix] = []
        self._summaries: dict[str, Summary] = {}
        self._in_progress: set[str] = set()

    # summaries --------------------------------------------------------------

    def summary_of(self, fn: FunctionInfo) -> Summary:
        """Memoized per-function summary (empty on recursion cycles)."""
        if fn.qualname in self._summaries:
            return self._summaries[fn.qualname]
        if fn.qualname in self._in_progress:
            return Summary()
        self._in_progress.add(fn.qualname)
        try:
            summary = self._compute_summary(fn)
        finally:
            self._in_progress.discard(fn.qualname)
        self._summaries[fn.qualname] = summary
        return summary

    def _compute_summary(self, fn: FunctionInfo) -> Summary:
        env: Env = {}
        param_tags: dict[Tag, int] = {}
        for i, name in enumerate(fn.params):
            tag = Tag(
                ident=f"{fn.qualname}#p{i}",
                path=fn.path,
                line=fn.lineno,
                note=f"parameter `{name}` of {fn.qualname}",
            )
            env[name] = {tag: ()}
            param_tags[tag] = i
        summary = Summary()
        run = _FunctionTaint(self, fn, env, collect_mixes=False)
        run.execute()
        for value_tags in run.returned:
            for tag in value_tags:
                if tag in param_tags:
                    summary.returns_params.add(param_tags[tag])
        for mix in run.local_mixes:
            indices = sorted(
                {param_tags[t] for t in mix.tags if t in param_tags}
            )
            for a in range(len(indices)):
                for b in range(a + 1, len(indices)):
                    summary.combines.append((indices[a], indices[b], mix.line))
        return summary

    # analysis entry ---------------------------------------------------------

    def run(self) -> list[Mix]:
        """Analyze every project function with an empty initial env."""
        for fn in self.project.iter_functions():
            run = _FunctionTaint(self, fn, env={}, collect_mixes=True)
            run.execute()
            self.mixes.extend(run.local_mixes)
        return self.mixes


class _FunctionTaint:
    """One forward pass over one function body."""

    def __init__(
        self,
        owner: TaintAnalysis,
        fn: FunctionInfo,
        env: Env,
        *,
        collect_mixes: bool,
    ) -> None:
        self.owner = owner
        self.fn = fn
        self.env = env
        self.collect_mixes = collect_mixes
        self.local_mixes: list[Mix] = []
        self.returned: list[TagChains] = []
        self.scope = _FunctionScope(
            fn, owner.project.modules[fn.module], owner.project
        )

    def execute(self) -> None:
        for stmt in self.fn.node.body:
            self._stmt(stmt)

    # statements -------------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            tags = self._tags(stmt.value)
            for target in stmt.targets:
                self._bind(target, tags)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._tags(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tags = self._tags(stmt.value)
            if isinstance(stmt.target, ast.Name):
                _merge(self.env.setdefault(stmt.target.id, {}), tags)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returned.append(self._tags(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._tags(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self._tags(stmt.test)
            for s in stmt.body + stmt.orelse:
                self._stmt(s)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._tags(stmt.iter))
            for s in stmt.body + stmt.orelse:
                self._stmt(s)
        elif isinstance(stmt, ast.While):
            self._tags(stmt.test)
            for s in stmt.body + stmt.orelse:
                self._stmt(s)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._tags(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tags)
            for s in stmt.body:
                self._stmt(s)
        elif isinstance(stmt, ast.Try):
            for s in (
                stmt.body
                + [h_s for h in stmt.handlers for h_s in h.body]
                + stmt.orelse
                + stmt.finalbody
            ):
                self._stmt(s)
        # nested defs/classes: not entered — their bodies run later

    def _bind(self, target: ast.expr, tags: TagChains) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dict(tags)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tags)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags)
        # attribute/subscript stores drop tags (see module docstring)

    # expressions ------------------------------------------------------------

    def _tags(self, expr: ast.expr) -> TagChains:
        if isinstance(expr, ast.Name):
            return dict(self.env.get(expr.id, {}))
        if isinstance(expr, ast.Attribute):
            if expr.attr in self.owner.strip_attrs:
                return {}
            return self._tags(expr.value)
        if isinstance(expr, ast.Subscript):
            base = self._tags(expr.value)
            if isinstance(expr.slice, ast.expr):
                _merge(base, self._tags(expr.slice))
            return base
        if isinstance(expr, ast.Call):
            return self._call_tags(expr)
        if isinstance(expr, ast.BinOp):
            left = self._tags(expr.left)
            right = self._tags(expr.right)
            combined = _merge(dict(left), right)
            self._check_mix(expr, combined, "binary operation")
            return combined
        if isinstance(expr, ast.Compare):
            # staleness probes (`snap.epoch == self.epoch`) are legitimate
            return {}
        if isinstance(expr, ast.BoolOp):
            out: TagChains = {}
            for v in expr.values:
                _merge(out, self._tags(v))
            return out
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = {}
            for elt in expr.elts:
                _merge(out, self._tags(elt))
            return out
        if isinstance(expr, ast.Dict):
            out = {}
            for v in expr.values:
                if v is not None:
                    _merge(out, self._tags(v))
            return out
        if isinstance(expr, ast.Starred):
            return self._tags(expr.value)
        if isinstance(expr, ast.IfExp):
            self._tags(expr.test)
            out = self._tags(expr.body)
            _merge(out, self._tags(expr.orelse))
            return out
        if isinstance(expr, ast.UnaryOp):
            return self._tags(expr.operand)
        if isinstance(expr, ast.Await):
            return self._tags(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = {}
            for gen in expr.generators:
                _merge(out, self._tags(gen.iter))
            return out
        if isinstance(expr, ast.DictComp):
            out = {}
            for gen in expr.generators:
                _merge(out, self._tags(gen.iter))
            return out
        if isinstance(expr, ast.JoinedStr):
            return {}
        return {}

    def _call_tags(self, call: ast.Call) -> TagChains:
        receiver: TagChains = {}
        if isinstance(call.func, ast.Attribute):
            receiver = self._tags(call.func.value)
        arg_tags: list[TagChains] = [self._tags(a) for a in call.args]
        kw_tags: dict[str, TagChains] = {
            kw.arg: self._tags(kw.value)
            for kw in call.keywords
            if kw.arg is not None
        }
        star_kw = [
            self._tags(kw.value) for kw in call.keywords if kw.arg is None
        ]

        all_in: TagChains = dict(receiver)
        for t in arg_tags:
            _merge(all_in, t)
        for t in kw_tags.values():
            _merge(all_in, t)
        for t in star_kw:
            _merge(all_in, t)
        self._check_mix(call, all_in, "call")

        # seeding: a pin/attach call on an untagged receiver mints a tag
        if not receiver:
            seed = self.owner.seed_for_call(call, self.scope)
            if seed is not None:
                return {seed: (Hop(seed.path, seed.line, seed.note),)}

        # interprocedural: apply the callee's summary where we know it
        targets, heuristic = self.scope.resolve_call(call)
        result: TagChains = {}
        applied = False
        for target in targets:
            if target is None or heuristic:
                continue
            summary = self.owner.summary_of(target)
            applied = True
            positional = self._positional_map(target, call, receiver, arg_tags, kw_tags)
            for idx in summary.returns_params:
                chains = positional.get(idx)
                if chains:
                    for tag, chain in chains.items():
                        result.setdefault(
                            tag,
                            chain
                            + (
                                Hop(
                                    self.fn.path,
                                    call.lineno,
                                    f"returned through {target.qualname}",
                                ),
                            ),
                        )
            for i, j, line in summary.combines:
                a, b = positional.get(i, {}), positional.get(j, {})
                if a and b and set(a) != set(b):
                    mixed: TagChains = {}
                    for tag, chain in {**a, **b}.items():
                        mixed[tag] = chain + (
                            Hop(
                                self.fn.path,
                                call.lineno,
                                f"passed into {target.qualname}",
                            ),
                        )
                    self._record_mix(
                        Mix(
                            path=target.path,
                            line=line,
                            note=f"combined inside {target.qualname}",
                            tags=mixed,
                        )
                    )
        if applied:
            return result
        # unknown callee: conservative propagate-through
        return all_in

    def _positional_map(
        self,
        target: FunctionInfo,
        call: ast.Call,
        receiver: TagChains,
        arg_tags: list[TagChains],
        kw_tags: dict[str, TagChains],
    ) -> dict[int, TagChains]:
        out: dict[int, TagChains] = {}
        params = list(target.params)
        offset = 0
        if target.cls is not None and params and params[0] in ("self", "cls"):
            out[0] = receiver
            offset = 1
        for i, tags in enumerate(arg_tags):
            out[i + offset] = tags
        for name, tags in kw_tags.items():
            if name in params:
                out[params.index(name)] = tags
        return out

    def _check_mix(self, node: ast.expr, tags: TagChains, what: str) -> None:
        if len(tags) >= 2:
            self._record_mix(
                Mix(
                    path=self.fn.path,
                    line=node.lineno,
                    note=f"{what} in {self.fn.qualname}",
                    tags=dict(tags),
                )
            )

    def _record_mix(self, mix: Mix) -> None:
        self.local_mixes.append(mix)
