"""`ProgramAnalysis`: the facade handed to program-scope rules.

One instance per lint run holds the project symbol table, the lazily
built call graph, per-function side-effect ops and loop sites, and the
per-module *interface summaries* that drive the incremental cache
(see :mod:`repro.tools.reprolint.incremental`).

An interface summary digests exactly what the program rules read from a
module — imports, class bases and attribute types, function signatures,
exempt markers, resolved call names, side-effect ops, and loop iterable
names.  Two module versions with equal summaries are interchangeable
*as a dependency*: no program finding in another file can differ
between them (line numbers inside the module itself can, which is why a
changed file always recomputes its own findings).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass

from repro.tools.reprolint.program.callgraph import (
    CallGraph,
    build_call_graph,
)
from repro.tools.reprolint.program.ops import Op, lock_attrs_of_class, scan_ops
from repro.tools.reprolint.program.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    ProjectSymbols,
)

__all__ = ["ProgramAnalysis", "LoopSite"]


@dataclass(frozen=True)
class LoopSite:
    """One ``for``/``while`` statement and the names its header reads."""

    path: str
    line: int
    names: tuple[str, ...]


def _header_names(expr: ast.expr) -> tuple[str, ...]:
    """Bare names and attribute names read by a loop header expression."""
    out: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.Attribute):
            out.add(node.attr)
    return tuple(sorted(out))


class ProgramAnalysis:
    """Whole-program view over one set of parsed files."""

    def __init__(self, modules: dict[str, ModuleSymbols]) -> None:
        self.project = ProjectSymbols(modules)
        self._graph: CallGraph | None = None
        self._lock_attrs: dict[str, frozenset[str]] = {}
        self._ops: dict[str, list[Op]] = {}
        self._loops: dict[str, list[LoopSite]] = {}

    @classmethod
    def build(
        cls, files: list[tuple[str, str, str, ast.Module]]
    ) -> "ProgramAnalysis":
        """From ``(path, module_name, source, tree)`` tuples.

        Later files win module-name collisions (only plausible between
        unrelated fixture stems; real packages have unique dotted names).
        """
        modules: dict[str, ModuleSymbols] = {}
        for path, module, source, tree in files:
            modules[module] = ModuleSymbols.from_source(
                source, path, module, tree=tree
            )
        return cls(modules)

    # graph ------------------------------------------------------------------

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = build_call_graph(self.project)
        return self._graph

    # per-function facts -----------------------------------------------------

    def lock_attrs(self, cls_info: ClassInfo) -> frozenset[str]:
        """Lock-typed attribute names of a class, MRO included (memoized)."""
        cached = self._lock_attrs.get(cls_info.qualname)
        if cached is None:
            mod = self.project.modules[cls_info.module]
            cached = frozenset(
                attr
                for step in self.project.mro(cls_info)
                for attr in lock_attrs_of_class(
                    step, self.project.modules[step.module]
                )
            ) | lock_attrs_of_class(cls_info, mod)
            self._lock_attrs[cls_info.qualname] = cached
        return cached

    def ops_of(self, fn: FunctionInfo) -> list[Op]:
        """Forbidden-op sites (lock/blocking/shm/active-write) in a
        function body (memoized)."""
        cached = self._ops.get(fn.qualname)
        if cached is None:
            mod = self.project.modules[fn.module]
            lock_attrs: frozenset[str] = frozenset()
            if fn.cls:
                ci = self.project.class_index.get(fn.cls)
                if ci is not None:
                    lock_attrs = self.lock_attrs(ci)
            cached = scan_ops(fn.node, fn.path, mod, lock_attrs)
            self._ops[fn.qualname] = cached
        return cached

    def loops_of(self, fn: FunctionInfo) -> list[LoopSite]:
        """Loop sites in a function body with their header names (memoized)."""
        cached = self._loops.get(fn.qualname)
        if cached is None:
            cached = []
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    cached.append(
                        LoopSite(fn.path, node.lineno, _header_names(node.iter))
                    )
                elif isinstance(node, ast.While):
                    cached.append(
                        LoopSite(fn.path, node.lineno, _header_names(node.test))
                    )
            self._loops[fn.qualname] = cached
        return cached

    # root resolution --------------------------------------------------------

    def resolve_roots(
        self, roots: dict[str, tuple[str, ...]]
    ) -> dict[str, FunctionInfo]:
        """``{class name: (method, ...)}`` → qualname → FunctionInfo.

        Class names are matched by bare name across the project (so the
        same defaults drive both ``src`` and fixture mini-packages);
        methods resolve through the mro so a subclass inheriting
        ``query`` maps to the defining base method.
        """
        out: dict[str, FunctionInfo] = {}
        for cls_name, methods in roots.items():
            for ci in self.project.classes_by_name.get(cls_name, []):
                for method in methods:
                    fn = self.project.lookup_method(ci, method)
                    if fn is not None:
                        out[fn.qualname] = fn
        return out

    # interface summaries ----------------------------------------------------

    def interface_summary(self, module: str) -> str:
        """Content hash of everything program rules read from ``module``."""
        mod = self.project.modules[module]
        doc: dict = {"imports": sorted(mod.imports.items()), "defs": []}
        for cls_info in sorted(mod.classes.values(), key=lambda c: c.qualname):
            doc["defs"].append(
                {
                    "class": cls_info.qualname,
                    "bases": list(cls_info.bases),
                    "attrs": sorted(
                        (k, list(v)) for k, v in cls_info.attr_types.items()
                    ),
                }
            )
        for fn in sorted(mod.iter_functions(), key=lambda f: f.qualname):
            calls = sorted(
                {
                    mod.resolve(d)
                    for node in ast.walk(fn.node)
                    if isinstance(node, ast.Call)
                    for d in [_call_dotted(node)]
                    if d is not None
                }
            )
            doc["defs"].append(
                {
                    "fn": fn.qualname,
                    "params": list(fn.params),
                    "ptypes": sorted(
                        (k, list(v)) for k, v in fn.param_types.items()
                    ),
                    "rtypes": list(fn.return_types),
                    "exempt": sorted(fn.exempt),
                    "calls": calls,
                    "ops": sorted(
                        (op.kind, op.detail) for op in self.ops_of(fn)
                    ),
                    "loops": sorted(
                        loop.names for loop in self.loops_of(fn)
                    ),
                }
            )
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def program_signature(self) -> str:
        """Hash over every module's interface summary."""
        blob = json.dumps(
            sorted(
                (name, self.interface_summary(name))
                for name in self.project.modules
            ),
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _call_dotted(node: ast.Call) -> str | None:
    parts: list[str] = []
    cur: ast.AST = node.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
