"""Checker base class, rule registry, and shared AST utilities.

Checkers are :class:`ast.NodeVisitor` subclasses registered by rule id.
The runner instantiates one checker per (file, rule) pair — checkers
keep per-file state freely and never see two files.

The helpers here cover the recurring needs of invariant checking on
Python ASTs: resolving dotted call/attribute names, enumerating the
names an expression reads, and walking function bodies with their
enclosing class recorded.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any, Iterator

from repro.tools.reprolint.model import ChainHop, Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tools.reprolint.program.analysis import ProgramAnalysis
    from repro.tools.reprolint.program.symbols import ModuleSymbols

__all__ = [
    "Checker",
    "ProgramChecker",
    "register",
    "registered_rules",
    "checker_for",
    "dotted_name",
    "names_read",
    "call_name",
    "iter_functions",
    "setflags_enables_write",
]

_REGISTRY: dict[str, type["Checker"]] = {}


def register(cls: type["Checker"]) -> type["Checker"]:
    """Class decorator adding a checker to the global rule registry."""
    if not cls.rule:
        raise ValueError(f"{cls.__name__} has no rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker for rule {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_rules() -> tuple[str, ...]:
    """All known rule ids, sorted."""
    return tuple(sorted(_REGISTRY))


def checker_for(rule: str) -> type["Checker"]:
    """The checker class registered under ``rule`` (KeyError if none)."""
    return _REGISTRY[rule]


class Checker(ast.NodeVisitor):
    """One rule applied to one file.

    Subclasses set ``rule``, ``summary`` (one-line description for
    ``--list-rules``), and ``default_options``; they report via
    :meth:`add` and receive merged per-rule options in
    ``self.options``.
    """

    rule: str = ""
    summary: str = ""
    default_options: dict[str, Any] = {}
    #: True for whole-program rules (run once per tree, not per file)
    program_scope: bool = False

    def __init__(
        self,
        path: str,
        options: dict[str, Any] | None = None,
        symbols: "ModuleSymbols | None" = None,
    ) -> None:
        self.path = path
        self.options: dict[str, Any] = {**self.default_options, **(options or {})}
        self.findings: list[Finding] = []
        #: per-file symbol table (import-alias resolution); always built
        #: by the runner, ``None`` only when a checker is constructed by
        #: hand in a unit test.
        self.symbols = symbols

    def check(self, tree: ast.AST) -> list[Finding]:
        """Run the rule over a parsed module; returns its findings."""
        self.visit(tree)
        return self.findings

    def resolve(self, dotted: str) -> str:
        """Canonicalize a dotted name through the file's import map, so
        ``from threading import RLock as _L`` cannot hide ``_L`` from a
        rule that matches ``threading.RLock``."""
        if self.symbols is None:
            return dotted
        return self.symbols.resolve(dotted)

    def resolved_call_name(self, call: ast.Call) -> str:
        """Alias-resolved dotted name of a call's callee."""
        return self.resolve(call_name(call))

    def add(
        self,
        node: ast.AST,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
    ) -> None:
        """Record one finding at ``node``'s location."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=self.rule,
                message=message,
                severity=severity,
            )
        )

    def add_at(
        self,
        path: str,
        line: int,
        message: str,
        *,
        col: int = 0,
        severity: Severity = Severity.ERROR,
        chain: tuple[ChainHop, ...] = (),
    ) -> None:
        """Record a finding at an explicit location (program rules land
        findings in whatever file the violation's root lives in)."""
        self.findings.append(
            Finding(
                path=path,
                line=line,
                col=col,
                rule=self.rule,
                message=message,
                severity=severity,
                chain=chain,
            )
        )


class ProgramChecker(Checker):
    """One rule applied to the whole program.

    The runner instantiates a program checker once per run (not per
    file) and calls :meth:`check_program` with the shared
    :class:`~repro.tools.reprolint.program.analysis.ProgramAnalysis`.
    Findings carry explicit paths (via :meth:`add_at`) and optional
    call/taint chains; scoping and suppressions are applied afterwards
    per finding location, exactly like per-file findings.
    """

    program_scope = True

    def __init__(self, options: dict[str, Any] | None = None) -> None:
        super().__init__(path="<program>", options=options)

    def check_program(self, analysis: "ProgramAnalysis") -> list[Finding]:
        """Run the rule over the whole-program :class:`ProgramAnalysis`."""
        raise NotImplementedError

    def check(self, tree: ast.AST) -> list[Finding]:  # pragma: no cover
        raise TypeError(
            f"{self.rule} is a program rule; run it via check_program()"
        )


# AST utilities --------------------------------------------------------------

def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted path of a Name/Attribute chain.

    ``self.cache.put`` → ``"self.cache.put"``; anything that is not a
    pure attribute chain (calls, subscripts) contributes a ``?`` so the
    result still ends with the trailing attributes: ``foo().unlink`` →
    ``"?.unlink"``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{dotted_name(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return "?"
    if isinstance(node, ast.Subscript):
        return f"{dotted_name(node.value)}[]"
    return "?"


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee."""
    return dotted_name(node.func)


def names_read(node: ast.AST) -> set[str]:
    """All bare names loaded anywhere inside ``node``."""
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def setflags_enables_write(call: ast.Call) -> bool:
    """True for ``x.setflags(write=True)`` / ``x.setflags(True)`` — the
    call that re-enables writes on a deliberately frozen array."""
    for kw in call.keywords:
        if kw.arg == "write" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    if call.args and isinstance(call.args[0], ast.Constant):
        return bool(call.args[0].value)
    return False


def iter_functions(
    tree: ast.AST,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Yield every function definition with its enclosing class (or
    ``None`` for module-level functions).  Nested functions report the
    class of their outermost enclosing method."""

    def walk(node: ast.AST, cls: ast.ClassDef | None) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)
