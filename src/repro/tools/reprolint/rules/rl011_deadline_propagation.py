"""RL011 — deadline budgets must survive composition on the query path.

PR 6 gave queries wall-clock deadline budgets checked at stage
boundaries (RL008 bans mid-stage checks).  That contract only holds if
every function the query path *reaches* that does per-segment /
per-supernode / per-tile work either receives the budget (so its caller
can check before and after) or is an explicitly reviewed boundary-atomic
kernel.  A refactor that extracts a loop into a helper and drops the
``deadline`` parameter silently unbounds the query — no per-file rule
can see it.

RL011 walks the call graph from the query roots and flags any reachable
function that loops over collection names matching the configured
tokens (``segment``, ``supernode``, ``tile``, …) unless it

* accepts a deadline/budget-ish parameter (``deadline``,
  ``deadline_s``, ``budget``…), or
* carries ``# reprolint: exempt=RL011 — <why>`` on/above its ``def``:
  the marker for RL008-style boundary-atomic kernels, reviewed rather
  than silently skipped.

Additionally, a caller that *has* a deadline parameter and calls a
known function that *accepts one without passing it on* is flagged —
the drop site itself — when the callee transitively contains such a
loop.  Findings render the call chain from the root.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.tools.reprolint.base import ProgramChecker, register
from repro.tools.reprolint.model import ChainHop, Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.tools.reprolint.program.analysis import ProgramAnalysis
    from repro.tools.reprolint.program.callgraph import Edge
    from repro.tools.reprolint.program.symbols import FunctionInfo


@register
class DeadlinePropagationChecker(ProgramChecker):
    rule = "RL011"
    summary = (
        "query-path functions looping over segments/supernodes/tiles "
        "must accept and thread the deadline budget (or be annotated "
        "`# reprolint: exempt=RL011`)"
    )
    default_options = {
        "roots": {
            "SessionView": ("run_query",),
            "SharedQueryEngine": ("query", "query_all_colors"),
            "CoordinatedBrushingEngine": ("query", "query_all_colors"),
            "ExplorationSession": ("run_query",),
        },
        # substrings of names a flagged loop iterates over
        "loop_tokens": (
            "segment",
            "supernode",
            "tile",
            "stamp",
            "traj",
            "center",
            "cell",
        ),
        # parameter names that count as carrying the budget
        "deadline_params": ("deadline", "deadline_s", "budget", "budget_s"),
    }

    def _has_deadline_param(self, fn: "FunctionInfo") -> bool:
        params = set(self.options["deadline_params"])
        return any(p in params for p in fn.params)

    def _keyword_loops(self, analysis, fn: "FunctionInfo"):
        tokens = tuple(self.options["loop_tokens"])
        for loop in analysis.loops_of(fn):
            hits = sorted(
                {
                    name
                    for name in loop.names
                    for token in tokens
                    if token in name.lower()
                }
            )
            if hits:
                yield loop, hits

    def check_program(self, analysis: "ProgramAnalysis") -> list[Finding]:
        """Flag reachable keyword-loopers with no deadline parameter and
        call sites that hold a deadline but drop it."""
        roots = analysis.resolve_roots(self.options["roots"])
        root_quals = sorted(roots)
        paths = analysis.graph.reachable_from(root_quals)
        reported: set[tuple[str, int]] = set()

        for qualname in sorted(paths):
            fn = analysis.project.function_index.get(qualname)
            if fn is None or self.rule in fn.exempt:
                continue
            if self._has_deadline_param(fn):
                self._check_drops(analysis, fn, paths[qualname], reported)
                continue
            for loop, hits in self._keyword_loops(analysis, fn):
                key = (loop.path, loop.line)
                if key in reported:
                    continue
                reported.add(key)
                self._report_loop(fn, paths[qualname], loop, hits)
        return self.findings

    def _check_drops(
        self,
        analysis,
        fn: "FunctionInfo",
        path_edges: list["Edge"],
        reported: set[tuple[str, int]],
    ) -> None:
        """``fn`` holds the budget; flag calls that drop it into a
        deadline-accepting callee that loops over keyword collections."""
        params = set(self.options["deadline_params"])
        for edge in analysis.graph.callees(fn.qualname):
            callee = analysis.project.function_index.get(edge.callee)
            if callee is None or edge.heuristic:
                continue
            accepted = [p for p in callee.params if p in params]
            if not accepted:
                continue
            if not any(True for _ in self._keyword_loops(analysis, callee)):
                continue
            if self._call_passes_deadline(fn, edge.site.line, params):
                continue
            key = (edge.site.path, edge.site.line)
            if key in reported:
                continue
            reported.add(key)
            chain = self._chain(path_edges) + [
                ChainHop(
                    edge.site.path,
                    edge.site.line,
                    f"calls {edge.callee} without passing "
                    f"`{accepted[0]}`",
                )
            ]
            self.add_at(
                edge.site.path,
                edge.site.line,
                f"{fn.qualname} holds a deadline budget but calls "
                f"{edge.callee} (which accepts `{accepted[0]}` and loops "
                f"over bounded work) without threading it; pass the "
                f"budget through",
                chain=tuple(chain),
            )

    def _call_passes_deadline(
        self, fn: "FunctionInfo", line: int, params: set[str]
    ) -> bool:
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call) and node.lineno == line):
                continue
            for kw in node.keywords:
                if kw.arg in params or kw.arg is None:
                    return True
            for arg in node.args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id in params:
                        return True
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr in params
                    ):
                        return True
        return False

    def _chain(self, path_edges: list["Edge"]) -> list[ChainHop]:
        return [
            ChainHop(
                e.site.path,
                e.site.line,
                f"calls {e.callee}"
                + (" (receiver-heuristic)" if e.heuristic else ""),
            )
            for e in path_edges
        ]

    def _report_loop(self, fn, path_edges, loop, hits) -> None:
        chain = self._chain(path_edges)
        chain.append(
            ChainHop(
                fn.path,
                fn.lineno,
                f"{fn.qualname} accepts no deadline/budget parameter",
            )
        )
        chain.append(
            ChainHop(
                loop.path,
                loop.line,
                f"loops over {', '.join(hits)}",
            )
        )
        self.add_at(
            fn.path,
            fn.lineno,
            f"{fn.qualname} is reachable from the query path and loops "
            f"over {', '.join(hits)} (line {loop.line}) but accepts no "
            f"deadline/budget parameter; thread the budget through, or "
            f"annotate the def `# reprolint: exempt=RL011 — <why>` if "
            f"the loop is boundary-atomic",
            chain=tuple(chain),
        )
