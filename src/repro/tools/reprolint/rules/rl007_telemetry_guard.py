"""RL007 — telemetry emits are guarded; spans only via ``with``.

The telemetry plane (:mod:`repro.obs`) promises two things to every
instrumented hot path:

1. **Emits never raise.**  The guard lives in the facade helpers
   (``obs.counter_add`` / ``obs.observe`` / ``obs.gauge_set`` /
   ``obs.emit_event``), which check the enabled flag and swallow
   registry/sink failures.  Calling methods on a registry object
   directly (``registry.counter_add(...)``,
   ``get_registry().observe(...)``) bypasses the guard — an exporter
   hiccup would then propagate into a query or render path.
2. **Spans are context-managed.**  A span opened without ``with``
   (``sp = obs.span(...)``) leaks its timing on any exception path
   and never lands in the trace/histogram; the context-manager form
   is the only shape whose exit is guaranteed.

Scoped to everything outside :mod:`repro.obs` itself (the facade is
where the unguarded calls legitimately live).
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import Checker, dotted_name, register

__all__ = ["TelemetryGuardChecker"]

#: Callable names that must only appear as a ``with`` context expression.
_SPAN_CALLEES = ("span", "stage_span")


def _mentions_registry(node: ast.expr) -> bool:
    """True when an attribute chain passes through a registry object.

    Matches ``registry.…``, ``self._registry.…``, and
    ``get_registry().…`` receivers (lowercase names only — the linter
    registry constants in this package are uppercase and unrelated).
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id.lstrip("_").startswith("registry"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr.lstrip("_").endswith("registry"):
            return True
        if isinstance(sub, ast.Call):
            callee = dotted_name(sub.func)
            if callee.split(".")[-1] == "get_registry":
                return True
    return False


@register
class TelemetryGuardChecker(Checker):
    rule = "RL007"
    summary = (
        "telemetry must go through repro.obs guarded helpers — no bare "
        "registry.* calls outside obs, and span()/stage_span() only as "
        "`with` context managers"
    )
    default_options: dict[str, Any] = {}

    def check(self, tree: ast.AST) -> list:
        """Two passes: collect sanctioned span sites, then flag calls."""
        with_calls: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        with_calls.add(id(item.context_expr))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and _mentions_registry(
                node.func.value
            ):
                self.add(
                    node,
                    f"bare registry call {dotted_name(node.func)}(): a failing "
                    "registry or event sink would raise into the instrumented "
                    "hot path — emit through the guarded repro.obs helpers "
                    "(obs.counter_add / obs.observe / obs.gauge_set)",
                )
                continue
            # alias-resolved: `from repro.obs import span as sp` still
            # reads as repro.obs.span
            callee = self.resolve(dotted_name(node.func)).split(".")[-1]
            if callee in _SPAN_CALLEES and id(node) not in with_calls:
                self.add(
                    node,
                    f"{callee}() opened outside a `with` statement: only the "
                    "context-manager form guarantees the span closes (and "
                    "back-fills the trace) on every exit path — write "
                    f"`with obs.{callee}(...) as sp:`",
                )
        return self.findings
