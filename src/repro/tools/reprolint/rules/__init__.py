"""Project-specific rule checkers.

Importing this package registers every rule with the base registry;
the runner imports it once and asks the registry for checkers by id.
"""

from repro.tools.reprolint.rules.rl001_cache_purity import CachePurityChecker
from repro.tools.reprolint.rules.rl002_shm_lifecycle import ShmLifecycleChecker
from repro.tools.reprolint.rules.rl003_lock_discipline import LockDisciplineChecker
from repro.tools.reprolint.rules.rl004_degradation_taint import DegradationTaintChecker
from repro.tools.reprolint.rules.rl005_readonly_views import ReadonlyViewChecker
from repro.tools.reprolint.rules.rl006_atomic_write import AtomicWriteChecker
from repro.tools.reprolint.rules.rl007_telemetry_guard import TelemetryGuardChecker
from repro.tools.reprolint.rules.rl008_rollover import RolloverDisciplineChecker
from repro.tools.reprolint.rules.rl009_transitive_lockfree import (
    TransitiveLockFreeChecker,
)
from repro.tools.reprolint.rules.rl010_epoch_provenance import (
    EpochProvenanceChecker,
)
from repro.tools.reprolint.rules.rl011_deadline_propagation import (
    DeadlinePropagationChecker,
)

__all__ = [
    "CachePurityChecker",
    "ShmLifecycleChecker",
    "LockDisciplineChecker",
    "DegradationTaintChecker",
    "ReadonlyViewChecker",
    "AtomicWriteChecker",
    "TelemetryGuardChecker",
    "RolloverDisciplineChecker",
    "TransitiveLockFreeChecker",
    "EpochProvenanceChecker",
    "DeadlinePropagationChecker",
]
