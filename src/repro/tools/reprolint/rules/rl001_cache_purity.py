"""RL001 — cache-key purity of query-plan stage bodies.

The staged pipeline (PR 2) caches stage outputs under epoch-tagged
keys.  That is only sound if a stage's output is a pure function of
what the key encodes: two invariants follow.

1. **No hidden inputs.**  Stage implementations must not read wall
   clocks, RNGs, or module-level mutable state — none of those are in
   the cache key, so a cached output would silently disagree with a
   recomputed one.  (The *driver* may time stages: timings go to the
   trace, never into cached values, so only configured stage-body
   functions are checked.)

2. **No mutation of cached values.**  A value served by
   ``StageCache.get``/``lookup`` is shared by every future hit; an
   in-place write corrupts results for every concurrent session.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import (
    Checker,
    call_name,
    dotted_name,
    register,
    setflags_enables_write,
)

__all__ = ["CachePurityChecker"]

_IMPURE_PREFIXES = (
    "time.",
    "random.",
    "np.random",
    "numpy.random",
    "datetime.",
    "uuid.",
    "os.urandom",
    "os.environ",
    "secrets.",
)

_MUTATING_METHODS = {
    "sort", "fill", "resize", "partition", "itemset", "byteswap",
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard",
}


def _is_cache_receiver(callee: str) -> str | None:
    """``self.cache.get`` → ``"get"`` when the receiver looks like a
    stage cache; ``None`` otherwise."""
    parts = callee.split(".")
    if len(parts) < 2 or parts[-1] not in ("get", "lookup"):
        return None
    return parts[-1] if parts[-2].endswith("cache") else None


@register
class CachePurityChecker(Checker):
    rule = "RL001"
    summary = (
        "stage bodies feeding the StageCache must be pure (no clocks/RNG/"
        "module state) and cache-served values must never be mutated"
    )
    default_options: dict[str, Any] = {
        # Functions treated as stage bodies: the executor's dispatch and
        # aggregation kernels, plus anything named like a stage impl.
        "stage_functions": (
            "_execute_stage", "_per_traj_any", "_per_traj_time", "_freeze",
        ),
        "stage_prefixes": ("stage_",),
    }

    def check(self, tree: ast.AST) -> list:
        """Collect module-level mutable names, then visit functions."""
        self._module_mutables = self._collect_module_mutables(tree)
        return super().check(tree)

    @staticmethod
    def _collect_module_mutables(tree: ast.AST) -> set[str]:
        """Module-level names bound to mutable literals (dict/list/set)."""
        mutables: set[str] = set()
        if not isinstance(tree, ast.Module):
            return mutables
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not isinstance(
                value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__all__":
                    mutables.add(target.id)
        return mutables

    def _is_stage_function(self, name: str) -> bool:
        if name in self.options["stage_functions"]:
            return True
        return any(name.startswith(p) for p in self.options["stage_prefixes"])

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check one function (purity + cached-value mutation)."""
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async twin of :meth:`visit_FunctionDef`."""
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._is_stage_function(fn.name):
            self._check_purity(fn)
        self._check_cached_value_mutation(fn)

    # Invariant 1: no hidden inputs in stage bodies ----------------------
    def _check_purity(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        covered: set[int] = set()  # sub-nodes of an already-reported chain
        for node in ast.walk(fn):
            if id(node) in covered:
                continue
            if isinstance(node, (ast.Attribute, ast.Name)) and isinstance(
                node.ctx, ast.Load
            ):
                dotted = dotted_name(node)
                # match on the canonical name so `from time import
                # monotonic as now` cannot hide the clock read
                canonical = self.resolve(dotted)
                matched = False
                for prefix in _IMPURE_PREFIXES:
                    if canonical == prefix.rstrip(".") or canonical.startswith(prefix):
                        # report once, at the outermost matching chain
                        covered.update(id(sub) for sub in ast.walk(node))
                        shown = (
                            dotted
                            if canonical == dotted
                            else f"{dotted} (= {canonical})"
                        )
                        self.add(
                            node,
                            f"stage body {fn.name!r} reads {shown!r}: stage "
                            "outputs are cached under epoch-tagged keys that do "
                            "not encode this input, so a cache hit would return "
                            "a different value than recomputation; move the "
                            "read to the driver or encode it in the cache key",
                        )
                        matched = True
                        break
                if matched:
                    continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in self._module_mutables:
                    self.add(
                        node,
                        f"stage body {fn.name!r} reads module-level mutable "
                        f"state {node.id!r} that is absent from the stage "
                        "cache key; pass it in explicitly and key it",
                    )

    # Invariant 2: cache-served values are immutable ---------------------
    def _check_cached_value_mutation(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        cached: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            method = _is_cache_receiver(call_name(node.value))
            if method is None:
                continue
            for target in node.targets:
                if method == "get" and isinstance(target, ast.Name):
                    cached.add(target.id)
                elif (
                    method == "lookup"
                    and isinstance(target, ast.Tuple)
                    and target.elts
                    and isinstance(target.elts[0], ast.Name)
                ):
                    cached.add(target.elts[0].id)
        if not cached:
            return

        def base_name(expr: ast.expr) -> str | None:
            while isinstance(expr, ast.Subscript):
                expr = expr.value
            return expr.id if isinstance(expr, ast.Name) else None

        for node in ast.walk(fn):
            if isinstance(node, ast.AugAssign):
                name = base_name(node.target)
                if name in cached:
                    self.add(
                        node,
                        f"in-place update of cache-served value {name!r}; the "
                        "same object is returned to every future cache hit — "
                        "copy before modifying",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        name = base_name(target)
                        if name in cached:
                            self.add(
                                node,
                                f"subscript write into cache-served value "
                                f"{name!r}; copy before modifying",
                            )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                name = recv.id if isinstance(recv, ast.Name) else None
                if name not in cached:
                    continue
                if node.func.attr in _MUTATING_METHODS:
                    self.add(
                        node,
                        f"mutating call .{node.func.attr}() on cache-served "
                        f"value {name!r}; copy before modifying",
                    )
                elif node.func.attr == "setflags" and setflags_enables_write(node):
                    self.add(
                        node,
                        f"setflags(write=True) on cache-served value {name!r} "
                        "re-enables writes on a shared array",
                    )
