"""RL006 — save paths must use the atomic-write helpers.

PR 1 made every persistence path crash-safe: payloads are written to a
same-directory temp file, fsynced, then ``os.replace``-d over the
destination (:mod:`repro.util.fileio`).  A direct ``open(path, "w")``
(or ``Path.write_text``) reintroduces the torn-file window — a process
dying mid-write leaves half a JSON document where a session journal or
dataset used to be.

Flagged everywhere except :mod:`repro.util.fileio` itself:

* ``open(path, mode)`` / ``path.open(mode)`` with a truncating or
  creating mode (``w``, ``w+``, ``x`` — append is the journal's legal
  durability mechanism and stays allowed);
* ``Path.write_text`` / ``Path.write_bytes`` (truncate-in-place).
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import Checker, register

__all__ = ["AtomicWriteChecker"]


def _write_mode(call: ast.Call, *, first_arg_is_mode: bool) -> str | None:
    """The mode string when the call opens for truncating write."""
    mode_expr: ast.expr | None = None
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_expr = kw.value
    if mode_expr is None:
        idx = 0 if first_arg_is_mode else 1
        if len(call.args) > idx:
            mode_expr = call.args[idx]
    if not isinstance(mode_expr, ast.Constant) or not isinstance(mode_expr.value, str):
        return None
    mode = mode_expr.value
    if "w" in mode or "x" in mode:
        return mode
    return None


@register
class AtomicWriteChecker(Checker):
    rule = "RL006"
    summary = (
        "truncating writes (open 'w'/'x', Path.write_text/bytes) must go "
        "through repro.util.fileio's temp-file + os.replace helpers"
    )
    default_options: dict[str, Any] = {}

    def visit_Call(self, node: ast.Call) -> None:
        """Flag truncating open()/write_text/write_bytes call sites."""
        # alias-resolved: `from io import open as iopen` and
        # `import builtins as b; b.open(...)` still read as open
        if isinstance(node.func, ast.Name) and self.resolve(node.func.id) in (
            "open",
            "io.open",
            "builtins.open",
        ):
            mode = _write_mode(node, first_arg_is_mode=False)
            if mode is not None:
                self.add(
                    node,
                    f"direct open(..., {mode!r}): a crash mid-write leaves a "
                    "torn file — use repro.util.fileio.atomic_write (temp "
                    "file + fsync + os.replace) for save paths",
                )
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "open":
                mode = _write_mode(node, first_arg_is_mode=True)
                if mode is not None:
                    self.add(
                        node,
                        f"direct .open({mode!r}): a crash mid-write leaves a "
                        "torn file — use repro.util.fileio.atomic_write for "
                        "save paths",
                    )
            elif attr in ("write_text", "write_bytes"):
                helper = "atomic_" + attr  # atomic_write_text / _bytes
                self.add(
                    node,
                    f".{attr}() truncates the destination in place: a crash "
                    "mid-write leaves a torn file — use "
                    f"repro.util.fileio.{helper} instead",
                )
        self.generic_visit(node)
