"""RL010 — values from different epoch pins never meet in one operation.

PR 7/8 made every query run against one immutable :class:`EpochSnapshot`
(dataset + index + pyramid pinned together).  Correctness depends on
*provenance*: rows gathered through one snapshot's pyramid must never be
combined with masks, indexes, or tables resolved from a different pin —
across a rollover those describe different physical arenas, and mixing
them yields silently-wrong answers (the exact bug class the mid-rollover
chaos test hunts dynamically).

This rule checks it statically: taint tags are seeded at snapshot
resolution sites (``_pin_active()``, ``arena.attach()``,
``from_handle()``), propagated through assignments, attribute loads,
calls, and returns (per-function summaries make the flow
interprocedural), and a finding fires wherever one operation sees two
or more distinct tags.  ``.epoch`` attribute loads strip taint — the
epoch *number* is identity, and comparing it is the legitimate
staleness probe — and comparisons never mix.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.tools.reprolint.base import ProgramChecker, register
from repro.tools.reprolint.model import ChainHop, Finding
from repro.tools.reprolint.program.dataflow import Tag, TaintAnalysis

if TYPE_CHECKING:  # pragma: no cover
    from repro.tools.reprolint.program.analysis import ProgramAnalysis


def _call_dotted(call: ast.Call) -> str | None:
    parts: list[str] = []
    cur: ast.AST = call.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


@register
class EpochProvenanceChecker(ProgramChecker):
    rule = "RL010"
    summary = (
        "values derived from different EpochSnapshot/StoreClient pins "
        "must not flow into one operation together"
    )
    default_options = {
        # method names / canonical callables that resolve a snapshot
        "seed_methods": ("_pin_active", "from_handle"),
        "seed_calls": ("repro.store.arena.attach",),
        # identity attributes whose loads strip taint
        "strip_attrs": ("epoch",),
    }

    def check_program(self, analysis: "ProgramAnalysis") -> list[Finding]:
        """Tag every snapshot pin site and report operations where two
        distinct pins' values meet, both origins in the chain."""
        seed_methods = tuple(self.options["seed_methods"])
        seed_calls = tuple(self.options["seed_calls"])
        counter = [0]

        def seed_for_call(call: ast.Call, scope) -> Tag | None:
            dotted = _call_dotted(call)
            if dotted is None:
                return None
            canonical = scope.mod.resolve(dotted)
            last = canonical.rsplit(".", 1)[-1]
            if last in seed_methods or canonical in seed_calls:
                counter[0] += 1
                return Tag(
                    ident=f"pin#{counter[0]}",
                    path=scope.fn.path,
                    line=call.lineno,
                    note=f"snapshot pinned via {dotted}()",
                )
            return None

        taint = TaintAnalysis(
            analysis.project,
            seed_for_call=seed_for_call,
            strip_attrs=tuple(self.options["strip_attrs"]),
        )
        for mix in taint.run():
            real = [t for t in mix.tags if t.ident.startswith("pin#")]
            if len(real) < 2:
                # mixes of synthetic param tags surface via summaries
                # at a call site with real tags; alone they are noise
                continue
            chain: list[ChainHop] = []
            for tag in sorted(real, key=lambda t: (t.path, t.line)):
                hops = mix.tags[tag] or (ChainHop(tag.path, tag.line, tag.note),)
                chain.extend(ChainHop(h.path, h.line, h.note) for h in hops)
            chain.append(ChainHop(mix.path, mix.line, f"mixed here: {mix.note}"))
            origins = " and ".join(
                f"{t.path}:{t.line}" for t in sorted(
                    real, key=lambda t: (t.path, t.line)
                )
            )
            self.add_at(
                mix.path,
                mix.line,
                f"operation mixes values pinned from different epoch "
                f"snapshots (pins at {origins}); resolve everything the "
                f"operation needs from one pinned snapshot, or rebind "
                f"before combining",
                chain=tuple(chain),
            )
        self.findings.sort()
        return self.findings
