"""RL008 — epoch rollover discipline.

The streaming-ingest rollover (PR 6) is a two-phase commit whose
safety rests on three structural facts:

1. The **swap is single-entry**: only
   :class:`~repro.store.ingest.RolloverCoordinator` calls
   ``DatasetService._swap_active`` — it owns the staging and
   validation phases that make the swap safe.  A swap call anywhere
   else publishes an unvalidated epoch.
2. The service's **active handle is never mutated directly**:
   assignments like ``service.dataset = ...``, ``service.engine =
   ...`` or ``service._active = ...`` outside the service/ingest
   modules bypass epoch-snapshot registration, session pinning, and
   store eviction in one line.  (Inside the service, ``_active`` is
   the atomically-published snapshot reference — the single write the
   swap performs; RL003 additionally requires that write to happen
   under the service lock.)
3. **Deadlines are boundary-only**: the executor consults the query
   deadline *between* stages, never inside stage execution or partial
   synthesis — a mid-kernel deadline check would make stage outputs
   (and therefore cache entries) timing-dependent.

This checker encodes all three.  Options:

``allowed_modules``
    Dotted modules where swap calls / handle assignment are the
    implementation itself (default: the service and ingest modules).
``swap_method``
    The commit-point method name.
``handle_attrs``
    Attributes of a service object that only the swap may retarget.
``stage_fns``
    Executor functions that must stay deadline-free.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import (
    Checker,
    dotted_name,
    iter_functions,
    register,
)
from repro.tools.reprolint.config import module_name_for

__all__ = ["RolloverDisciplineChecker"]


@register
class RolloverDisciplineChecker(Checker):
    rule = "RL008"
    summary = (
        "epoch swaps go through RolloverCoordinator only: no foreign "
        "_swap_active calls, no direct mutation of a service's active "
        "dataset/engine handle, no deadline checks inside stage bodies"
    )
    default_options: dict[str, Any] = {
        "allowed_modules": ("repro.store.service", "repro.store.ingest"),
        "swap_method": "_swap_active",
        "handle_attrs": ("dataset", "engine", "_active"),
        "stage_fns": ("_execute_stage", "_partial_stage"),
    }

    def check(self, tree: ast.AST) -> list:
        """Apply the three rollover invariants to one module."""
        module = module_name_for(self.path)
        privileged = module in set(self.options["allowed_modules"])
        if not privileged:
            self._check_swap_calls(tree)
            self._check_handle_assignments(tree)
        self._check_stage_deadlines(tree)
        return self.findings

    # 1. foreign swap calls -------------------------------------------------
    def _check_swap_calls(self, tree: ast.AST) -> None:
        swap = self.options["swap_method"]
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if self.resolved_call_name(node).split(".")[-1] == swap:
                self.add(
                    node,
                    f"call to {swap}() outside the service/ingest modules: "
                    "epoch swaps must go through RolloverCoordinator, which "
                    "stages and validates the new epoch before committing it",
                )

    # 2. direct mutation of the active handle -------------------------------
    def _check_handle_assignments(self, tree: ast.AST) -> None:
        handle_attrs = set(self.options["handle_attrs"])
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr not in handle_attrs:
                    continue
                base = dotted_name(target.value)
                if "service" in base.split(".")[-1].lower():
                    self.add(
                        target,
                        f"direct assignment to {base}.{target.attr}: "
                        "retargeting a service's active handle bypasses "
                        "epoch registration, session pinning and store "
                        "eviction — ingest through RolloverCoordinator",
                    )

    # 3. deadline checks inside stage bodies --------------------------------
    def _check_stage_deadlines(self, tree: ast.AST) -> None:
        stage_fns = set(self.options["stage_fns"])
        for fn, _cls in iter_functions(tree):
            if fn.name not in stage_fns:
                continue
            for node in ast.walk(fn):
                name = ""
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    name = node.id
                elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    name = node.attr
                if "deadline" in name.lower():
                    self.add(
                        node,
                        f"{fn.name!r} consults {name!r}: deadlines are "
                        "enforced at stage boundaries only — a mid-stage "
                        "check makes stage outputs timing-dependent and "
                        "poisons the cache",
                    )
