"""RL004 — degraded results must never enter the stage cache.

The resilience layer (PR 1) degrades rather than fails: an index
crash falls back to a brute-force scan and records the event on a
:class:`DegradationReport`.  The staged pipeline (PR 2) then promises
that such tainted outputs are **never cached** — a degraded answer is
acceptable once, but serving it from the warm path to every future
query (and every other session) silently converts one transient fault
into permanent wrong-ish results.

Two syntactic shapes are flagged:

1. a ``*cache*.put(...)`` whose arguments reference a
   :class:`DegradationReport` (or a value copied from one);
2. a ``*cache*.put(...)`` reached under a *positive* taint guard
   (``if degraded: cache.put(...)``) — the exact inversion of the
   required ``if not degraded`` gate.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import (
    Checker,
    call_name,
    dotted_name,
    iter_functions,
    names_read,
    register,
)

__all__ = ["DegradationTaintChecker"]


def _is_cache_put(call: ast.Call) -> bool:
    parts = call_name(call).split(".")
    return len(parts) >= 2 and parts[-1] == "put" and parts[-2].endswith("cache")


def _flag_parity(test: ast.expr, flags: set[str]) -> set[str]:
    """Taint-flag names appearing in ``test`` under an even number of
    ``not`` operators (i.e. tested *positively*)."""
    positive: set[str] = set()

    def walk(node: ast.AST, negated: bool) -> None:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            walk(node.operand, not negated)
            return
        if isinstance(node, ast.Name) and node.id in flags and not negated:
            positive.add(node.id)
        for child in ast.iter_child_nodes(node):
            walk(child, negated)

    walk(test, False)
    return positive


@register
class DegradationTaintChecker(Checker):
    rule = "RL004"
    summary = (
        "DegradationReports / degraded outputs must never flow into "
        "StageCache.put — a tainted result cached once poisons every "
        "future hit"
    )
    default_options: dict[str, Any] = {
        "taint_classes": ("DegradationReport",),
        "taint_flags": ("degraded", "tainted", "dep_tainted", "is_degraded"),
    }

    def check(self, tree: ast.AST) -> list:
        """Check every function for tainted flows into cache.put."""
        for fn, _cls in iter_functions(tree):
            self._check_function(fn)
        return self.findings

    def _tainted_names(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        taint_classes = set(self.options["taint_classes"])
        tainted: set[str] = set()
        args = list(fn.args.args) + list(fn.args.kwonlyargs) + list(fn.args.posonlyargs)
        for arg in args:
            if arg.annotation is not None:
                # alias-resolved: `import …resilience as r` + `r.DegradationReport`
                # and `… import DegradationReport as DR` both canonicalize
                ann = self.resolve(dotted_name(arg.annotation)).split(".")[-1]
                if ann in taint_classes:
                    tainted.add(arg.arg)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            source_tainted = False
            if isinstance(value, ast.Call):
                if self.resolved_call_name(value).split(".")[-1] in taint_classes:
                    source_tainted = True
            elif isinstance(value, (ast.Name, ast.Attribute)):
                # direct aliasing only: `x = report` / `x = report.events`;
                # arbitrary call results are NOT propagated (a function
                # that merely receives the report is not itself tainted)
                root = dotted_name(value).split(".")[0]
                if root in tainted:
                    source_tainted = True
            if source_tainted:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    def _check_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        tainted = self._tainted_names(fn)
        flags = set(self.options["taint_flags"])

        def walk(stmts: list[ast.stmt], guards: set[str]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, ast.If):
                    positive = _flag_parity(stmt.test, flags)
                    self._scan_expr(stmt.test, tainted, guards)
                    walk(stmt.body, guards | positive)
                    walk(stmt.orelse, guards)
                    continue
                # scan only this statement's own expressions; nested
                # blocks recurse below so guard context stays correct
                for field_name, value in ast.iter_fields(stmt):
                    if field_name in ("body", "orelse", "finalbody", "handlers"):
                        continue
                    for expr in _exprs(value):
                        self._scan_expr(expr, tainted, guards)
                for block in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, block, None)
                    if inner:
                        walk(inner, guards)
                for handler in getattr(stmt, "handlers", []) or []:
                    walk(handler.body, guards)

        walk(fn.body, set())

    def _scan_expr(
        self, expr: ast.AST, tainted: set[str], guards: set[str]
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and _is_cache_put(node):
                self._check_put(node, tainted, guards)

    def _check_put(
        self, call: ast.Call, tainted: set[str], guards: set[str]
    ) -> None:
        refs = set()
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            refs |= names_read(arg)
        hit = refs & tainted
        if hit:
            self.add(
                call,
                f"cache.put() argument references degradation state "
                f"{sorted(hit)!r}: tainted values must never enter the stage "
                "cache — gate the insertion on `not degraded`",
            )
        elif guards:
            self.add(
                call,
                f"cache.put() reached under positive taint guard "
                f"{sorted(guards)!r}: this caches exactly the degraded "
                "outputs the ladder promises never to cache — invert the "
                "guard",
            )


def _exprs(value: Any) -> list[ast.AST]:
    """Expression nodes inside one statement field (list or single)."""
    if isinstance(value, ast.AST):
        return [value]
    if isinstance(value, list):
        return [v for v in value if isinstance(v, ast.AST)]
    return []
