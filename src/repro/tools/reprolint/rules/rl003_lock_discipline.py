"""RL003 — lock discipline in the multi-session service.

Since the lock-free snapshot refactor the service's concurrency story
has two halves, and RL003 machine-checks both:

1. **Mutations only under the lock.**  Methods of guarded classes that
   touch the shared mutable registries (store registry, snapshot
   registry, session counter) must do so inside ``with self._lock``,
   and the atomically-published active-snapshot reference may be
   *written* only under the lock (reads are the lock-free path and are
   deliberately unrestricted).  Nothing *blocking* — sleeps, file I/O,
   pool round-trips — may run while the lock is held, or one slow
   mutation stalls every session-lifecycle operation.

2. **No lock on the query path.**  The read-path methods (resolving
   the active snapshot, pinning it, running a session query) are
   declared *lock-free*: any lock acquisition inside them — a ``with
   ...._lock`` block or an ``.acquire()`` call — is a violation.  This
   is the invariant that makes N concurrent sessions scale: queries
   read epoch-immutable snapshot state and never queue behind a
   publish (the per-shard micro-mutexes of the sharded stage cache
   live in :mod:`repro.core.plan.cache`, outside this rule's scope, by
   design).

``__init__`` (and alternate constructors) are exempt from half 1: the
object is not yet shared while it is being built.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import (
    Checker,
    call_name,
    dotted_name,
    iter_functions,
    register,
)

__all__ = ["LockDisciplineChecker"]

_BLOCKING_CALLEES = {"sleep", "fsync", "open"}


@register
class LockDisciplineChecker(Checker):
    rule = "RL003"
    summary = (
        "service mutations (shared registries, active-snapshot writes) "
        "happen under self._lock without blocking calls; declared "
        "lock-free query-path methods must not acquire any lock"
    )
    default_options: dict[str, Any] = {
        # class name -> shared attributes every access to which must be
        # inside `with self.<lock_attr>`
        "classes": {
            "DatasetService": (
                "_stores",
                "_snapshots",
                "_n_sessions",
            ),
            "SharedQueryEngine": (),
        },
        # class name -> attributes whose *writes* must be locked while
        # reads stay free (the atomically-published references that make
        # the lock-free read path possible)
        "write_guarded": {
            "DatasetService": ("_active",),
        },
        # class name -> methods on the query path that must not acquire
        # any lock at all
        "lockfree_methods": {
            "DatasetService": ("active_epoch", "_pin_active"),
            "SessionView": ("run_query",),
        },
        "lock_attr": "_lock",
        "exempt_methods": ("__init__", "from_handle"),
    }

    def check(self, tree: ast.AST) -> list:
        """Walk guarded-class methods tracking lock coverage."""
        guarded: dict[str, tuple[str, ...]] = {
            k: tuple(v) for k, v in self.options["classes"].items()
        }
        write_guarded: dict[str, tuple[str, ...]] = {
            k: tuple(v) for k, v in self.options["write_guarded"].items()
        }
        lockfree: dict[str, tuple[str, ...]] = {
            k: tuple(v) for k, v in self.options["lockfree_methods"].items()
        }
        for fn, cls in iter_functions(tree):
            if cls is None:
                continue
            # attributes whose inferred type is a threading lock — catches
            # `self._mtx = _L()` under `from threading import RLock as _L`,
            # which the configured attr-name match alone cannot see
            self._lock_typed_attrs = self._lock_attrs_for(cls.name)
            if fn.name in lockfree.get(cls.name, ()):
                self._check_lockfree(fn)
            if cls.name not in guarded and cls.name not in write_guarded:
                continue
            attrs = set(guarded.get(cls.name, ()))
            write_attrs = set(write_guarded.get(cls.name, ()))
            exempt = fn.name in self.options["exempt_methods"]
            self._walk(
                fn, fn.body, attrs, write_attrs, locked=False, exempt=exempt
            )
        return self.findings

    def _lock_attrs_for(self, class_name: str) -> frozenset[str]:
        if self.symbols is None:
            return frozenset()
        ci = self.symbols.classes.get(class_name)
        if ci is None:
            return frozenset()
        from repro.tools.reprolint.program.ops import lock_attrs_of_class

        return lock_attrs_of_class(ci, self.symbols)

    def _is_lock_ctx(self, expr: ast.expr) -> bool:
        dotted = call_name(expr) if isinstance(expr, ast.Call) else ""
        if not dotted and isinstance(expr, (ast.Attribute, ast.Name)):
            dotted = dotted_name(expr)
        last = dotted.split(".")[-1]
        if last in getattr(self, "_lock_typed_attrs", frozenset()):
            return True
        return last == self.options["lock_attr"] or dotted.endswith(
            "." + self.options["lock_attr"]
        )

    # Half 2: the query path stays lock-free --------------------------------
    def _check_lockfree(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for node in ast.walk(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if self._is_lock_ctx(item.context_expr):
                        self.add(
                            item.context_expr,
                            f"{fn.name!r} is a declared lock-free query-path "
                            "method but enters a lock context: queries must "
                            "resolve the active snapshot atomically and never "
                            "queue behind a publish — move the locked work to "
                            "a mutation method",
                        )
            elif isinstance(node, ast.Call):
                if call_name(node).split(".")[-1] == "acquire":
                    self.add(
                        node,
                        f"{fn.name!r} is a declared lock-free query-path "
                        "method but calls .acquire(): the read path must not "
                        "take any lock",
                    )

    # Half 1: mutations under the lock ---------------------------------------
    def _walk(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        stmts: list[ast.stmt],
        attrs: set[str],
        write_attrs: set[str],
        *,
        locked: bool,
        exempt: bool,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                takes_lock = any(
                    self._is_lock_ctx(item.context_expr) for item in stmt.items
                )
                for item in stmt.items:
                    self._check_expr(
                        fn, item.context_expr, attrs, write_attrs, locked, exempt
                    )
                self._walk(
                    fn, stmt.body, attrs, write_attrs,
                    locked=locked or takes_lock, exempt=exempt,
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope, analysed separately
            else:
                for field_name, value in ast.iter_fields(stmt):
                    if field_name in ("body", "orelse", "finalbody", "handlers"):
                        continue
                    for expr in _exprs(value):
                        self._check_expr(
                            fn, expr, attrs, write_attrs, locked, exempt
                        )
                for block in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, block, None)
                    if inner:
                        self._walk(
                            fn, inner, attrs, write_attrs,
                            locked=locked, exempt=exempt,
                        )
                for handler in getattr(stmt, "handlers", []) or []:
                    self._walk(
                        fn, handler.body, attrs, write_attrs,
                        locked=locked, exempt=exempt,
                    )

    def _check_expr(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        expr: ast.AST,
        attrs: set[str],
        write_attrs: set[str],
        locked: bool,
        exempt: bool,
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return
            if (
                not exempt
                and not locked
                and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                if node.attr in attrs:
                    self.add(
                        node,
                        f"{fn.name!r} accesses shared attribute self.{node.attr} "
                        f"outside `with self.{self.options['lock_attr']}`: a "
                        "concurrent session can observe (or corrupt) a half-"
                        "updated registry — take the lock around the access",
                    )
                elif node.attr in write_attrs and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    self.add(
                        node,
                        f"{fn.name!r} writes atomically-published reference "
                        f"self.{node.attr} outside `with "
                        f"self.{self.options['lock_attr']}`: publication must "
                        "be serialized against other mutations (lock-free "
                        "*reads* of it are the point — writes are not)",
                    )
            if locked and isinstance(node, ast.Call):
                # alias-resolved, so `from time import sleep as zzz`
                # still reads as time.sleep
                dotted = self.resolve(call_name(node))
                parts = dotted.split(".")
                if parts[-1] in _BLOCKING_CALLEES or (
                    parts[-1] == "map"
                    and len(parts) >= 2
                    and "pool" in parts[-2].lower()
                ):
                    self.add(
                        node,
                        f"blocking call {dotted}() while holding "
                        f"self.{self.options['lock_attr']}: every other "
                        "session stalls behind it — move the slow work "
                        "outside the locked region",
                    )


def _exprs(value: Any) -> list[ast.AST]:
    """Expression nodes inside one statement field (list or single)."""
    if isinstance(value, ast.AST):
        return [value]
    if isinstance(value, list):
        return [v for v in value if isinstance(v, ast.AST)]
    return []
