"""RL003 — lock discipline in the multi-session service.

The :class:`DatasetService` / :class:`SharedQueryEngine` pair (PR 3)
promises that N concurrent sessions see exactly what N independent
engines would.  That promise is an RLock, and it only holds if

1. every method touching the service's shared mutable attributes
   (store registry, session counter) does so inside ``with
   self._lock``; and
2. nothing *blocking* — sleeps, file I/O, pool round-trips — runs
   while the lock is held, or one slow session stalls every other.

``__init__`` (and alternate constructors) are exempt: the object is
not yet shared while it is being built.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import (
    Checker,
    call_name,
    dotted_name,
    iter_functions,
    register,
)

__all__ = ["LockDisciplineChecker"]

_BLOCKING_CALLEES = {"sleep", "fsync", "open"}


@register
class LockDisciplineChecker(Checker):
    rule = "RL003"
    summary = (
        "guarded-class methods must access shared attributes under "
        "self._lock and must not block (sleep/file I/O/pool.map) while "
        "holding it"
    )
    default_options: dict[str, Any] = {
        # class name -> shared attributes every access to which must be
        # inside `with self.<lock_attr>`
        "classes": {
            "DatasetService": (
                "_stores",
                "_n_sessions",
                "_epochs",
                "_active_epoch",
            ),
            "SharedQueryEngine": (),
        },
        "lock_attr": "_lock",
        "exempt_methods": ("__init__", "from_handle"),
    }

    def check(self, tree: ast.AST) -> list:
        """Walk guarded-class methods tracking lock coverage."""
        guarded: dict[str, tuple[str, ...]] = {
            k: tuple(v) for k, v in self.options["classes"].items()
        }
        for fn, cls in iter_functions(tree):
            if cls is None or cls.name not in guarded:
                continue
            attrs = set(guarded[cls.name])
            exempt = fn.name in self.options["exempt_methods"]
            self._walk(fn, fn.body, attrs, locked=False, exempt=exempt)
        return self.findings

    def _is_lock_ctx(self, expr: ast.expr) -> bool:
        dotted = call_name(expr) if isinstance(expr, ast.Call) else ""
        if not dotted and isinstance(expr, (ast.Attribute, ast.Name)):
            dotted = dotted_name(expr)
        return dotted.split(".")[-1] == self.options["lock_attr"] or dotted.endswith(
            "." + self.options["lock_attr"]
        )

    def _walk(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        stmts: list[ast.stmt],
        attrs: set[str],
        *,
        locked: bool,
        exempt: bool,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                takes_lock = any(
                    self._is_lock_ctx(item.context_expr) for item in stmt.items
                )
                for item in stmt.items:
                    self._check_expr(fn, item.context_expr, attrs, locked, exempt)
                self._walk(
                    fn, stmt.body, attrs, locked=locked or takes_lock, exempt=exempt
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope, analysed separately
            else:
                for field_name, value in ast.iter_fields(stmt):
                    if field_name in ("body", "orelse", "finalbody", "handlers"):
                        continue
                    for expr in _exprs(value):
                        self._check_expr(fn, expr, attrs, locked, exempt)
                for block in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, block, None)
                    if inner:
                        self._walk(fn, inner, attrs, locked=locked, exempt=exempt)
                for handler in getattr(stmt, "handlers", []) or []:
                    self._walk(fn, handler.body, attrs, locked=locked, exempt=exempt)

    def _check_expr(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        expr: ast.AST,
        attrs: set[str],
        locked: bool,
        exempt: bool,
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return
            if (
                not exempt
                and not locked
                and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in attrs
            ):
                self.add(
                    node,
                    f"{fn.name!r} accesses shared attribute self.{node.attr} "
                    f"outside `with self.{self.options['lock_attr']}`: a "
                    "concurrent session can observe (or corrupt) a half-"
                    "updated registry — take the lock around the access",
                )
            if locked and isinstance(node, ast.Call):
                dotted = call_name(node)
                parts = dotted.split(".")
                if parts[-1] in _BLOCKING_CALLEES or (
                    parts[-1] == "map"
                    and len(parts) >= 2
                    and "pool" in parts[-2].lower()
                ):
                    self.add(
                        node,
                        f"blocking call {dotted}() while holding "
                        f"self.{self.options['lock_attr']}: every other "
                        "session stalls behind it — move the slow work "
                        "outside the locked region",
                    )


def _exprs(value: Any) -> list[ast.AST]:
    """Expression nodes inside one statement field (list or single)."""
    if isinstance(value, ast.AST):
        return [value]
    if isinstance(value, list):
        return [v for v in value if isinstance(v, ast.AST)]
    return []
