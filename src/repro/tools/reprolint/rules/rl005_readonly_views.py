"""RL005 — worker-side views over shared memory must be read-only.

The zero-copy data plane (PR 3) hands every worker ``np.frombuffer``
views directly onto the one resident copy of the packed arrays.  A
single in-place write through such a view corrupts the dataset for
**every** attached session simultaneously — the worst failure mode in
the system, and invisible until someone's query disagrees.

Flagged in shared-view-producing modules:

* any in-place mutation (augmented assignment, subscript assignment,
  ``.sort()``/``.fill()``/``.resize()``-style calls) of a name bound
  from a view producer (``np.frombuffer``, ``_map_array``);
* ``setflags(write=True)`` on such a name (re-arming the footgun);
* a view created without ``setflags(write=False)`` anywhere in the
  same function (warning — nothing is corrupted yet, but the guard
  rail is missing).  Producers called with ``writable=True`` (the
  publish-time fill path) and chains ending in ``.copy()`` are exempt.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import (
    Checker,
    iter_functions,
    register,
    setflags_enables_write,
)
from repro.tools.reprolint.model import Severity

__all__ = ["ReadonlyViewChecker"]

_MUTATING_METHODS = {
    "sort", "fill", "resize", "partition", "itemset", "byteswap", "put",
}


def _kw_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


@register
class ReadonlyViewChecker(Checker):
    rule = "RL005"
    summary = (
        "np.frombuffer / shared-store views in worker modules must be "
        "setflags(write=False) and never mutated in place"
    )
    default_options: dict[str, Any] = {
        # producers tracked for in-place-mutation findings
        "producers": ("frombuffer", "_map_array"),
        # producers whose result additionally needs a local
        # setflags(write=False) — wrappers like _map_array freeze
        # internally, raw frombuffer does not
        "raw_producers": ("frombuffer",),
    }

    def check(self, tree: ast.AST) -> list:
        """Check every function's shared-view creation and use."""
        for fn, _cls in iter_functions(tree):
            self._check_function(fn)
        return self.findings

    def _view_assignments(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, ast.Assign]:
        """name → producing assignment for every tracked view in ``fn``."""
        producers = tuple(self.options["producers"])
        views: dict[str, ast.Assign] = {}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            # alias-resolved: `from numpy import frombuffer as fb`
            # still reads as numpy.frombuffer
            calls = [
                c
                for c in ast.walk(node.value)
                if isinstance(c, ast.Call)
                and self.resolved_call_name(c).split(".")[-1] in producers
            ]
            if not calls:
                continue
            if all(_kw_true(c, "writable") for c in calls):
                continue  # explicit publish-time fill path
            # a chain ending in .copy() owns its memory — not a view
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("copy", "tobytes", "tolist")
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    views[target.id] = node
        return views

    def _check_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        views = self._view_assignments(fn)
        if not views:
            return

        frozen: set[str] = set()

        def base_name(expr: ast.expr) -> str | None:
            while isinstance(expr, ast.Subscript):
                expr = expr.value
            return expr.id if isinstance(expr, ast.Name) else None

        for node in ast.walk(fn):
            if isinstance(node, ast.AugAssign):
                name = base_name(node.target)
                if name in views:
                    self.add(
                        node,
                        f"in-place update of shared-memory view {name!r}: this "
                        "writes through to the resident block and corrupts "
                        "every attached session — operate on a copy",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        name = base_name(target)
                        if name in views:
                            self.add(
                                node,
                                f"subscript write into shared-memory view "
                                f"{name!r}: this mutates the shared block in "
                                "place — operate on a copy",
                            )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                name = recv.id if isinstance(recv, ast.Name) else None
                if name not in views:
                    continue
                if node.func.attr in _MUTATING_METHODS:
                    self.add(
                        node,
                        f"mutating call .{node.func.attr}() on shared-memory "
                        f"view {name!r} — operate on a copy",
                    )
                elif node.func.attr == "setflags":
                    if setflags_enables_write(node):
                        self.add(
                            node,
                            f"setflags(write=True) on shared-memory view "
                            f"{name!r} re-arms in-place corruption of the "
                            "shared block",
                        )
                    else:
                        frozen.add(name)

        raw = tuple(self.options["raw_producers"])
        for name, assign in views.items():
            needs_freeze = any(
                isinstance(c, ast.Call)
                and self.resolved_call_name(c).split(".")[-1] in raw
                for c in ast.walk(assign.value)
            )
            if needs_freeze and name not in frozen:
                self.add(
                    assign,
                    f"shared-memory view {name!r} is created without "
                    "setflags(write=False): an accidental in-place op would "
                    "corrupt the resident block for every session — freeze "
                    "the view at the creation site",
                    severity=Severity.WARNING,
                )
