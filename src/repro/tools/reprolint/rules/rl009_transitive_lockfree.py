"""RL009 — declared-lock-free methods stay lock-free *transitively*.

PR 7 removed the service lock from the query path and RL003 enforces
that the declared methods (`DatasetService.active_epoch`/`_pin_active`,
`SessionView.run_query`) acquire no lock **in their own bodies**.  This
rule closes the remaining hole: a helper three calls deep can acquire a
lock, sleep, fsync, create/unlink shared memory, or republish
``_active`` — and a per-file check will never see it.

RL009 walks the conservative call graph from every declared root and
flags any reachable operation of those kinds, rendering the offending
call chain (file:line per hop) in the finding.  Findings land at the
root method's definition site: the *declaration* is what the chain
violates.

The ``allowed`` option lists reviewed exceptions by qualname/module
prefix — by-design bounded primitives whose rationale lives in
DESIGN.md §14 (sharded cache micro-mutexes, the guarded obs facade,
the session-private journal append).  Chains are pruned at an allowed
callee: nothing it reaches is attributed to the root.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tools.reprolint.base import ProgramChecker, register
from repro.tools.reprolint.model import ChainHop, Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.tools.reprolint.program.analysis import ProgramAnalysis
    from repro.tools.reprolint.program.callgraph import Edge

_OP_WHAT = {
    "lock": "acquires a lock",
    "blocking": "makes a blocking call",
    "shm-create": "creates shared memory",
    "shm-unlink": "unlinks shared memory",
    "active-write": "mutates the published `_active` snapshot",
}


@register
class TransitiveLockFreeChecker(ProgramChecker):
    rule = "RL009"
    summary = (
        "declared-lock-free query-path methods must not transitively "
        "reach lock acquisition, blocking I/O, shm lifecycle ops, or "
        "`_active` mutation"
    )
    default_options = {
        # class name → methods declared lock-free (mirrors RL003's
        # lockfree_methods plus the engine query path the service pins
        # snapshots for)
        "roots": {
            "DatasetService": ("active_epoch", "_pin_active"),
            "SessionView": ("run_query",),
            "SharedQueryEngine": ("query", "query_all_colors"),
            "EpochSnapshot": ("try_pin", "unpin"),
        },
        # reviewed exceptions, matched by qualname prefix after the
        # module segment — see DESIGN.md §14 for each rationale
        "allowed": (
            "repro.obs",
            "repro.core.plan.cache",
            "repro.core.session.SessionJournal.append",
        ),
    }

    def _is_allowed(self, qualname: str) -> bool:
        for prefix in self.options["allowed"]:
            if qualname == prefix or qualname.startswith(prefix + "."):
                return True
        return False

    def check_program(self, analysis: "ProgramAnalysis") -> list[Finding]:
        """BFS each declared lock-free root through the call graph and
        report the first forbidden op on each path, chain attached."""
        roots = analysis.resolve_roots(self.options["roots"])
        for root_qual, root_fn in sorted(roots.items()):
            if self.rule in root_fn.exempt or self._is_allowed(root_qual):
                continue
            self._check_root(analysis, root_qual, root_fn)
        return self.findings

    def _check_root(self, analysis, root_qual: str, root_fn) -> None:
        # BFS with chain reconstruction, pruned at allowed callees
        paths: dict[str, list["Edge"]] = {root_qual: []}
        queue = [root_qual]
        reported: set[tuple[str, int]] = set()
        while queue:
            cur = queue.pop(0)
            fn = analysis.project.function_index.get(cur)
            if fn is None:
                continue
            if self.rule not in fn.exempt:
                for op in analysis.ops_of(fn):
                    key = (op.path, op.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    self._report(root_fn, paths[cur], fn, op)
            for edge in analysis.graph.callees(cur):
                if edge.callee in paths:
                    continue
                if self._is_allowed(edge.callee):
                    continue
                callee_fn = analysis.project.function_index.get(edge.callee)
                if callee_fn is not None and self.rule in callee_fn.exempt:
                    continue
                paths[edge.callee] = paths[cur] + [edge]
                queue.append(edge.callee)

    def _report(self, root_fn, edges: list["Edge"], op_fn, op) -> None:
        chain = [
            ChainHop(
                path=root_fn.path,
                line=root_fn.lineno,
                note=f"declared lock-free: {root_fn.qualname}",
            )
        ]
        for edge in edges:
            chain.append(
                ChainHop(
                    path=edge.site.path,
                    line=edge.site.line,
                    note=(
                        f"calls {edge.callee}"
                        + (" (receiver-heuristic)" if edge.heuristic else "")
                    ),
                )
            )
        chain.append(
            ChainHop(
                path=op.path,
                line=op.line,
                note=f"{_OP_WHAT[op.kind]}: {op.detail}",
            )
        )
        hops = " -> ".join(
            h.note.split(": ", 1)[-1] for h in chain[1:-1]
        )
        via = f" via {hops}" if hops else ""
        self.add_at(
            root_fn.path,
            root_fn.lineno,
            f"lock-free method {root_fn.qualname} transitively "
            f"{_OP_WHAT[op.kind]} at {op.path}:{op.line}{via}; move the "
            f"operation off the query path, or allowlist it with a "
            f"reviewed rationale in DESIGN.md §14",
            chain=tuple(chain),
        )
