"""RL002 — shared-memory block lifecycle pairing.

Every shared block (PR 3) has exactly one owner.  Two failure modes a
code review keeps missing:

1. **Orphaned creation.**  A block created and then dropped on an
   exception path leaks a ``/dev/shm`` segment until reboot.  Creation
   must therefore be paired with teardown in the *same scope*: a
   ``with`` statement, a ``try/finally`` calling ``close``/``unlink``,
   an ``atexit`` registration — or an explicit ownership transfer
   (returning the block, storing it on an object/registry).

2. **Attach-side unlink.**  Only the creating process may remove a
   block's name; a consumer that attached and then calls ``unlink()``
   destroys the data plane for every other session.  Outside the
   lifecycle module itself, unlinking an attached block is always a
   bug.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.tools.reprolint.base import Checker, call_name, iter_functions, register
from repro.tools.reprolint.config import module_name_for

__all__ = ["ShmLifecycleChecker"]

# create_framebuffer/attach_framebuffer (repro.store.framebuf) wrap a
# block in a shared output framebuffer; the wrapper owns the block, so
# the same pairing discipline applies to it
_CREATE_SUFFIXES = ("create_block", "create_framebuffer")
_CTOR_SUFFIXES = ("SharedBlock", "SharedMemory")
_ATTACH_SUFFIXES = ("attach_block", "attach_framebuffer")


def _kw_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


@register
class ShmLifecycleChecker(Checker):
    rule = "RL002"
    summary = (
        "shared-memory creation must be paired with close/unlink (with/"
        "finally/atexit) or ownership transfer; attached blocks must "
        "never be unlinked outside the lifecycle module"
    )
    default_options: dict[str, Any] = {
        # modules where attach-side unlink handling is the whole point
        "attach_unlink_allowed_modules": ("repro.store.shm",),
    }

    def _is_creation(self, call: ast.Call) -> bool:
        # resolve through the import map so `from repro.store.shm import
        # create_block as _cb` cannot hide the creation site
        last = self.resolved_call_name(call).split(".")[-1]
        if last in _CREATE_SUFFIXES:
            return True
        return last in _CTOR_SUFFIXES and _kw_true(call, "create")

    def _is_attach(self, call: ast.Call) -> bool:
        return self.resolved_call_name(call).split(".")[-1] in _ATTACH_SUFFIXES

    def check(self, tree: ast.AST) -> list:
        """Check creation pairing and attach-side unlinks per function."""
        module = module_name_for(self.path)
        allow_attach_unlink = module in self.options["attach_unlink_allowed_modules"]
        for fn, _cls in iter_functions(tree):
            self._check_function(fn, allow_attach_unlink)
        return self.findings

    def _check_function(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        allow_attach_unlink: bool,
    ) -> None:
        created: dict[str, ast.Call] = {}
        attached: set[str] = set()
        bare_creations: list[ast.Call] = []
        with_managed: set[int] = set()  # ids of creation calls used as ctx exprs
        names_in_with: set[str] = set()
        names_returned: set[str] = set()
        names_transferred: set[str] = set()
        names_atexit: set[str] = set()
        names_finally_closed: set[str] = set()

        own_nodes = _nodes_excluding_nested_functions(fn)

        for node in own_nodes:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call) and self._is_creation(ctx):
                        with_managed.add(id(ctx))
                    elif isinstance(ctx, ast.Name):
                        names_in_with.add(ctx.id)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if self._is_creation(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            created[target.id] = node.value
                        else:
                            # created straight into an attribute/registry:
                            # ownership lives on the receiving object
                            with_managed.add(id(node.value))
                elif self._is_attach(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            attached.add(target.id)
            elif isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Call) and self._is_creation(node.value):
                    with_managed.add(id(node.value))  # caller takes ownership
                for name_node in ast.walk(node.value):
                    if isinstance(name_node, ast.Name):
                        names_returned.add(name_node.id)
            elif isinstance(node, ast.Try):
                for final_stmt in node.finalbody:
                    for call in ast.walk(final_stmt):
                        if isinstance(call, ast.Call):
                            dotted = call_name(call)
                            parts = dotted.split(".")
                            if parts[-1] in ("close", "unlink") and len(parts) == 2:
                                names_finally_closed.add(parts[0])

        for node in own_nodes:
            if isinstance(node, ast.Call) and self._is_creation(node):
                if id(node) not in with_managed and not _is_assigned_or_returned(
                    node, own_nodes
                ):
                    bare_creations.append(node)
            if isinstance(node, ast.Call) and self.resolved_call_name(
                node
            ).endswith("atexit.register"):
                for arg in ast.walk(node):
                    if isinstance(arg, ast.Name):
                        names_atexit.add(arg.id)
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        if isinstance(node.value, ast.Name):
                            names_transferred.add(node.value.id)

        for call in bare_creations:
            self.add(
                call,
                "shared-memory block created and immediately dropped: nothing "
                "holds the mapping, so it can never be closed or unlinked — "
                "bind it, use a with-statement, or return it",
            )

        for name, call in created.items():
            if (
                name in names_in_with
                or name in names_returned
                or name in names_transferred
                or name in names_atexit
                or name in names_finally_closed
            ):
                continue
            self.add(
                call,
                f"shared-memory block {name!r} is created in {fn.name!r} but "
                "never paired with close/unlink on all exits: wrap it in a "
                "with-statement or try/finally (or transfer ownership by "
                "returning/storing it) so an exception cannot leak the "
                "/dev/shm segment",
            )

        if not allow_attach_unlink:
            for node in own_nodes:
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in attached
                ):
                    self.add(
                        node,
                        f"unlink() on attached block {node.func.value.id!r}: "
                        "only the creating process owns a block's name; an "
                        "attach-side unlink destroys the shared data plane "
                        "for every other session",
                    )


def _nodes_excluding_nested_functions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.AST]:
    """All nodes in ``fn``'s own body, stopping at nested defs (they
    are analysed as their own scopes by the caller)."""
    out: list[ast.AST] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            out.append(child)
            walk(child)

    walk(fn)
    return out


def _is_assigned_or_returned(call: ast.Call, nodes: list[ast.AST]) -> bool:
    """Is ``call`` the value of an assignment or inside a return/yield
    expression (ownership leaves the statement)?"""
    for node in nodes:
        if isinstance(node, ast.Assign) and node.value is call:
            return True
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and any(n is call for n in ast.walk(node.value)):
                return True
    return False
