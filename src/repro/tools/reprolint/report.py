"""Output rendering: human terminal text and the CI JSON artifact."""

from __future__ import annotations

import json

from repro.tools.reprolint.runner import LintResult

__all__ = ["render_human", "render_json"]

#: Bumped when the JSON artifact schema changes shape.
#: v2: findings gained a ``chain`` list (program-rule call/taint hops).
JSON_SCHEMA_VERSION = 2


def render_human(result: LintResult) -> str:
    """Grep-able one-line-per-finding text plus a summary line."""
    lines = [f.render() for f in result.findings]
    for path, error in result.parse_errors:
        lines.append(f"{path}:1:0: PARSE error: {error}")
    n = len(result.findings)
    summary = (
        f"reprolint: {n} finding{'s' if n != 1 else ''} "
        f"in {result.n_files} files"
    )
    if result.suppressed:
        summary += f" ({len(result.suppressed)} suppressed)"
    if result.ok:
        summary = f"reprolint: clean ({result.n_files} files)"
        if result.suppressed:
            summary += f", {len(result.suppressed)} suppressed"
    if result.n_cached:
        summary += f" [{result.n_cached} cached]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The CI artifact: findings, suppressions, and the run summary."""
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "ok": result.ok,
        "n_files": result.n_files,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "parse_errors": [
            {"path": path, "error": error} for path, error in result.parse_errors
        ],
        "summary": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "parse_errors": len(result.parse_errors),
        },
    }
    return json.dumps(doc, indent=1)
