"""Content-hash incremental cache for ``--changed-only`` runs.

Stored under ``.reprolint_cache/cache.json``.  Three reuse tiers:

1. **Per-file rules** — a file whose content hash matches the cache
   reuses its stored per-file report verbatim; per-file rules read
   nothing outside the file.
2. **Everything** — when *no* hash changed (and the tool fingerprint
   matches), the whole run including program rules is served from
   cache without parsing a single file.
3. **Program rules** — when files changed but (a) every module's
   *interface summary* (what program rules read from a dependency —
   see :meth:`ProgramAnalysis.interface_summary`) is unchanged and
   (b) no changed file hosts a cached program finding or chain hop,
   the cached program findings are provably still valid and reused.
   Otherwise program rules re-run over the full tree.

The fingerprint hashes reprolint's own source tree plus the effective
config, so editing a rule or a scope invalidates everything.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.tools.reprolint.model import FileReport, Finding
from repro.util.fileio import atomic_write_text

__all__ = ["LintCache", "content_hash", "tool_fingerprint"]

CACHE_VERSION = 1


def content_hash(source: str) -> str:
    """sha256 of a file's text — the per-file cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def tool_fingerprint(config_repr: str) -> str:
    """Hash of reprolint's own sources + the effective configuration."""
    digest = hashlib.sha256()
    package_root = Path(__file__).parent
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    digest.update(config_repr.encode("utf-8"))
    return digest.hexdigest()


def _report_to_dict(report: FileReport) -> dict[str, Any]:
    return {
        "path": report.path,
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "parse_error": report.parse_error,
    }


def _report_from_dict(doc: dict[str, Any]) -> FileReport:
    report = FileReport(path=doc["path"])
    report.findings = [Finding.from_dict(f) for f in doc["findings"]]
    report.suppressed = [Finding.from_dict(f) for f in doc["suppressed"]]
    report.parse_error = doc["parse_error"]
    return report


class LintCache:
    """Load/consult/update the on-disk cache for one lint run."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.path = Path(cache_dir) / "cache.json"
        self._data: dict[str, Any] = {}
        self.loaded = False

    def load(self, fingerprint: str) -> None:
        """Read the cache; a version/fingerprint mismatch empties it."""
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = {}
        if (
            data.get("version") != CACHE_VERSION
            or data.get("fingerprint") != fingerprint
        ):
            data = {}
        self._data = data
        self.loaded = bool(data)

    # per-file tier ----------------------------------------------------------

    def file_report(self, path: str, sha: str) -> FileReport | None:
        """Cached per-file report, or None when absent or stale."""
        entry = self._data.get("files", {}).get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        return _report_from_dict(entry["report"])

    # program tier -----------------------------------------------------------

    @property
    def program_signature(self) -> str | None:
        return self._data.get("program", {}).get("signature")

    def program_reports(self) -> list[FileReport] | None:
        """Cached program-rule reports, or None when never stored."""
        program = self._data.get("program")
        if program is None or "reports" not in program:
            return None
        return [_report_from_dict(doc) for doc in program["reports"]]

    def program_hosts(self) -> set[str]:
        """Paths hosting any cached program finding or chain hop."""
        out: set[str] = set()
        for report in self.program_reports() or []:
            for finding in report.findings + report.suppressed:
                out.add(finding.path)
                out.update(hop.path for hop in finding.chain)
        return out

    def all_unchanged(self, shas: dict[str, str]) -> bool:
        """True when the cached file set exactly matches ``shas``."""
        files = self._data.get("files", {})
        if set(files) != set(shas):
            return False
        return all(files[p].get("sha") == sha for p, sha in shas.items())

    # write-back -------------------------------------------------------------

    def store(
        self,
        fingerprint: str,
        shas: dict[str, str],
        file_reports: dict[str, FileReport],
        program_signature: str | None,
        program_reports: list[FileReport] | None,
    ) -> None:
        """Atomically persist this run's results as the new cache."""
        doc: dict[str, Any] = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "files": {
                path: {
                    "sha": shas[path],
                    "report": _report_to_dict(file_reports[path]),
                }
                for path in shas
                if path in file_reports
            },
        }
        if program_signature is not None:
            doc["program"] = {
                "signature": program_signature,
                "reports": [
                    _report_to_dict(r) for r in (program_reports or [])
                ],
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, json.dumps(doc, separators=(",", ":")))
