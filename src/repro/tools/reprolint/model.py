"""Finding model: what a checker reports and how it serializes.

A :class:`Finding` is one rule violation pinned to a ``file:line:col``
location.  Findings are ordinary frozen dataclasses so checkers can be
unit-tested without touching the runner, and sort by location so output
is stable across dict-ordering and filesystem-walk differences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Severity", "ChainHop", "Finding", "FileReport"]


class Severity(str, enum.Enum):
    """How bad a violated invariant is.

    ``ERROR`` findings break a correctness invariant (cache poisoning,
    use-after-free, torn writes); ``WARNING`` findings are discipline
    violations that have not corrupted anything *yet* (a missing
    read-only flag on a view nobody currently writes to).  Both fail
    the lint run — the split only drives triage order in reports.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class ChainHop:
    """One step of a rendered call/taint chain (program rules)."""

    path: str
    line: int
    note: str

    def render(self) -> str:
        """``file:line: note`` — one hop of a finding's chain."""
        return f"{self.path}:{self.line}: {self.note}"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path of the offending file as given to the runner.
    line / col:
        1-based line and 0-based column (``ast`` convention).
    rule:
        Rule id, e.g. ``"RL003"``.
    message:
        Human explanation *with the fix spelled out* — a finding the
        reader cannot act on is noise.
    severity:
        See :class:`Severity`.
    chain:
        For program-scope rules, the call/taint path from the violated
        declaration to the offending operation, one hop per file:line.
        Excluded from ordering so chained and chainless findings at the
        same location sort identically.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    chain: tuple[ChainHop, ...] = field(default=(), compare=False)

    def render(self) -> str:
        """``file:line:col: RLxxx error: message`` (clickable in most
        editors and CI log viewers), chain hops indented below."""
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity.value}: {self.message}"
        )
        if not self.chain:
            return head
        hops = "\n".join(f"    via {hop.render()}" for hop in self.chain)
        return f"{head}\n{hops}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the CI artifact schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "chain": [
                {"path": hop.path, "line": hop.line, "note": hop.note}
                for hop in self.chain
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (incremental-cache rehydration)."""
        return cls(
            path=doc["path"],
            line=doc["line"],
            col=doc["col"],
            rule=doc["rule"],
            message=doc["message"],
            severity=Severity(doc["severity"]),
            chain=tuple(
                ChainHop(path=h["path"], line=h["line"], note=h["note"])
                for h in doc.get("chain", ())
            ),
        )


@dataclass
class FileReport:
    """Per-file lint outcome: findings kept, findings suppressed, and
    any parse failure (a file that does not parse cannot be vouched
    for, so it is an error, not a skip)."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    parse_error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.findings and self.parse_error is None
