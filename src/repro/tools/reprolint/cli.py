"""Command-line entry point: ``python -m repro.tools.reprolint src``.

Exit codes: 0 clean, 1 findings, 2 parse errors / bad usage — so CI
can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.tools.reprolint.base import checker_for, registered_rules
from repro.tools.reprolint.config import DEFAULT_CONFIG, LintConfig
from repro.tools.reprolint.report import render_human, render_json
from repro.tools.reprolint.runner import DEFAULT_CACHE_DIR, lint_paths
from repro.util.fileio import atomic_write_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.reprolint",
        description=(
            "AST-based invariant checker for this repository: cache purity, "
            "shared-memory lifecycle, lock discipline, degradation taint, "
            "read-only views, atomic writes."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="stdout format",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--rules", metavar="RL001,RL002,...", default=None,
        help="run only these rules",
    )
    parser.add_argument(
        "--unscoped", action="store_true",
        help="apply every rule to every file, ignoring package scoping "
        "(fixture/test runs)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print known rules and exit",
    )
    parser.add_argument(
        "--program", action="store_true",
        help="also run the whole-program rules (call-graph + dataflow: "
        "RL009 transitive lock-free, RL010 epoch provenance, RL011 "
        "deadline propagation)",
    )
    parser.add_argument(
        "--callgraph-dump", metavar="FILE", default=None,
        help="write the conservative call graph as JSON to FILE "
        "(the CI artifact; implies building program analysis)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="incremental mode: reuse cached results for files whose "
        "content hash and dependency interface summaries are unchanged",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"incremental cache location (default: {DEFAULT_CACHE_DIR})",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, lint, print, and return the exit code."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in registered_rules():
            cls = checker_for(rule)
            tag = " [program]" if cls.program_scope else ""
            print(f"{rule}  {cls.summary}{tag}")
        return 0

    enabled: tuple[str, ...] | None = None
    if args.rules:
        enabled = tuple(r.strip().upper() for r in args.rules.split(",") if r.strip())
        unknown = set(enabled) - set(registered_rules())
        if unknown:
            print(f"unknown rules: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    config = LintConfig(
        scopes=DEFAULT_CONFIG.scopes,
        enabled=enabled,
        rule_options=DEFAULT_CONFIG.rule_options,
        unscoped=args.unscoped,
    )

    result = lint_paths(
        list(args.paths),
        config,
        program=args.program,
        with_callgraph=args.callgraph_dump is not None,
        changed_only=args.changed_only,
        cache_dir=args.cache_dir,
    )

    if args.callgraph_dump and result.callgraph is not None:
        atomic_write_text(
            args.callgraph_dump, json.dumps(result.callgraph, indent=1) + "\n"
        )
    if args.report:
        atomic_write_text(args.report, render_json(result) + "\n")
    print(render_json(result) if args.format == "json" else render_human(result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
