"""reprolint — AST-based invariant checking for this repository.

The resilience ladder (PR 1), the staged plan cache (PR 2), and the
zero-copy shared-memory data plane (PR 3) each rest on invariants that
ordinary tests exercise only on the paths they happen to cover.
reprolint encodes them as static rules over the stdlib ``ast`` and
fails CI on any violation:

========  ==========================================================
RL001     stage bodies are pure w.r.t. the cache key; cache-served
          values are never mutated
RL002     shared-memory blocks are created with paired teardown;
          attached blocks are never unlinked
RL003     service mutations (registries, active-snapshot writes) are
          lock-guarded and non-blocking; the declared query-path
          methods acquire no lock at all
RL004     degraded outputs never enter the stage cache
RL005     worker-side views over shared pages are read-only
RL006     save paths use the atomic temp-file + os.replace helpers
RL007     telemetry emits only through the guarded obs facade;
          spans only as context managers
RL008     epoch swaps only via RolloverCoordinator; no direct active-
          handle mutation; deadline checks at stage boundaries only
RL009     [program] declared-lock-free methods reach no lock, blocking
          call, shm lifecycle op, or ``_active`` write transitively
RL010     [program] values from different epoch pins never meet in one
          operation (taint seeded at pin/attach sites)
RL011     [program] query-path functions looping over segments/
          supernodes/tiles accept + thread the deadline budget
========  ==========================================================

Run ``python -m repro.tools.reprolint src`` (exit 0 = clean) and see
DESIGN.md §9/§14 for the invariant → failure-mode tables.  Inline
``# reprolint: disable=RL00x`` suppresses a single line; program rules
(RL009–RL011) run under ``--program`` and render their call/taint
chains below each finding.
"""

from repro.tools.reprolint.base import (
    Checker,
    ProgramChecker,
    checker_for,
    register,
    registered_rules,
)
from repro.tools.reprolint.config import DEFAULT_CONFIG, LintConfig, RuleScope
from repro.tools.reprolint.model import ChainHop, FileReport, Finding, Severity
from repro.tools.reprolint.runner import (
    LintResult,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Checker",
    "ProgramChecker",
    "ChainHop",
    "checker_for",
    "register",
    "registered_rules",
    "DEFAULT_CONFIG",
    "LintConfig",
    "RuleScope",
    "FileReport",
    "Finding",
    "Severity",
    "LintResult",
    "lint_file",
    "lint_paths",
    "lint_source",
]
