"""reprolint — AST-based invariant checking for this repository.

The resilience ladder (PR 1), the staged plan cache (PR 2), and the
zero-copy shared-memory data plane (PR 3) each rest on invariants that
ordinary tests exercise only on the paths they happen to cover.
reprolint encodes them as static rules over the stdlib ``ast`` and
fails CI on any violation:

========  ==========================================================
RL001     stage bodies are pure w.r.t. the cache key; cache-served
          values are never mutated
RL002     shared-memory blocks are created with paired teardown;
          attached blocks are never unlinked
RL003     service mutations (registries, active-snapshot writes) are
          lock-guarded and non-blocking; the declared query-path
          methods acquire no lock at all
RL004     degraded outputs never enter the stage cache
RL005     worker-side views over shared pages are read-only
RL006     save paths use the atomic temp-file + os.replace helpers
RL007     telemetry emits only through the guarded obs facade;
          spans only as context managers
RL008     epoch swaps only via RolloverCoordinator; no direct active-
          handle mutation; deadline checks at stage boundaries only
========  ==========================================================

Run ``python -m repro.tools.reprolint src`` (exit 0 = clean) and see
DESIGN.md §9 for the invariant → failure-mode table.  Inline
``# reprolint: disable=RL00x`` suppresses a single line.
"""

from repro.tools.reprolint.base import (
    Checker,
    checker_for,
    register,
    registered_rules,
)
from repro.tools.reprolint.config import DEFAULT_CONFIG, LintConfig, RuleScope
from repro.tools.reprolint.model import FileReport, Finding, Severity
from repro.tools.reprolint.runner import (
    LintResult,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Checker",
    "checker_for",
    "register",
    "registered_rules",
    "DEFAULT_CONFIG",
    "LintConfig",
    "RuleScope",
    "FileReport",
    "Finding",
    "Severity",
    "LintResult",
    "lint_file",
    "lint_paths",
    "lint_source",
]
