"""Lint configuration: which rules run where.

Every rule has a *scope* — the set of packages whose invariant it
encodes.  RL003 (lock discipline) is meaningless outside the
multi-session service; RL006 (atomic writes) applies to the whole tree
except the one module that legitimately opens temp files.  Scopes are
dotted-module prefixes resolved from file paths, so the same config
drives linting ``src`` in CI and linting fixture files in tests (where
``unscoped=True`` applies every rule everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["RuleScope", "LintConfig", "DEFAULT_CONFIG", "module_name_for"]


def module_name_for(path: str | Path) -> str:
    """Dotted module name for a source file.

    Anchored at the last ``repro`` path segment so it is independent of
    where the tree is checked out (``src/repro/store/shm.py`` →
    ``repro.store.shm``).  Files outside any ``repro`` package (test
    fixtures) map to their bare stem — scope patterns never match them,
    which is why fixture runs use ``unscoped`` configs.
    """
    parts = Path(path).with_suffix("").parts
    parts = tuple(p for p in parts if p not in (".", ""))
    try:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    except ValueError:
        return parts[-1] if parts else ""
    module = parts[anchor:]
    if module[-1] == "__init__":
        module = module[:-1]
    return ".".join(module)


def _prefix_match(module: str, pattern: str) -> bool:
    """True when ``module`` is ``pattern`` or lives under it."""
    if pattern == "":
        return True
    return module == pattern or module.startswith(pattern + ".")


@dataclass(frozen=True)
class RuleScope:
    """Include/exclude dotted-module prefixes for one rule."""

    include: tuple[str, ...]
    exclude: tuple[str, ...] = ()

    def matches(self, module: str) -> bool:
        """True when the rule should run on ``module``."""
        if any(_prefix_match(module, p) for p in self.exclude):
            return False
        return any(_prefix_match(module, p) for p in self.include)


@dataclass(frozen=True)
class LintConfig:
    """Which rules run, where, and with what per-rule options.

    Parameters
    ----------
    scopes:
        rule id → :class:`RuleScope`.  A rule absent from the map never
        runs; ``unscoped=True`` overrides all scoping (fixtures).
    enabled:
        Optional allow-list of rule ids (``None`` = all registered).
    rule_options:
        rule id → option overrides merged over each checker's defaults
        (e.g. extra guarded classes for RL003).
    """

    scopes: dict[str, RuleScope] = field(default_factory=dict)
    enabled: tuple[str, ...] | None = None
    rule_options: dict[str, dict[str, Any]] = field(default_factory=dict)
    unscoped: bool = False

    def rule_applies(self, rule: str, path: str | Path) -> bool:
        """Should ``rule`` run on the file at ``path``?"""
        if self.enabled is not None and rule not in self.enabled:
            return False
        if self.unscoped:
            return True
        scope = self.scopes.get(rule)
        if scope is None:
            return False
        return scope.matches(module_name_for(path))

    def options_for(self, rule: str) -> dict[str, Any]:
        """Option overrides configured for ``rule`` (copy, maybe empty)."""
        return dict(self.rule_options.get(rule, {}))


#: The repository's own invariant map: each rule scoped to the packages
#: whose PR introduced the invariant it checks (see DESIGN.md §9).
DEFAULT_CONFIG = LintConfig(
    scopes={
        # PR 2: stage outputs are cached by pure, epoch-tagged keys.
        "RL001": RuleScope(include=("repro.core.plan",)),
        # PR 3: shared-memory blocks have exactly one owner/unlinker.
        "RL002": RuleScope(
            include=("repro.store", "repro.parallel"),
        ),
        # PR 3: DatasetService shared state is RLock-guarded.
        "RL003": RuleScope(include=("repro.store.service",)),
        # PR 1+2: degraded results must never enter the stage cache.
        "RL004": RuleScope(include=("repro.core.plan", "repro.core.engine")),
        # PR 3: worker-side views over shared pages are read-only.
        "RL005": RuleScope(include=("repro.store", "repro.parallel")),
        # PR 1: every save path goes through util.fileio's temp+replace.
        "RL006": RuleScope(
            include=("repro",),
            exclude=("repro.util.fileio",),
        ),
        # PR 5: telemetry emits only through the guarded obs facade;
        # spans only as context managers.  The facade itself is the one
        # place bare registry calls legitimately live.
        "RL007": RuleScope(
            include=("repro",),
            exclude=("repro.obs",),
        ),
        # PR 6: epoch swaps only via RolloverCoordinator; no direct
        # mutation of a service's active handle; deadline checks only
        # at stage boundaries.
        "RL008": RuleScope(include=("repro.store", "repro.core")),
        # PR 7→9: declared-lock-free query path stays lock-free through
        # every transitive callee (whole-program rule; findings land at
        # the declared root's definition site).
        "RL009": RuleScope(include=("repro",)),
        # PR 7→9: values pinned from different epoch snapshots never
        # meet in one operation (whole-program taint rule).
        "RL010": RuleScope(include=("repro",)),
        # PR 6→9: functions on the query path that loop over
        # segments/supernodes/tiles accept and thread the deadline
        # budget, or carry an explicit `# reprolint: exempt=RL011`.
        "RL011": RuleScope(include=("repro",)),
    },
)
