"""``python -m repro.tools.reprolint`` dispatch."""

import sys

from repro.tools.reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
