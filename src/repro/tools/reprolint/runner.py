"""Lint driver: walk files, dispatch checkers, collect findings.

The runner is deliberately dependency-free (stdlib ``ast`` only) so it
can run in CI before the package's own dependencies install, and fast
enough (<1 s over this tree) to sit in a pre-commit hook.

Two rule kinds dispatch differently:

* **Per-file rules** run once per (file, rule) pair against that file's
  AST plus its :class:`ModuleSymbols` (import-alias resolution).
* **Program rules** (``program_scope=True``) run once per lint run
  against a :class:`ProgramAnalysis` over every file, land findings in
  whatever file each violation's root lives in, and go through the same
  scoping/suppression filters per finding location.

``--changed-only`` layers the :mod:`incremental` cache on top: content
hashes gate per-file work, interface summaries gate program re-runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import repro.tools.reprolint.rules  # noqa: F401  (registers all checkers)
from repro.tools.reprolint.base import checker_for, registered_rules
from repro.tools.reprolint.config import DEFAULT_CONFIG, LintConfig, module_name_for
from repro.tools.reprolint.incremental import (
    LintCache,
    content_hash,
    tool_fingerprint,
)
from repro.tools.reprolint.model import FileReport, Finding
from repro.tools.reprolint.suppress import SuppressionIndex

__all__ = ["LintResult", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

DEFAULT_CACHE_DIR = ".reprolint_cache"


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    reports: list[FileReport] = field(default_factory=list)
    n_files: int = 0
    #: ``--callgraph-dump`` payload, present when program analysis ran
    callgraph: dict[str, Any] | None = None
    #: files served from the incremental cache (observability only)
    n_cached: int = 0

    @property
    def findings(self) -> list[Finding]:
        out = [f for r in self.reports for f in r.findings]
        return sorted(out)

    @property
    def suppressed(self) -> list[Finding]:
        return sorted(f for r in self.reports for f in r.suppressed)

    @property
    def parse_errors(self) -> list[tuple[str, str]]:
        return [
            (r.path, r.parse_error)
            for r in self.reports
            if r.parse_error is not None
        ]

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def exit_code(self) -> int:
        """0 clean · 1 findings · 2 parse/internal errors."""
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen[sub] = None
        elif path.suffix == ".py":
            seen[path] = None
    return list(seen)


def _per_file_rules() -> list[str]:
    return [r for r in registered_rules() if not checker_for(r).program_scope]


def _program_rules() -> list[str]:
    return [r for r in registered_rules() if checker_for(r).program_scope]


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
    *,
    tree: ast.Module | None = None,
    symbols: "Any | None" = None,
) -> FileReport:
    """Lint one already-read source blob (unit tests hook in here).

    Runs per-file rules only — program rules need the whole tree and go
    through :func:`lint_paths` with ``program=True``.
    """
    from repro.tools.reprolint.program.symbols import ModuleSymbols

    report = FileReport(path=str(path))
    if tree is None:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.parse_error = f"line {exc.lineno}: {exc.msg}"
            return report
    if symbols is None:
        symbols = ModuleSymbols.from_source(
            source, str(path), module_name_for(path), tree=tree
        )
    suppressions = SuppressionIndex(source)
    for rule in _per_file_rules():
        if not config.rule_applies(rule, path):
            continue
        checker = checker_for(rule)(
            str(path), config.options_for(rule), symbols=symbols
        )
        for finding in checker.check(tree):
            if suppressions.is_suppressed(finding):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report


def lint_file(path: str | Path, config: LintConfig = DEFAULT_CONFIG) -> FileReport:
    """Lint one file from disk."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        report = FileReport(path=str(path))
        report.parse_error = f"unreadable: {exc}"
        return report
    return lint_source(source, str(path), config)


def _run_program_rules(
    analysis: "Any",
    config: LintConfig,
    sources: dict[str, str],
) -> list[FileReport]:
    """Run every program rule once; filter per finding location."""
    suppression_cache: dict[str, SuppressionIndex] = {}
    by_path: dict[str, FileReport] = {}
    for rule in _program_rules():
        if config.enabled is not None and rule not in config.enabled:
            continue
        checker = checker_for(rule)(config.options_for(rule))
        for finding in checker.check_program(analysis):
            if not config.rule_applies(rule, finding.path):
                continue
            report = by_path.setdefault(
                finding.path, FileReport(path=finding.path)
            )
            index = suppression_cache.get(finding.path)
            if index is None and finding.path in sources:
                index = SuppressionIndex(sources[finding.path])
                suppression_cache[finding.path] = index
            if index is not None and index.is_suppressed(finding):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    for report in by_path.values():
        report.findings.sort()
    return [by_path[p] for p in sorted(by_path)]


def lint_paths(
    paths: list[str | Path],
    config: LintConfig = DEFAULT_CONFIG,
    *,
    program: bool = False,
    with_callgraph: bool = False,
    changed_only: bool = False,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``program=True`` additionally runs the whole-program rules;
    ``with_callgraph=True`` attaches the call-graph dump to the result
    (implied analysis build even without program rules);
    ``changed_only=True`` consults/updates the incremental cache.
    """
    from repro.tools.reprolint.program.analysis import ProgramAnalysis
    from repro.tools.reprolint.program.symbols import ModuleSymbols

    result = LintResult()
    files = iter_python_files(paths)
    result.n_files = len(files)

    # read + hash everything up front (unreadable files become reports)
    sources: dict[str, str] = {}
    shas: dict[str, str] = {}
    for path in files:
        key = str(path)
        try:
            sources[key] = Path(path).read_text(encoding="utf-8")
            shas[key] = content_hash(sources[key])
        except (OSError, UnicodeDecodeError) as exc:
            report = FileReport(path=key)
            report.parse_error = f"unreadable: {exc}"
            result.reports.append(report)

    cache: LintCache | None = None
    fingerprint = ""
    if changed_only:
        fingerprint = tool_fingerprint(repr((config, program)))
        cache = LintCache(cache_dir)
        cache.load(fingerprint)

    # tier 2: nothing changed at all → serve the whole run from cache
    if (
        cache is not None
        and cache.loaded
        and cache.all_unchanged(shas)
        and (not program or cache.program_signature is not None)
        and not with_callgraph
    ):
        for key in shas:
            cached = cache.file_report(key, shas[key])
            if cached is not None and (
                cached.findings or cached.suppressed or cached.parse_error
            ):
                result.reports.append(cached)
        if program:
            result.reports.extend(cache.program_reports() or [])
        result.n_cached = len(shas)
        return result

    # per-file pass (tier 1: sha-hit files reuse their cached report)
    trees: dict[str, ast.Module] = {}
    symbols: dict[str, ModuleSymbols] = {}
    file_reports: dict[str, FileReport] = {}
    changed: set[str] = set()

    def _parse(key: str) -> ast.Module | None:
        if key in trees:
            return trees[key]
        try:
            tree = ast.parse(sources[key], filename=key)
        except SyntaxError:
            return None
        trees[key] = tree
        symbols[key] = ModuleSymbols.from_source(
            sources[key], key, module_name_for(key), tree=tree
        )
        return tree

    for key in shas:
        cached = cache.file_report(key, shas[key]) if cache is not None else None
        if cached is not None:
            file_reports[key] = cached
            result.n_cached += 1
            continue
        changed.add(key)
        tree = _parse(key)
        if tree is None:
            file_reports[key] = lint_source(sources[key], key, config)
            continue
        file_reports[key] = lint_source(
            sources[key], key, config, tree=tree, symbols=symbols[key]
        )

    program_reports: list[FileReport] | None = None
    program_signature: str | None = None
    if program or with_callgraph:
        parsed: list[tuple[str, str, str, ast.Module]] = []
        for key in shas:
            tree = _parse(key)
            if tree is not None:
                parsed.append((key, module_name_for(key), sources[key], tree))
        analysis = ProgramAnalysis(
            {symbols[key].module: symbols[key] for key, _, _, _ in parsed}
        )
        if with_callgraph:
            result.callgraph = analysis.graph.dump()
        if program:
            program_signature = analysis.program_signature()
            reuse = (
                cache is not None
                and cache.loaded
                and program_signature == cache.program_signature
                and not (changed & cache.program_hosts())
            )
            if reuse and cache is not None:
                program_reports = cache.program_reports() or []
            else:
                program_reports = _run_program_rules(analysis, config, sources)

    for key in shas:
        report = file_reports.get(key)
        if report is not None and (
            report.findings or report.suppressed or report.parse_error
        ):
            result.reports.append(report)
    if program_reports:
        result.reports.extend(program_reports)

    if cache is not None:
        cache.store(
            fingerprint, shas, file_reports, program_signature, program_reports
        )
    return result
