"""Lint driver: walk files, dispatch checkers, collect findings.

The runner is deliberately dependency-free (stdlib ``ast`` only) so it
can run in CI before the package's own dependencies install, and fast
enough (<1 s over this tree) to sit in a pre-commit hook.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

import repro.tools.reprolint.rules  # noqa: F401  (registers all checkers)
from repro.tools.reprolint.base import checker_for, registered_rules
from repro.tools.reprolint.config import DEFAULT_CONFIG, LintConfig
from repro.tools.reprolint.model import FileReport, Finding
from repro.tools.reprolint.suppress import SuppressionIndex

__all__ = ["LintResult", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    reports: list[FileReport] = field(default_factory=list)
    n_files: int = 0

    @property
    def findings(self) -> list[Finding]:
        out = [f for r in self.reports for f in r.findings]
        return sorted(out)

    @property
    def suppressed(self) -> list[Finding]:
        return sorted(f for r in self.reports for f in r.suppressed)

    @property
    def parse_errors(self) -> list[tuple[str, str]]:
        return [
            (r.path, r.parse_error)
            for r in self.reports
            if r.parse_error is not None
        ]

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def exit_code(self) -> int:
        """0 clean · 1 findings · 2 parse/internal errors."""
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen[sub] = None
        elif path.suffix == ".py":
            seen[path] = None
    return list(seen)


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> FileReport:
    """Lint one already-read source blob (unit tests hook in here)."""
    report = FileReport(path=str(path))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        report.parse_error = f"line {exc.lineno}: {exc.msg}"
        return report
    suppressions = SuppressionIndex(source)
    for rule in registered_rules():
        if not config.rule_applies(rule, path):
            continue
        checker = checker_for(rule)(str(path), config.options_for(rule))
        for finding in checker.check(tree):
            if suppressions.is_suppressed(finding):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report


def lint_file(path: str | Path, config: LintConfig = DEFAULT_CONFIG) -> FileReport:
    """Lint one file from disk."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        report = FileReport(path=str(path))
        report.parse_error = f"unreadable: {exc}"
        return report
    return lint_source(source, str(path), config)


def lint_paths(
    paths: list[str | Path],
    config: LintConfig = DEFAULT_CONFIG,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``."""
    result = LintResult()
    for path in iter_python_files(paths):
        report = lint_file(path, config)
        result.n_files += 1
        if report.findings or report.suppressed or report.parse_error:
            result.reports.append(report)
    return result
