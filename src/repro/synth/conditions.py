"""Capture-condition taxonomy and study mix.

§IV-B: trajectories were categorized by the ant's state at capture —
position relative to the main foraging trail (on / east / west / north /
south), journey direction (outbound / inbound), and seed carrying.
This module enumerates the cross product and defines the mixing
proportions used to synthesize a study-shaped dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trajectory.model import CaptureZone, Direction, TrajectoryMeta

__all__ = ["CaptureCondition", "STUDY_CONDITION_MIX", "condition_mix", "sample_conditions"]


@dataclass(frozen=True)
class CaptureCondition:
    """One cell of the experimental design."""

    capture_zone: str
    direction: str
    carrying_seed: bool
    seed_dropped: bool = False

    def __post_init__(self) -> None:
        if self.capture_zone not in CaptureZone:
            raise ValueError(f"unknown zone {self.capture_zone!r}")
        if self.direction not in Direction:
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.seed_dropped and not self.carrying_seed:
            raise ValueError("seed_dropped requires carrying_seed")

    def to_meta(self, **extra) -> TrajectoryMeta:
        """The metadata record a trajectory under this condition carries."""
        return TrajectoryMeta(
            capture_zone=self.capture_zone,
            direction=self.direction,
            carrying_seed=self.carrying_seed,
            seed_dropped=self.seed_dropped,
            extra=extra,
        )

    @property
    def label(self) -> str:
        seed = (
            "seed-dropped" if self.seed_dropped else ("seed" if self.carrying_seed else "noseed")
        )
        return f"{self.capture_zone}/{self.direction}/{seed}"


def _mix() -> dict[CaptureCondition, float]:
    """The default study mix.

    Zones weighted so the trail itself is sampled most heavily (that is
    where ants are abundant); inbound ants more often carry seeds
    (returning foragers); a fraction of carriers drop the seed during
    handling.  Probabilities sum to 1.
    """
    zone_w = {"on": 0.30, "east": 0.20, "west": 0.20, "north": 0.15, "south": 0.15}
    mix: dict[CaptureCondition, float] = {}
    for zone, zw in zone_w.items():
        for direction in ("outbound", "inbound"):
            dw = 0.5
            p_seed = 0.55 if direction == "inbound" else 0.15
            p_drop_given_seed = 0.35
            combos = (
                (False, False, (1.0 - p_seed)),
                (True, False, p_seed * (1.0 - p_drop_given_seed)),
                (True, True, p_seed * p_drop_given_seed),
            )
            for carrying, dropped, sw in combos:
                cond = CaptureCondition(zone, direction, carrying, dropped)
                mix[cond] = zw * dw * sw
    return mix


#: Default condition mix used by :func:`repro.synth.generate_study_dataset`.
STUDY_CONDITION_MIX = _mix()


def condition_mix() -> dict[CaptureCondition, float]:
    """A fresh copy of the default mix (callers may re-weight it)."""
    return dict(STUDY_CONDITION_MIX)


def sample_conditions(
    n: int, rng: np.random.Generator, mix: dict[CaptureCondition, float] | None = None
) -> list[CaptureCondition]:
    """Draw ``n`` conditions i.i.d. from ``mix`` (default study mix)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    mix = mix or STUDY_CONDITION_MIX
    conds = list(mix.keys())
    probs = np.array([mix[c] for c in conds], dtype=np.float64)
    total = probs.sum()
    if total <= 0:
        raise ValueError("condition mix weights must sum to a positive value")
    probs /= total
    idx = rng.choice(len(conds), size=n, p=probs)
    return [conds[i] for i in idx]
