"""Correlated random walk movement kernel.

Insect movement is commonly modeled as a correlated random walk (CRW):
each step's heading is the previous heading plus wrapped-Gaussian noise,
optionally pulled toward a goal bearing.  The kernel below generates a
whole walk in one vectorized pass: headings are a cumulative sum of
turning deviations blended with the bias field, and positions a
cumulative sum of step vectors — no per-step Python loop except the
(cheap) bias re-evaluation, which is itself chunk-vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WalkParams", "CorrelatedRandomWalk"]


@dataclass(frozen=True)
class WalkParams:
    """Parameters of a correlated random walk.

    Attributes
    ----------
    speed_mean, speed_std:
        Step speed distribution (m/s), truncated at zero.
    turn_std:
        Std-dev of per-step heading deviation (radians).  Larger makes
        windier paths — the paper's on-trail ants.
    bias_strength:
        In [0, 1]: per-step blending weight pulling the heading toward
        the goal bearing.  0 is a pure CRW; 1 beelines to the goal.
    dt:
        Simulation step in seconds (tracking was ~3 mm resolution;
        with ~2 cm/s ant speeds, dt=0.15 s gives ~3 mm steps).
    """

    speed_mean: float = 0.02
    speed_std: float = 0.006
    turn_std: float = 0.35
    bias_strength: float = 0.0
    dt: float = 0.15

    def __post_init__(self) -> None:
        if self.speed_mean <= 0:
            raise ValueError(f"speed_mean must be > 0, got {self.speed_mean}")
        if self.speed_std < 0:
            raise ValueError(f"speed_std must be >= 0, got {self.speed_std}")
        if self.turn_std < 0:
            raise ValueError(f"turn_std must be >= 0, got {self.turn_std}")
        if not 0.0 <= self.bias_strength <= 1.0:
            raise ValueError(f"bias_strength must be in [0,1], got {self.bias_strength}")
        if self.dt <= 0:
            raise ValueError(f"dt must be > 0, got {self.dt}")


def _wrap_angle(a: np.ndarray) -> np.ndarray:
    """Wrap angles into (-pi, pi]."""
    return (a + np.pi) % (2.0 * np.pi) - np.pi


class CorrelatedRandomWalk:
    """Generates CRW paths, optionally biased toward a goal bearing.

    The walk is advanced in vectorized chunks: within a chunk the goal
    bearing is held fixed (it changes slowly relative to the step), so
    headings and positions are produced by cumulative sums.  This keeps
    the generator O(N) with NumPy-level constants, per the HPC guide's
    vectorize-the-inner-loop rule.
    """

    #: Steps per vectorized chunk; bias bearing is refreshed per chunk.
    CHUNK = 32

    def __init__(self, params: WalkParams, rng: np.random.Generator) -> None:
        self.params = params
        self.rng = rng

    def walk(
        self,
        start: np.ndarray,
        n_steps: int,
        initial_heading: float,
        goal: np.ndarray | None = None,
        stop_predicate=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate a path of up to ``n_steps`` steps.

        Parameters
        ----------
        start:
            (2,) starting position.
        n_steps:
            Maximum number of steps.
        initial_heading:
            Starting heading in radians.
        goal:
            Optional (2,) attraction point; with ``bias_strength`` > 0
            the heading is pulled toward it each chunk.
        stop_predicate:
            Optional callable ``(positions_chunk) -> bool mask``;
            the walk stops after the first True sample (inclusive).
            Used to terminate at the arena rim.

        Returns
        -------
        (positions, times):
            (N+1, 2) positions including the start, and (N+1,) times
            starting at 0.
        """
        p = self.params
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        pos_chunks: list[np.ndarray] = [np.asarray(start, dtype=np.float64)[None, :]]
        heading = float(initial_heading)
        current = np.asarray(start, dtype=np.float64).copy()
        produced = 0
        stopped = False
        while produced < n_steps and not stopped:
            m = min(self.CHUNK, n_steps - produced)
            turns = self.rng.normal(0.0, p.turn_std, size=m)
            headings = heading + np.cumsum(turns)
            if goal is not None and p.bias_strength > 0.0:
                goal_bearing = np.arctan2(goal[1] - current[1], goal[0] - current[0])
                # blend by rotating each heading a fraction of the way
                # toward the goal bearing (shortest angular path)
                delta = _wrap_angle(goal_bearing - headings)
                headings = headings + p.bias_strength * delta
            speeds = self.rng.normal(p.speed_mean, p.speed_std, size=m)
            np.maximum(speeds, 1e-4, out=speeds)
            steps = (speeds * p.dt)[:, None] * np.stack(
                [np.cos(headings), np.sin(headings)], axis=1
            )
            chunk = current + np.cumsum(steps, axis=0)
            if stop_predicate is not None:
                hit = np.asarray(stop_predicate(chunk), dtype=bool)
                if hit.any():
                    cut = int(np.argmax(hit)) + 1
                    chunk = chunk[:cut]
                    headings = headings[:cut]
                    stopped = True
            pos_chunks.append(chunk)
            produced += len(chunk)
            current = chunk[-1].copy()
            heading = float(headings[-1])
        positions = np.concatenate(pos_chunks, axis=0)
        times = p.dt * np.arange(len(positions), dtype=np.float64)
        return positions, times
