"""Experimental arena model.

The study released each captured ant at the center of a circular
experimental arena and tracked it until it exited (§IV-B).  The arena
model provides the geometry every other component shares: the release
point, containment tests, exit detection, and the compass convention
used to classify exit sides (the §V-B query asks whether east-captured
ants exit on the *west* side).

Convention: arena coordinates are meters with the release point at the
origin; +X is east, +Y is north.  The colony's main foraging trail runs
north-south through the origin, so "east of the trail" means x > 0 at
the capture site, and "exiting west" means leaving the arena with a
bearing in the western quadrant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Arena", "EXIT_SIDES", "bearing_to_side"]

#: The four compass exit sides, in counterclockwise quadrant order.
EXIT_SIDES = ("east", "north", "west", "south")


def bearing_to_side(angle_rad: float | np.ndarray) -> np.ndarray:
    """Map bearings (radians, atan2 convention) to compass quadrants.

    East is the quadrant within +/-45 degrees of +X, north within
    +/-45 degrees of +Y, and so on.  Vectorized over arrays.
    """
    angle = np.asarray(angle_rad, dtype=np.float64)
    quadrant = np.floor_divide(angle + np.pi / 4.0, np.pi / 2.0).astype(np.int64) % 4
    return np.asarray(EXIT_SIDES, dtype=object)[quadrant]


@dataclass(frozen=True)
class Arena:
    """A circular experimental arena.

    Attributes
    ----------
    radius:
        Arena radius in meters (default 0.5 m — a 1 m dish, consistent
        with the ~3 mm tracking resolution of the study).
    """

    radius: float = 0.5

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")

    @property
    def center(self) -> np.ndarray:
        """The release point (the origin)."""
        return np.zeros(2)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask: which (N, 2) points lie inside the arena."""
        points = np.asarray(points, dtype=np.float64)
        return np.einsum("ij,ij->i", points, points) <= self.radius**2

    def contains_point(self, point) -> bool:
        """Scalar convenience wrapper over :meth:`contains`."""
        return bool(self.contains(np.asarray(point, dtype=np.float64)[None, :])[0])

    def exit_bearing(self, point) -> float:
        """Bearing (radians) from the center to ``point``."""
        x, y = float(point[0]), float(point[1])
        return float(np.arctan2(y, x))

    def exit_side(self, point) -> str:
        """Compass side (east/north/west/south) of an exit point."""
        return str(bearing_to_side(self.exit_bearing(point)))

    def clamp_inside(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Project points outside radius-margin back onto that circle."""
        points = np.asarray(points, dtype=np.float64).copy()
        limit = self.radius - margin
        r = np.linalg.norm(points, axis=-1)
        outside = r > limit
        if np.any(outside):
            scale = limit / r[outside]
            points[outside] *= scale[:, None]
        return points

    def random_boundary_point(self, rng: np.random.Generator, side: str | None = None) -> np.ndarray:
        """A uniformly random point on the rim, optionally within a side's
        90-degree quadrant.  Used by tests and workload generators."""
        if side is None:
            theta = rng.uniform(-np.pi, np.pi)
        else:
            if side not in EXIT_SIDES:
                raise ValueError(f"unknown side {side!r}; valid: {EXIT_SIDES}")
            base = {"east": 0.0, "north": np.pi / 2, "west": np.pi, "south": -np.pi / 2}[side]
            theta = base + rng.uniform(-np.pi / 4, np.pi / 4)
        return self.radius * np.array([np.cos(theta), np.sin(theta)])
