"""Study-shaped dataset generation.

:func:`generate_study_dataset` produces the ~500-trajectory dataset the
paper analysed (same cardinality, sampling resolution, duration range
and metadata schema); :func:`generate_scaled_dataset` produces the
10k-1M-trace workloads of the §VI-C scalability discussion.

Each ant draws from its own derived RNG stream (``spawn_streams``) so
datasets are reproducible and order-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.arena import Arena
from repro.synth.behavior import BehaviorParams, simulate_ant
from repro.synth.conditions import CaptureCondition, sample_conditions
from repro.trajectory.dataset import TrajectoryDataset
from repro.util.rng import derive_rng, spawn_streams

__all__ = ["AntStudyConfig", "generate_study_dataset", "generate_scaled_dataset"]


@dataclass(frozen=True)
class AntStudyConfig:
    """Configuration of a synthetic capture-and-release study.

    Defaults match the paper's dataset: ~500 trajectories, circular
    arena, behavioural effects strong enough that the study's visual
    queries come out the way the paper reports.
    """

    n_trajectories: int = 500
    seed: int = 20120101
    arena: Arena = field(default_factory=Arena)
    behavior: BehaviorParams = field(default_factory=BehaviorParams)

    def __post_init__(self) -> None:
        if self.n_trajectories < 1:
            raise ValueError("n_trajectories must be >= 1")


def generate_study_dataset(config: AntStudyConfig | None = None) -> TrajectoryDataset:
    """Generate the study dataset described in §IV-B.

    Returns a :class:`TrajectoryDataset` of ``config.n_trajectories``
    ant walks with full capture-condition metadata.
    """
    config = config or AntStudyConfig()
    cond_rng = derive_rng(config.seed, "conditions")
    conditions = sample_conditions(config.n_trajectories, cond_rng)
    streams = spawn_streams(config.seed, config.n_trajectories, "antsim")
    dataset = TrajectoryDataset(name=f"ant-study-n{config.n_trajectories}-s{config.seed}")
    for i, (cond, rng) in enumerate(zip(conditions, streams)):
        dataset.append(simulate_ant(config.arena, cond, rng, config.behavior, traj_id=i))
    return dataset


def generate_scaled_dataset(
    n: int,
    seed: int = 20120101,
    *,
    arena: Arena | None = None,
    behavior: BehaviorParams | None = None,
    max_duration_s: float = 60.0,
) -> TrajectoryDataset:
    """Generate a large dataset for the §VI-C scalability experiments.

    Identical behavioural model but with a shorter duration cap (keeps
    the point count tractable at 10k-100k traces while preserving the
    planted effects: the walk statistics are duration-independent).
    """
    behavior = behavior or BehaviorParams(max_duration_s=max_duration_s, min_duration_s=5.0)
    config = AntStudyConfig(n_trajectories=n, seed=seed, arena=arena or Arena(), behavior=behavior)
    return generate_study_dataset(config)


def single_condition_dataset(
    cond: CaptureCondition, n: int, seed: int = 0, arena: Arena | None = None
) -> TrajectoryDataset:
    """All-one-condition dataset; handy in tests and ablations."""
    arena = arena or Arena()
    streams = spawn_streams(seed, n, "single", cond.label)
    dataset = TrajectoryDataset(name=f"cond-{cond.label}-n{n}")
    for i, rng in enumerate(streams):
        dataset.append(simulate_ant(arena, cond, rng, traj_id=i))
    return dataset
