"""Synthetic ant-behaviour simulator.

The paper's dataset — ~500 field-tracked *Messor cephalotes*
trajectories from Kenya — is proprietary and unavailable, so this
subpackage generates a statistically matched substitute: a circular
experimental arena, a correlated-random-walk movement model with
condition-dependent homing bias, and a dataset builder that plants the
exact ground-truth effects the paper's visual queries tested (east-
captured ants exiting west; seed-droppers dwelling centrally early).
See DESIGN.md §2 for the substitution rationale.
"""

from repro.synth.arena import Arena
from repro.synth.conditions import CaptureCondition, STUDY_CONDITION_MIX, condition_mix
from repro.synth.walker import CorrelatedRandomWalk, WalkParams
from repro.synth.behavior import BehaviorParams, simulate_ant
from repro.synth.antsim import AntStudyConfig, generate_study_dataset, generate_scaled_dataset
from repro.synth.ensembles import (
    EnsembleConfig,
    generate_oscillator_ensemble,
    generate_vdp_ensemble,
)

__all__ = [
    "EnsembleConfig",
    "generate_oscillator_ensemble",
    "generate_vdp_ensemble",
    "Arena",
    "CaptureCondition",
    "STUDY_CONDITION_MIX",
    "condition_mix",
    "CorrelatedRandomWalk",
    "WalkParams",
    "BehaviorParams",
    "simulate_ant",
    "AntStudyConfig",
    "generate_study_dataset",
    "generate_scaled_dataset",
]
