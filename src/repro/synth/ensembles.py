"""Simulation-ensemble workloads — the paper's generalization claim.

§VII: "we believe the concept of scalable visual queries could be
generalized to other applications especially when dealing with large
collections of related data instances, such as ensembles of simulation
runs under different conditions."

This module provides that second domain: ensembles of 2-D dynamical-
system trajectories under varied parameters and initial conditions,
shaped exactly like the ant data (a :class:`~repro.trajectory.model.
Trajectory` per run, parameters in ``meta.extra``), so the entire
layout/brush/query/render stack applies unchanged.  Two classic
systems:

* **damped oscillator** — phase-plane spirals ``(x, v)``; the damping
  ratio controls whether runs spiral in (underdamped), crawl in
  (overdamped), or ring at near-constant radius;
* **Van der Pol** — limit-cycle dynamics; every run converges to the
  same cycle, from inside or outside, at a rate set by ``mu``.

Both make natural visual-query targets: "do strongly damped runs ever
enter the outer annulus late in the simulation?" is a brush + temporal
window, exactly like the ant hypotheses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory, TrajectoryMeta
from repro.util.rng import spawn_streams

__all__ = [
    "EnsembleConfig",
    "damped_oscillator_run",
    "van_der_pol_run",
    "generate_oscillator_ensemble",
    "generate_vdp_ensemble",
]


@dataclass(frozen=True)
class EnsembleConfig:
    """Shared ensemble-generation settings.

    Attributes
    ----------
    n_runs:
        Ensemble members.
    duration_s:
        Simulated seconds per run.
    dt:
        Integration/sampling step.
    seed:
        Root seed (per-run streams are derived).
    scale:
        Phase-plane half-extent the runs are normalized into, so the
        shared "arena" convention (a centered square) holds and brush
        coordinates mean the same thing across members.
    """

    n_runs: int = 200
    duration_s: float = 30.0
    dt: float = 0.05
    seed: int = 7
    scale: float = 0.5

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        if self.duration_s <= 0 or self.dt <= 0:
            raise ValueError("duration and dt must be positive")
        if self.duration_s < 2 * self.dt:
            raise ValueError("duration must cover at least two steps")
        if self.scale <= 0:
            raise ValueError("scale must be positive")


def _integrate(deriv, x0: np.ndarray, n_steps: int, dt: float) -> np.ndarray:
    """Fixed-step RK4 over a 2-state system; returns (n_steps+1, 2)."""
    out = np.empty((n_steps + 1, 2), dtype=np.float64)
    out[0] = x0
    x = x0.astype(np.float64).copy()
    for i in range(1, n_steps + 1):
        k1 = deriv(x)
        k2 = deriv(x + 0.5 * dt * k1)
        k3 = deriv(x + 0.5 * dt * k2)
        k4 = deriv(x + dt * k3)
        x = x + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        out[i] = x
    return out


def damped_oscillator_run(
    zeta: float,
    omega: float,
    x0,
    config: EnsembleConfig,
    run_id: int = -1,
) -> Trajectory:
    """One damped-oscillator phase trajectory (x, v).

    ``x'' + 2*zeta*omega*x' + omega^2 x = 0``; the phase plane is
    normalized by the largest radius so runs share the arena square.
    The run's regime label lands in ``meta.extra['regime']``:
    under / critical / over-damped.
    """
    if omega <= 0:
        raise ValueError("omega must be positive")
    if zeta < 0:
        raise ValueError("zeta must be >= 0")

    def deriv(state: np.ndarray) -> np.ndarray:
        x, v = state
        return np.array([v, -2.0 * zeta * omega * v - omega * omega * x])

    n_steps = int(round(config.duration_s / config.dt))
    raw = _integrate(deriv, np.asarray(x0, dtype=np.float64), n_steps, config.dt)
    # normalize velocity by omega so the spiral is round, then scale
    phase = np.stack([raw[:, 0], raw[:, 1] / omega], axis=1)
    max_r = max(float(np.linalg.norm(phase, axis=1).max()), 1e-12)
    phase *= config.scale / max_r
    times = config.dt * np.arange(n_steps + 1)
    regime = "under" if zeta < 1.0 else ("critical" if zeta == 1.0 else "over")
    meta = TrajectoryMeta(
        capture_zone="on",
        extra={"system": "damped_oscillator", "zeta": zeta, "omega": omega,
               "regime": regime},
    )
    return Trajectory(phase, times, meta, run_id)


def van_der_pol_run(
    mu: float,
    x0,
    config: EnsembleConfig,
    run_id: int = -1,
) -> Trajectory:
    """One Van der Pol phase trajectory: ``x'' - mu(1-x^2)x' + x = 0``."""
    if mu < 0:
        raise ValueError("mu must be >= 0")

    def deriv(state: np.ndarray) -> np.ndarray:
        x, v = state
        return np.array([v, mu * (1.0 - x * x) * v - x])

    n_steps = int(round(config.duration_s / config.dt))
    raw = _integrate(deriv, np.asarray(x0, dtype=np.float64), n_steps, config.dt)
    # VdP limit cycle spans roughly [-2.2, 2.2] in x for moderate mu
    norm = max(float(np.abs(raw).max()), 1e-12)
    phase = raw * (config.scale / norm)
    times = config.dt * np.arange(n_steps + 1)
    meta = TrajectoryMeta(
        capture_zone="on",
        extra={"system": "van_der_pol", "mu": mu},
    )
    return Trajectory(phase, times, meta, run_id)


def generate_oscillator_ensemble(config: EnsembleConfig | None = None) -> TrajectoryDataset:
    """An ensemble sweeping the damping ratio.

    Members draw zeta log-uniformly in [0.05, 3] and omega in [0.5, 2],
    starting from random phase-plane points — the "simulation runs
    under different conditions" of §VII.  Zeta per run is recorded in
    the metadata; underdamped runs keep re-entering the outer annulus
    (they ring), overdamped runs collapse monotonically — the planted,
    queryable contrast.
    """
    config = config or EnsembleConfig()
    streams = spawn_streams(config.seed, config.n_runs, "oscillator")
    ds = TrajectoryDataset(name=f"oscillator-ensemble-n{config.n_runs}")
    for i, rng in enumerate(streams):
        zeta = float(np.exp(rng.uniform(np.log(0.05), np.log(3.0))))
        omega = float(rng.uniform(0.5, 2.0))
        angle = rng.uniform(0.0, 2.0 * np.pi)
        x0 = np.array([np.cos(angle), np.sin(angle)])
        ds.append(damped_oscillator_run(zeta, omega, x0, config, run_id=i))
    return ds


def generate_vdp_ensemble(config: EnsembleConfig | None = None) -> TrajectoryDataset:
    """A Van der Pol ensemble sweeping mu in [0.1, 4]."""
    config = config or EnsembleConfig()
    streams = spawn_streams(config.seed, config.n_runs, "vdp")
    ds = TrajectoryDataset(name=f"vdp-ensemble-n{config.n_runs}")
    for i, rng in enumerate(streams):
        mu = float(rng.uniform(0.1, 4.0))
        x0 = rng.uniform(-2.0, 2.0, size=2)
        ds.append(van_der_pol_run(mu, x0, config, run_id=i))
    return ds
