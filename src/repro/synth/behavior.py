"""Condition-dependent ant behaviour.

Combines the CRW movement kernel with the behavioural hypotheses the
paper's pilot study actually tested, so every visual query in the
reproduction has a planted, verifiable ground truth:

* **Homing** (§V-B, Fig. 5): ants captured *east* of the foraging
  trail tend to head back *west* toward it (and symmetrically for the
  other zones); on-trail ants have no directional goal and produce the
  "more windy" paths the researcher described, while off-trail ants are
  "more direct" (§VI-A).
* **Seed-drop search** (§V-B): ants that dropped their seed during
  handling spend an initial dwell phase searching near the release
  point (the arena center) before committing to a direction —
  detectable as a near-perpendicular early segment in the space-time
  cube.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.arena import Arena
from repro.synth.conditions import CaptureCondition
from repro.synth.walker import CorrelatedRandomWalk, WalkParams
from repro.trajectory.model import Trajectory

__all__ = ["BehaviorParams", "homing_goal", "simulate_ant"]

#: Zone -> homing bearing (radians): the direction back toward the trail.
_HOMING_BEARING = {
    "east": np.pi,        # captured east of the trail -> head west
    "west": 0.0,          # captured west -> head east
    "north": -np.pi / 2,  # captured north -> head south
    "south": np.pi / 2,   # captured south -> head north
}


@dataclass(frozen=True)
class BehaviorParams:
    """Tunable strengths of the planted behavioural effects.

    Attributes
    ----------
    homing_fidelity:
        Probability that an off-trail ant actually homes toward the
        trail (the rest behave like on-trail ants).  The paper reports
        the east->west hypothesis held for "a majority", so the default
        is strong but not absolute.
    on_trail_turn_std / off_trail_turn_std:
        CRW turning noise for on-trail (windy) vs. off-trail (direct)
        ants.
    off_trail_bias:
        Goal-attraction strength for homing ants.
    search_dwell_s:
        Mean duration of the seed-drop central search phase (seconds).
    search_radius:
        Radius (fraction of arena radius) the search phase stays within.
    max_duration_s:
        Hard cap matching the study's 3-minute maximum.
    min_duration_s:
        Trajectories shorter than this are re-padded by continued
        walking along the rim; study minimum was 10 s.
    """

    homing_fidelity: float = 0.8
    on_trail_turn_std: float = 0.55
    off_trail_turn_std: float = 0.22
    off_trail_bias: float = 0.3
    search_dwell_s: float = 25.0
    search_radius: float = 0.15
    max_duration_s: float = 180.0
    min_duration_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.homing_fidelity <= 1.0:
            raise ValueError("homing_fidelity must be in [0, 1]")
        if self.max_duration_s <= self.min_duration_s:
            raise ValueError("max_duration_s must exceed min_duration_s")
        if not 0.0 < self.search_radius < 1.0:
            raise ValueError("search_radius must be a fraction of the arena radius")


def homing_goal(arena: Arena, cond: CaptureCondition, rng: np.random.Generator,
                params: BehaviorParams) -> np.ndarray | None:
    """The attraction point for an ant under ``cond``, or None.

    Off-trail ants home toward the trail with probability
    ``homing_fidelity``; inbound ants home slightly more reliably than
    outbound ones (they were already heading back).  On-trail ants have
    no goal.
    """
    if cond.capture_zone == "on":
        return None
    fidelity = params.homing_fidelity
    if cond.direction == "inbound":
        fidelity = min(1.0, fidelity + 0.1)
    else:
        fidelity = max(0.0, fidelity - 0.1)
    if rng.uniform() > fidelity:
        return None
    bearing = _HOMING_BEARING[cond.capture_zone] + rng.normal(0.0, 0.25)
    # goal well outside the arena so the pull direction is stable
    return 3.0 * arena.radius * np.array([np.cos(bearing), np.sin(bearing)])


def _search_phase(
    arena: Arena,
    walker: CorrelatedRandomWalk,
    rng: np.random.Generator,
    params: BehaviorParams,
) -> tuple[np.ndarray, np.ndarray]:
    """Central search dwell for seed-droppers: a tight, slow walk
    confined near the release point.  Capped at 40 % of the study's
    duration limit so the exit walk always gets its share."""
    dwell = max(params.search_dwell_s * rng.lognormal(0.0, 0.3), 2.0)
    dwell = min(dwell, 0.4 * params.max_duration_s)
    n_steps = max(2, int(dwell / walker.params.dt))
    limit = params.search_radius * arena.radius

    def confine(chunk: np.ndarray) -> np.ndarray:
        # never triggers a stop; confinement is applied after walking
        return np.zeros(len(chunk), dtype=bool)

    positions, times = walker.walk(
        np.zeros(2), n_steps, rng.uniform(-np.pi, np.pi), goal=None, stop_predicate=confine
    )
    # Project the search walk inside the search disc (the ant circles
    # the release point); this preserves the slow, central character.
    r = np.linalg.norm(positions, axis=1)
    outside = r > limit
    if outside.any():
        positions = positions.copy()
        positions[outside] *= (limit / r[outside])[:, None]
    return positions, times


def simulate_ant(
    arena: Arena,
    cond: CaptureCondition,
    rng: np.random.Generator,
    params: BehaviorParams | None = None,
    traj_id: int = -1,
) -> Trajectory:
    """Simulate one released ant under capture condition ``cond``.

    The walk starts at the arena center and terminates when the ant
    crosses the rim or the 3-minute study cap elapses.  Seed-droppers
    prepend the central search phase.
    """
    params = params or BehaviorParams()
    turn_std = (
        params.on_trail_turn_std if cond.capture_zone == "on" else params.off_trail_turn_std
    )
    goal = homing_goal(arena, cond, rng, params)
    bias = params.off_trail_bias if goal is not None else 0.0
    if goal is None:
        # undirected ants get windy movement regardless of zone
        turn_std = max(turn_std, params.on_trail_turn_std)
    walk_params = WalkParams(
        speed_mean=0.02 * rng.lognormal(0.0, 0.2),
        speed_std=0.006,
        turn_std=turn_std,
        bias_strength=bias,
    )
    walker = CorrelatedRandomWalk(walk_params, rng)

    chunks_pos: list[np.ndarray] = []
    chunks_t: list[np.ndarray] = []
    t_offset = 0.0

    if cond.seed_dropped:
        pos_s, t_s = _search_phase(arena, walker, rng, params)
        chunks_pos.append(pos_s)
        chunks_t.append(t_s)
        t_offset = float(t_s[-1]) + walk_params.dt

    start = chunks_pos[-1][-1] if chunks_pos else np.zeros(2)
    heading = (
        arena.exit_bearing(goal) if goal is not None else rng.uniform(-np.pi, np.pi)
    )
    remaining_s = params.max_duration_s - t_offset
    n_steps = max(2, int(remaining_s / walk_params.dt))

    def hit_rim(chunk: np.ndarray) -> np.ndarray:
        return ~arena.contains(chunk)

    pos_w, t_w = walker.walk(start, n_steps, heading, goal=goal, stop_predicate=hit_rim)
    if chunks_pos:
        chunks_pos.append(pos_w[1:])  # drop duplicated joint sample
        chunks_t.append(t_w[1:] + t_offset)
    else:
        chunks_pos.append(pos_w)
        chunks_t.append(t_w)

    positions = np.concatenate(chunks_pos, axis=0)
    times = np.concatenate(chunks_t, axis=0)

    # Enforce the study's 10 s minimum: too-short escapes get their
    # pre-exit portion time-dilated (slow ant), never re-simulated, so
    # the spatial shape (and exit side) is untouched.
    if times[-1] < params.min_duration_s:
        times = times * (params.min_duration_s / times[-1])

    return Trajectory(positions, times, cond.to_meta(), traj_id)
