"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``study``   — run the pilot-study replay and print the §V analysis;
* ``query``   — run one visual query (zone/side/window configurable);
* ``render``  — render a queried wall frame to PPM;
* ``dataset`` — generate and save a synthetic dataset (npz/csv/json);
* ``info``    — print the wall/viewport/layout facts (E1's table).
"""

from __future__ import annotations

import argparse
import sys

from repro import AntStudyConfig, TimeWindow, TrajectoryExplorer, generate_study_dataset
from repro.analytics.exits import opposite_side
from repro.core.brush import stroke_from_rect
from repro.core.hypothesis import Hypothesis
from repro.synth.arena import Arena

__all__ = ["main"]


def _dataset(args):
    return generate_study_dataset(AntStudyConfig(n_trajectories=args.n, seed=args.seed))


def _edge_stroke(arena: Arena, side: str, color: str):
    r = arena.radius
    depth, half = 0.3 * r, 0.6 * r
    rects = {
        "west": ((-r, -half), (-r + depth, half)),
        "east": ((r - depth, -half), (r, half)),
        "north": ((-half, r - depth), (half, r)),
        "south": ((-half, -r), (half, -r + depth)),
    }
    lo, hi = rects[side]
    return stroke_from_rect(lo, hi, radius=0.12 * r, color=color)


def cmd_info(args) -> int:
    """``info``: print wall/viewport/layout facts."""
    from repro.display.presets import CYBER_COMMONS, paper_viewport
    from repro.layout.configs import LAYOUT_PRESETS

    vp = paper_viewport(CYBER_COMMONS)
    print("wall:    ", CYBER_COMMONS.summary())
    print("viewport:", vp.summary())
    for key, cfg in sorted(LAYOUT_PRESETS.items()):
        grid = cfg.build(vp)
        print(
            f"layout '{key}': {cfg.n_cols}x{cfg.n_rows} = {cfg.n_cells} cells, "
            f"straddles={grid.straddle_count()}, "
            f"~{grid.mean_cell_pixels():.0f} px/cell"
        )
    return 0


def cmd_dataset(args) -> int:
    """``dataset``: generate and save a synthetic dataset."""
    from repro.trajectory import io

    ds = _dataset(args)
    savers = {"npz": io.save_npz, "csv": io.save_csv, "json": io.save_json}
    savers[args.format](ds, args.out)
    print(f"wrote {len(ds)} trajectories ({ds.total_samples} samples) -> {args.out}")
    return 0


def cmd_query(args) -> int:
    """``query``: run one exit-side visual query; exit code = verdict."""
    arena = Arena()
    app = TrajectoryExplorer(_dataset(args), layout_key=args.layout)
    app.group_by_capture_zone()
    side = opposite_side(args.zone) if args.side == "auto" else args.side
    hyp = Hypothesis(
        statement=f"ants captured {args.zone} of the trail exit {side}",
        strokes=(_edge_stroke(arena, side, "red"),),
        window=TimeWindow.end(args.window),
        target_group=args.zone,
    )
    verdict = app.test_hypothesis(hyp)
    print(verdict.result.summary())
    print(f"hypothesis: {hyp.statement!r} -> {verdict}")
    return 0 if verdict.supported else 1


def cmd_study(args) -> int:
    """``study``: replay the pilot study; optionally save provenance."""
    from repro.core.session import ExplorationSession
    from repro.display.presets import paper_viewport
    from repro.sensemaking import AnalystSimulator

    session = ExplorationSession(_dataset(args), paper_viewport())
    replay = AnalystSimulator(session).run()
    for schema, verdict in zip(replay.schemas, replay.verdicts):
        print(f"[{verdict.kind.value:9s}] {schema.theory}")
    coding = replay.coding
    print(f"events: {coding.counts()}")
    print(f"hypotheses/minute: {coding.hypotheses_per_minute():.2f}")
    print(f"provenance: {len(replay.provenance)} insight records")
    if args.provenance:
        replay.provenance.save(args.provenance)
        print(f"saved provenance -> {args.provenance}")
    return 0


def cmd_render(args) -> int:
    """``render``: render a queried wall frame to PPM."""
    arena = Arena()
    app = TrajectoryExplorer(_dataset(args), layout_key=args.layout)
    app.group_by_capture_zone()
    app.brush(_edge_stroke(arena, args.side, "red"))
    app.set_time_window(TimeWindow.end(args.window))
    print(app.query("red").summary())
    app.save_frame(args.out, mode=args.mode, scale=args.scale)
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--n", type=int, default=500, help="dataset size")
        p.add_argument("--seed", type=int, default=20120101)

    p = sub.add_parser("info", help="wall/viewport/layout facts")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("dataset", help="generate and save a dataset")
    add_common(p)
    p.add_argument("out", help="output path")
    p.add_argument("--format", choices=("npz", "csv", "json"), default="npz")
    p.set_defaults(func=cmd_dataset)

    p = sub.add_parser("query", help="run one exit-side visual query")
    add_common(p)
    p.add_argument("--zone", default="east",
                   choices=("on", "east", "west", "north", "south"))
    p.add_argument("--side", default="auto",
                   choices=("auto", "east", "west", "north", "south"),
                   help="exit side to brush (auto = opposite of zone)")
    p.add_argument("--window", type=float, default=0.15,
                   help="end-window fraction")
    p.add_argument("--layout", default="3", choices=("1", "2", "3"))
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("study", help="replay the pilot study")
    add_common(p)
    p.add_argument("--provenance", metavar="OUT.json", default=None)
    p.set_defaults(func=cmd_study)

    p = sub.add_parser("render", help="render a queried wall frame")
    add_common(p)
    p.add_argument("out", help="output PPM path")
    p.add_argument("--layout", default="2", choices=("1", "2", "3"))
    p.add_argument("--side", default="west",
                   choices=("east", "west", "north", "south"))
    p.add_argument("--window", type=float, default=0.15)
    p.add_argument("--mode", default="left",
                   choices=("left", "right", "pair", "anaglyph"))
    p.add_argument("--scale", type=float, default=0.25)
    p.set_defaults(func=cmd_render)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
