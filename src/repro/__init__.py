"""repro — Scalable Visual Queries for Data Exploration on Large,
High-Resolution 3D Displays (SC 2012), reproduced as a headless Python
library.

The package implements the paper's trajectory-exploration application
end to end: the ant-trajectory data substrate and a behavioural
simulator standing in for the field data, a parametric tiled-wall
display model, stereoscopic space-time-cube geometry, the bezel-aware
small-multiple layout engine with trajectory grouping, the coordinated
brushing / scalable visual query core, a software renderer, sensemaking
and pilot-study machinery, SOM-based multi-scale exploration, and a
process-parallel execution harness.

Quick start::

    from repro import TrajectoryExplorer, generate_study_dataset
    from repro.core.brush import stroke_from_rect
    from repro.core.temporal import TimeWindow

    app = TrajectoryExplorer(generate_study_dataset())
    app.group_by_capture_zone()
    app.brush(stroke_from_rect((-0.5, -0.3), (-0.35, 0.3), radius=0.06))
    app.set_time_window(TimeWindow.end(0.15))
    print(app.query().summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.app import TrajectoryExplorer
from repro.core import (
    BrushCanvas,
    BrushStroke,
    CoordinatedBrushingEngine,
    ExplorationSession,
    Hypothesis,
    MultiscaleExplorer,
    QueryResult,
    TimeWindow,
    Verdict,
)
from repro.display.presets import CYBER_COMMONS, DESKTOP_24INCH, paper_viewport
from repro.synth import AntStudyConfig, Arena, generate_scaled_dataset, generate_study_dataset
from repro.trajectory import Trajectory, TrajectoryDataset, TrajectoryMeta

__version__ = "1.0.0"

__all__ = [
    "TrajectoryExplorer",
    "BrushCanvas",
    "BrushStroke",
    "CoordinatedBrushingEngine",
    "ExplorationSession",
    "Hypothesis",
    "MultiscaleExplorer",
    "QueryResult",
    "TimeWindow",
    "Verdict",
    "CYBER_COMMONS",
    "DESKTOP_24INCH",
    "paper_viewport",
    "AntStudyConfig",
    "Arena",
    "generate_scaled_dataset",
    "generate_study_dataset",
    "Trajectory",
    "TrajectoryDataset",
    "TrajectoryMeta",
    "__version__",
]
