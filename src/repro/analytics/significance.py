"""Permutation significance tests for visual-query readings.

§VI-B is careful: "visual queries may not be enough to fully
substantiate a particular theory."  The natural next analysis step the
paper defers to — is the east group's 74 % highlight rate *actually*
above the rest, or a small-sample artifact? — is a permutation test on
group labels: shuffle which trajectories belong to the target group
and ask how often a random group matches the observed support gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PermutationReport", "support_permutation_test"]


@dataclass(frozen=True)
class PermutationReport:
    """Outcome of a support-difference permutation test.

    Attributes
    ----------
    observed_diff:
        Target support minus complement support.
    p_value:
        One-sided p: fraction of label permutations with a difference
        at least as large (with the +1 small-sample correction).
    n_permutations:
        Draws used.
    target_support, complement_support:
        The observed per-population rates.
    """

    observed_diff: float
    p_value: float
    n_permutations: int
    target_support: float
    complement_support: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the effect clears the ``alpha`` level."""
        return self.p_value <= alpha

    def __str__(self) -> str:
        return (
            f"diff {self.observed_diff:+.2f} "
            f"({self.target_support:.0%} vs {self.complement_support:.0%}), "
            f"p = {self.p_value:.4f} ({self.n_permutations} permutations)"
        )


def support_permutation_test(
    highlighted: np.ndarray,
    target: np.ndarray,
    *,
    n_permutations: int = 2000,
    rng: np.random.Generator | None = None,
) -> PermutationReport:
    """One-sided permutation test of target-vs-complement support.

    Parameters
    ----------
    highlighted:
        (T,) bool — the query's per-trajectory outcome.
    target:
        (T,) bool — membership of the population being read (e.g. the
        'east' group).  Must be a strict, non-empty subset.
    n_permutations:
        Label reshuffles.
    rng:
        Generator (seeded default for reproducibility).
    """
    highlighted = np.asarray(highlighted, dtype=bool)
    target = np.asarray(target, dtype=bool)
    if highlighted.shape != target.shape:
        raise ValueError("highlighted and target must align")
    n_t = int(target.sum())
    n_c = int((~target).sum())
    if n_t == 0 or n_c == 0:
        raise ValueError("target must be a non-empty strict subset")
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    rng = rng or np.random.default_rng(0)

    t_support = float(highlighted[target].mean())
    c_support = float(highlighted[~target].mean())
    observed = t_support - c_support

    # vectorized permutations: draw n_t highlighted-counts from the
    # hypergeometric null instead of physically shuffling labels
    total_hits = int(highlighted.sum())
    n = len(highlighted)
    draws = rng.hypergeometric(total_hits, n - total_hits, n_t, size=n_permutations)
    perm_t = draws / n_t
    perm_c = (total_hits - draws) / n_c
    diffs = perm_t - perm_c
    p = (1 + int(np.sum(diffs >= observed - 1e-12))) / (n_permutations + 1)
    return PermutationReport(
        observed_diff=observed,
        p_value=float(p),
        n_permutations=n_permutations,
        target_support=t_support,
        complement_support=c_support,
    )
