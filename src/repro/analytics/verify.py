"""Ground-truth verification of visual queries.

§VI-B: "While visual queries may not be enough to fully substantiate a
particular theory, they nevertheless provide a high-fidelity, low-cost
data assessment scheme."  This module quantifies that fidelity: it
computes each study hypothesis exactly and compares the visual query's
verdict and support fraction against the exact answer.  Integration
tests require agreement; EXPERIMENTS.md reports the measured fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.dwell import early_dwell_seconds
from repro.analytics.exits import exit_side_of
from repro.core.result import QueryResult
from repro.synth.arena import Arena
from repro.trajectory.dataset import TrajectoryDataset

__all__ = [
    "GroundTruth",
    "ground_truth_east_west",
    "ground_truth_seed_dwell",
    "verify_query_against_truth",
]


@dataclass(frozen=True)
class GroundTruth:
    """Exact answer to a study hypothesis.

    Attributes
    ----------
    statement:
        The hypothesis in words.
    per_traj:
        (T,) bool: does trajectory *i* satisfy the hypothesis predicate.
    target:
        (T,) bool: is trajectory *i* in the target population.
    """

    statement: str
    per_traj: np.ndarray
    target: np.ndarray

    @property
    def support(self) -> float:
        """Exact support fraction within the target population."""
        n = int(self.target.sum())
        if n == 0:
            return 0.0
        return float((self.per_traj & self.target).sum() / n)

    @property
    def supported(self) -> bool:
        """Majority criterion on the exact numbers."""
        return self.support > 0.5


def ground_truth_east_west(
    dataset: TrajectoryDataset, arena: Arena, *, capture_zone: str = "east",
    exit_side: str = "west",
) -> GroundTruth:
    """Exact form of the Fig. 5 hypothesis."""
    per_traj = np.asarray(
        [exit_side_of(t, arena) == exit_side for t in dataset], dtype=bool
    )
    target = np.asarray(
        [t.meta.capture_zone == capture_zone for t in dataset], dtype=bool
    )
    return GroundTruth(
        statement=(
            f"ants captured {capture_zone} of the trail exit on the {exit_side} side"
        ),
        per_traj=per_traj,
        target=target,
    )


def ground_truth_seed_dwell(
    dataset: TrajectoryDataset,
    *,
    radius: float,
    early_fraction: float = 0.2,
    dwell_threshold_s: float = 5.0,
) -> GroundTruth:
    """Exact form of the seed-drop search hypothesis: a seed-dropper
    'lingers' if it spends more than ``dwell_threshold_s`` inside the
    central disc during the early window."""
    per_traj = np.asarray(
        [
            early_dwell_seconds(t, (0.0, 0.0), radius, early_fraction=early_fraction)
            >= dwell_threshold_s
            for t in dataset
        ],
        dtype=bool,
    )
    target = np.asarray([t.meta.seed_dropped for t in dataset], dtype=bool)
    return GroundTruth(
        statement="seed-droppers linger in the arena center early in the experiment",
        per_traj=per_traj,
        target=target,
    )


@dataclass(frozen=True)
class QueryFidelity:
    """Agreement between a visual query and exact ground truth."""

    visual_support: float
    exact_support: float
    agreement: float          # fraction of target trajs where both agree
    verdict_match: bool       # same majority verdict

    def __str__(self) -> str:
        return (
            f"visual {self.visual_support:.0%} vs exact {self.exact_support:.0%}, "
            f"per-item agreement {self.agreement:.0%}, "
            f"verdicts {'match' if self.verdict_match else 'DIFFER'}"
        )


def verify_query_against_truth(
    result: QueryResult, truth: GroundTruth, *, restrict_displayed: bool = True
) -> QueryFidelity:
    """Compare a visual query result with the exact hypothesis answer.

    The comparison population is the truth's target set, optionally
    intersected with the displayed set (what the researcher could
    actually see — the honest comparison for the wall).
    """
    target = truth.target.copy()
    if restrict_displayed:
        target &= result.displayed
    n = int(target.sum())
    if n == 0:
        return QueryFidelity(0.0, 0.0, 1.0, True)
    visual = result.traj_mask[target]
    exact = truth.per_traj[target]
    visual_support = float(visual.mean())
    exact_support = float(exact.mean())
    agreement = float((visual == exact).mean())
    verdict_match = (visual_support > 0.5) == (exact_support > 0.5)
    return QueryFidelity(visual_support, exact_support, agreement, verdict_match)
