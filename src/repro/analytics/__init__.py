"""Exact trajectory analytics and the sequential baseline.

Everything a visual query answers perceptually, this subpackage answers
exactly: exit-side classification, dwell analysis, per-group statistics
and hypothesis ground truth (used by integration tests to prove that
the visual query engine's verdicts agree with first-principles
computation), plus the researcher's *previous* workflow — sequential
one-at-a-time per-trajectory inspection with a desktop cost model —
which E5 benchmarks the coordinated brush against.
"""

from repro.analytics.exits import exit_side_of, exit_sides, exit_side_table
from repro.analytics.dwell import central_dwell_table, early_dwell_seconds
from repro.analytics.stats import group_statistics, zone_straightness_table
from repro.analytics.verify import (
    ground_truth_east_west,
    ground_truth_seed_dwell,
    verify_query_against_truth,
)
from repro.analytics.baseline import SequentialInspectionBaseline
from repro.analytics.screening import (
    ScreenedHypothesis,
    exit_side_battery,
    screen_hypotheses,
)
from repro.analytics.significance import PermutationReport, support_permutation_test

__all__ = [
    "PermutationReport",
    "support_permutation_test",
    "ScreenedHypothesis",
    "exit_side_battery",
    "screen_hypotheses",
    "exit_side_of",
    "exit_sides",
    "exit_side_table",
    "early_dwell_seconds",
    "central_dwell_table",
    "group_statistics",
    "zone_straightness_table",
    "ground_truth_east_west",
    "ground_truth_seed_dwell",
    "verify_query_against_truth",
    "SequentialInspectionBaseline",
]
