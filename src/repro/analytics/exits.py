"""Exit-side analysis.

The §V-B hypothesis ("east-captured ants exit the arena from the west
side") reduces, in exact form, to classifying each trajectory's exit
bearing into a compass quadrant and tabulating by capture zone.
"""

from __future__ import annotations

import numpy as np

from repro.synth.arena import Arena, EXIT_SIDES
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory

__all__ = ["exit_side_of", "exit_sides", "exit_side_table", "opposite_side"]

_OPPOSITE = {"east": "west", "west": "east", "north": "south", "south": "north"}


def opposite_side(side: str) -> str:
    """The compass side opposite ``side`` (homing ants head there)."""
    try:
        return _OPPOSITE[side]
    except KeyError:
        raise ValueError(f"unknown side {side!r}; valid: {sorted(_OPPOSITE)}") from None


def exit_side_of(traj: Trajectory, arena: Arena) -> str:
    """Compass side of the trajectory's final position.

    Trajectories end at (or just past) the arena rim by construction;
    if an ant never exits (timed out inside), the bearing of its final
    position still defines the side it was heading for, which is the
    reading the researcher would take visually.
    """
    return arena.exit_side(traj.end)


def exit_sides(dataset: TrajectoryDataset, arena: Arena) -> np.ndarray:
    """Object array of exit sides for every trajectory."""
    return np.asarray([exit_side_of(t, arena) for t in dataset], dtype=object)


def exit_side_table(
    dataset: TrajectoryDataset, arena: Arena
) -> dict[str, dict[str, int]]:
    """Capture-zone x exit-side contingency table.

    Keys: capture zone; values: {exit side: count}.  This is the exact
    statistic behind Fig. 5's visual impression.
    """
    table: dict[str, dict[str, int]] = {}
    for traj in dataset:
        zone = traj.meta.capture_zone
        side = exit_side_of(traj, arena)
        row = table.setdefault(zone, {s: 0 for s in EXIT_SIDES})
        row[side] += 1
    return table
