"""Hypothesis-space screening.

§VI-B: "visual queries ... provide a high-fidelity, low-cost data
assessment scheme, which can be used to explore a larger number of
hypotheses and identify the promising ones for further analysis."

This module automates that pattern: generate a battery of candidate
hypotheses (every capture-zone x exit-side combination, plus the
seed-dwell contrast), evaluate each as a visual query, and rank the
outcomes — the machine-side analogue of the researcher's rapid
hypothesis cycling, useful both as an API feature and as a screening
baseline the interactive workflow can be compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.brush import BrushStroke, stroke_from_rect
from repro.core.engine import CoordinatedBrushingEngine
from repro.core.hypothesis import Hypothesis, Verdict, VerdictKind
from repro.core.temporal import TimeWindow
from repro.layout.cells import CellAssignment
from repro.synth.arena import Arena, EXIT_SIDES
from repro.trajectory.filters import SeedFilter

__all__ = ["ScreenedHypothesis", "exit_side_battery", "screen_hypotheses"]


def _edge_stroke(arena: Arena, side: str, color: str = "red") -> BrushStroke:
    r = arena.radius
    depth, half = 0.3 * r, 0.6 * r
    rects = {
        "west": ((-r, -half), (-r + depth, half)),
        "east": ((r - depth, -half), (r, half)),
        "north": ((-half, r - depth), (half, r)),
        "south": ((-half, -r), (half, -r + depth)),
    }
    lo, hi = rects[side]
    return stroke_from_rect(lo, hi, radius=0.12 * r, color=color)


def exit_side_battery(
    arena: Arena | None = None,
    *,
    zones: tuple[str, ...] = ("on", "east", "west", "north", "south"),
    window: TimeWindow | None = None,
    include_seed_dwell: bool = True,
) -> list[Hypothesis]:
    """Every zone x exit-side hypothesis, plus the seed-dwell contrast.

    20 exit hypotheses (5 zones x 4 sides) with the Fig. 5 gesture each;
    the battery deliberately contains mostly-false members — screening
    is about *finding* the promising ones.
    """
    arena = arena or Arena()
    window = window or TimeWindow.end(0.15)
    battery: list[Hypothesis] = []
    for zone in zones:
        for side in EXIT_SIDES:
            battery.append(
                Hypothesis(
                    statement=f"ants captured {zone} of the trail exit {side}",
                    strokes=(_edge_stroke(arena, side),),
                    window=window,
                    target_group=zone,
                )
            )
    if include_seed_dwell:
        r = 0.15 * arena.radius
        battery.append(
            Hypothesis(
                statement="seed-droppers linger centrally early on",
                strokes=(
                    stroke_from_rect((-r / 2, -r / 2), (r / 2, r / 2), r, "green"),
                ),
                window=TimeWindow.beginning(0.2),
                target_filter=SeedFilter(dropped=True),
                min_highlight_s=8.0,
                contrast=True,
            )
        )
    return battery


@dataclass(frozen=True)
class ScreenedHypothesis:
    """One battery member with its outcome and rank score."""

    hypothesis: Hypothesis
    verdict: Verdict

    @property
    def score(self) -> float:
        """Ranking score: margin over the decision criterion.

        For plain hypotheses, support minus threshold; for contrast
        hypotheses, the target-vs-complement advantage.  Inconclusive
        outcomes score at negative infinity (never promising).
        """
        v = self.verdict
        if v.kind is VerdictKind.INCONCLUSIVE:
            return float("-inf")
        if v.comparison_support is not None:
            return v.support - v.comparison_support
        return v.support - self.verdict.threshold


def screen_hypotheses(
    engine: CoordinatedBrushingEngine,
    battery: list[Hypothesis],
    assignment: CellAssignment | None = None,
) -> list[ScreenedHypothesis]:
    """Evaluate a battery and rank by score (most promising first).

    Hypotheses targeting groups absent from the assignment are skipped
    (recorded nowhere — a battery is exploratory).
    """
    out: list[ScreenedHypothesis] = []
    for hyp in battery:
        try:
            verdict = hyp.evaluate(engine, assignment)
        except KeyError:
            continue
        out.append(ScreenedHypothesis(hyp, verdict))
    out.sort(key=lambda s: s.score, reverse=True)
    return out
