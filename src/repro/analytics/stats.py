"""Group-level movement statistics.

The researcher's low-level inferences (§VI-A) — "more windy" on-trail
ants vs. "more direct" off-trail ants — as exact per-group summaries of
the movement metrics.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.metrics import (
    mean_speed,
    net_displacement,
    sinuosity,
    straightness_index,
    total_path_length,
)
from repro.trajectory.model import CaptureZone

__all__ = ["group_statistics", "zone_straightness_table"]

_METRICS = {
    "path_length_m": total_path_length,
    "net_displacement_m": net_displacement,
    "straightness": straightness_index,
    "sinuosity": sinuosity,
    "mean_speed_mps": mean_speed,
    "duration_s": lambda t: t.duration,
}


def group_statistics(
    dataset: TrajectoryDataset, group_by: str = "capture_zone"
) -> dict[str, dict[str, dict[str, float]]]:
    """Per-group mean/std of the movement metrics.

    ``group_by`` is any :class:`TrajectoryMeta` attribute name
    (``capture_zone``, ``direction``, ``carrying_seed``, ...).
    Returns ``{group: {metric: {"mean": ..., "std": ..., "n": ...}}}``.
    """
    buckets: dict[str, list] = {}
    for traj in dataset:
        key = str(getattr(traj.meta, group_by))
        buckets.setdefault(key, []).append(traj)
    out: dict[str, dict[str, dict[str, float]]] = {}
    for key, trajs in sorted(buckets.items()):
        metrics: dict[str, dict[str, float]] = {}
        for name, fn in _METRICS.items():
            vals = np.asarray([fn(t) for t in trajs], dtype=np.float64)
            metrics[name] = {
                "mean": float(vals.mean()),
                "std": float(vals.std()),
                "n": int(len(vals)),
            }
        out[key] = metrics
    return out


def zone_straightness_table(dataset: TrajectoryDataset) -> dict[str, float]:
    """Mean straightness per capture zone — the exact statistic behind
    "windy on-trail vs. direct off-trail"."""
    stats = group_statistics(dataset, "capture_zone")
    return {
        zone: stats[zone]["straightness"]["mean"]
        for zone in CaptureZone
        if zone in stats
    }
