"""Dwell analysis.

Exact counterpart of the §V-B spatio-temporal query: "do ants that have
dropped the seed they were carrying spend more time in the center
searching ... before deciding which direction to take?"  The visual
form is a green brush on the arena center plus an early time window;
the exact form is seconds-inside-disc during the early fraction of each
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.metrics import time_inside_mask
from repro.trajectory.model import Trajectory

__all__ = ["early_dwell_seconds", "central_dwell_table"]


def early_dwell_seconds(
    traj: Trajectory,
    center,
    radius: float,
    *,
    early_fraction: float = 0.2,
) -> float:
    """Seconds spent inside the disc during the first ``early_fraction``
    of the trajectory's duration."""
    if not 0.0 < early_fraction <= 1.0:
        raise ValueError("early_fraction must be in (0, 1]")
    center = np.asarray(center, dtype=np.float64)
    t_cut = float(traj.times[0]) + early_fraction * traj.duration
    d = traj.positions - center
    inside = (np.einsum("ij,ij->i", d, d) <= radius * radius) & (traj.times <= t_cut)
    return time_inside_mask(traj, inside)


def central_dwell_table(
    dataset: TrajectoryDataset,
    radius: float,
    *,
    early_fraction: float = 0.2,
) -> dict[str, dict[str, float]]:
    """Early central-dwell statistics for seed-droppers vs. the rest.

    Returns ``{"seed_dropped": {...}, "others": {...}}`` with count,
    mean, and median dwell seconds per population — the exact numbers
    behind the perpendicular-green-segment reading of the stereo view.
    """
    dropped: list[float] = []
    others: list[float] = []
    for traj in dataset:
        dwell = early_dwell_seconds(traj, (0.0, 0.0), radius, early_fraction=early_fraction)
        (dropped if traj.meta.seed_dropped else others).append(dwell)

    def describe(vals: list[float]) -> dict[str, float]:
        if not vals:
            return {"count": 0, "mean_s": 0.0, "median_s": 0.0}
        arr = np.asarray(vals)
        return {
            "count": int(len(arr)),
            "mean_s": float(arr.mean()),
            "median_s": float(np.median(arr)),
        }

    return {"seed_dropped": describe(dropped), "others": describe(others)}
