"""The sequential one-at-a-time inspection baseline.

Before the wall application, the study's researcher "used Matlab as her
analysis platform, visualizing trajectories one at a time" (§VI).  The
paper's speed claim — visual queries answer in "a matter of few
seconds" where desktop inspection is "a tedious, slow task" — needs
that baseline implemented to be benchmarked (E5).

The baseline does the *same* work as a coordinated-brush query, but the
way a one-at-a-time workflow forces: load one trajectory, test its
segments against the brushed region, record the answer, move to the
next.  Two costs are reported:

* **compute cost** — actual wall-clock of the per-trajectory Python
  loop (the mechanical part);
* **interaction cost** — a per-trajectory human overhead model:
  switching views, re-orienting, and judging a single plot takes the
  analyst ``per_view_s`` seconds (default 3 s — a deliberately generous
  figure for select-plot-inspect in a Matlab-style tool).  The total is
  what actually dominated the researcher's old workflow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.canvas import BrushCanvas
from repro.core.temporal import TimeWindow
from repro.trajectory.dataset import TrajectoryDataset
from repro.util.geometry import point_segment_distance

__all__ = ["BaselineReport", "SequentialInspectionBaseline"]


@dataclass(frozen=True)
class BaselineReport:
    """Outcome and cost of a sequential inspection pass."""

    per_traj: np.ndarray          # (T,) bool: trajectory satisfies the query
    compute_s: float              # measured loop wall-clock
    interaction_s: float          # modeled human cost
    n_inspected: int

    @property
    def total_s(self) -> float:
        """Modeled end-to-end time of the old workflow."""
        return self.compute_s + self.interaction_s


class SequentialInspectionBaseline:
    """One-at-a-time evaluation of a brush query.

    Parameters
    ----------
    dataset:
        The collection to inspect.
    per_view_s:
        Modeled seconds of human interaction per trajectory view.
    """

    def __init__(self, dataset: TrajectoryDataset, *, per_view_s: float = 3.0) -> None:
        if per_view_s < 0:
            raise ValueError("per_view_s must be >= 0")
        self.dataset = dataset
        self.per_view_s = float(per_view_s)

    def run(
        self,
        canvas: BrushCanvas,
        color: str = "red",
        *,
        window: TimeWindow | None = None,
        indices: np.ndarray | None = None,
    ) -> BaselineReport:
        """Inspect ``indices`` (default: all) one trajectory at a time.

        Semantically identical to
        :meth:`repro.core.engine.CoordinatedBrushingEngine.query`
        restricted to the same trajectories — the integration tests
        assert exact agreement — but structured as the desktop workflow
        is: a Python loop, one trajectory in "view" at a time, no
        packed arrays, no index.
        """
        window = window or TimeWindow.all()
        centers, radii = canvas.stamps_of(color)
        if indices is None:
            indices = np.arange(len(self.dataset))
        per_traj = np.zeros(len(self.dataset), dtype=bool)
        t0 = time.perf_counter()
        for ds_index in indices:
            traj = self.dataset[int(ds_index)]
            w_lo, w_hi = window.bounds_for(traj)
            # segment [t0, t1] overlaps the window (interval test, the
            # same criterion the engine applies to packed segments)
            seg_ok = (traj.times[1:] >= w_lo) & (traj.times[:-1] <= w_hi)
            if len(centers) == 0 or not seg_ok.any():
                continue
            a = traj.positions[:-1][seg_ok]
            b = traj.positions[1:][seg_ok]
            # the "look at the single plot" test: any segment within the brush
            d = point_segment_distance(centers[None, :, :], a[:, None, :], b[:, None, :])
            per_traj[ds_index] = bool((d <= radii[None, :]).any())
        compute_s = time.perf_counter() - t0
        return BaselineReport(
            per_traj=per_traj,
            compute_s=compute_s,
            interaction_s=self.per_view_s * len(indices),
            n_inspected=len(indices),
        )
